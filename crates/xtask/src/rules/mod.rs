//! The audit rules.
//!
//! Each rule walks the pre-processed [`SourceFile`]s (token stream, item
//! tree, and the derived stripped view) and emits [`Finding`]s through a
//! shared [`Sink`].  Findings can be suppressed two ways:
//!
//! * a **rule allowlist** of path prefixes (e.g. `crates/worm/` may name
//!   overwrite APIs — it implements the WORM device and must reject them);
//! * an **inline directive**: a comment containing `audit:allow(<rule>)`
//!   either in an item's header block (suppresses the rule for the whole
//!   item) or on/above the offending line (statement scope).
//!
//! Suppressed findings are counted in [`Report::suppressed`], and the sink
//! records *which* directive did the suppressing, so the report can list
//! directives that suppressed nothing — a dead `audit:allow` is a
//! suppression wider than its author believes, which is its own bug class.
//!
//! The rules are split by the machinery they need:
//!
//! * [`lexical`] — the eight original line/ident-pattern rules, ported
//!   onto the token-derived views with identical findings;
//! * [`structural`] — rules that need item extents or statement structure
//!   (`trusted-conjunction`, `atomic-ordering`, `guard-across-io`);
//! * [`coverage`] — whole-workspace cross-file analysis
//!   (`taxonomy-coverage`).

pub mod coverage;
pub mod lexical;
pub mod structural;

pub use coverage::taxonomy_coverage;
pub use lexical::{
    chain_append_discipline, commit_point_order, error_taxonomy, forbid_unsafe, hot_path_io,
    no_panic_in_prod, replica_apply_only, shard_isolation, wire_versioning, worm_append_only,
};
pub use structural::{atomic_ordering, guard_across_io, trusted_conjunction};

use crate::report::{Finding, Report, Severity};
use crate::scan::SourceFile;
use std::collections::BTreeSet;

/// Production crates subject to the panic and taxonomy rules: the storage
/// and query layers whose failures must surface as typed errors (a crash
/// during a compliance lookup is indistinguishable from a hidden record).
pub const PROD_PREFIXES: [&str; 8] = [
    "crates/core/src/",
    "crates/worm/src/",
    "crates/jump/src/",
    "crates/postings/src/",
    "crates/shard/src/",
    "crates/replica/src/",
    "crates/server/src/",
    "crates/client/src/",
];

/// Crates that speak the network protocol, subject to `wire-versioning`.
pub(crate) const WIRE_PREFIXES: [&str; 2] = ["crates/server/src/", "crates/client/src/"];

/// The envelope module — the one file in the network crates that may name
/// serde.  Everything that crosses the wire is defined here, behind the
/// protocol-version byte.
pub const WIRE_ENVELOPE: &str = "crates/server/src/wire.rs";

/// Path prefixes subject to `hot-path-io` and `guard-across-io`: the
/// crates whose read paths are supposed to be block-granular
/// (`read_block` / `read_exact_at` batched reads, decoded a block at a
/// time) and lock-free across device I/O.  This includes the block
/// summary sidecar (`crates/postings/src/summary.rs`, DESIGN.md §5h),
/// which must stay a pure by-product of block decode — a per-record read
/// there would defeat the early-termination accounting.
pub(crate) const HOT_PATH_PREFIXES: [&str; 2] = ["crates/postings/src/", "crates/core/src/"];

/// One rule's registry entry: identity, a one-line description (used for
/// SARIF `shortDescription` and the README table), and its severity.
pub struct RuleMeta {
    /// Rule identifier as written in findings and `audit:allow(…)`.
    pub id: &'static str,
    /// One-line description.
    pub summary: &'static str,
    /// Severity every finding of the rule carries.
    pub severity: Severity,
}

/// Every rule the audit runs, in execution order.  SARIF output indexes
/// into this table.
pub const RULES: [RuleMeta; 14] = [
    RuleMeta {
        id: "no-panic-in-prod",
        summary: "no unwrap/expect or panicking macros in production code; \
                  indexing is warned",
        severity: Severity::Deny,
    },
    RuleMeta {
        id: "worm-append-only",
        summary: "only crates/worm may name truncation/overwrite APIs; \
                  committed extents are immutable",
        severity: Severity::Deny,
    },
    RuleMeta {
        id: "shard-isolation",
        summary: "the shard layer is pure orchestration and must not name \
                  storage-layer APIs",
        severity: Severity::Deny,
    },
    RuleMeta {
        id: "forbid-unsafe",
        summary: "no `unsafe` anywhere; library roots carry \
                  #![forbid(unsafe_code)]",
        severity: Severity::Deny,
    },
    RuleMeta {
        id: "error-taxonomy",
        summary: "public fallible APIs in production crates return errors \
                  from the workspace taxonomy",
        severity: Severity::Deny,
    },
    RuleMeta {
        id: "wire-versioning",
        summary: "serde stays in the versioned envelope module; internal \
                  types never cross the wire directly",
        severity: Severity::Deny,
    },
    RuleMeta {
        id: "hot-path-io",
        summary: "constant-length per-record reads on the block-granular \
                  read path",
        severity: Severity::Warn,
    },
    RuleMeta {
        id: "commit-point-order",
        summary: "DOCMETA is the commit point and must be the last WORM \
                  append of a commit path",
        severity: Severity::Deny,
    },
    RuleMeta {
        id: "chain-append-discipline",
        summary: "commit-path WORM appends happen only in functions that feed \
                  the commit-chain hasher",
        severity: Severity::Deny,
    },
    RuleMeta {
        id: "replica-apply-only",
        summary: "replica devices mutate only through the verified applier \
                  module; the rest of the replication crate may not name \
                  WORM mutation APIs",
        severity: Severity::Deny,
    },
    RuleMeta {
        id: "trusted-conjunction",
        summary: "the `trusted` verdict originates only in the verification \
                  module and combines only conjunctively elsewhere",
        severity: Severity::Deny,
    },
    RuleMeta {
        id: "atomic-ordering",
        summary: "watermark atomics publish with Release/Acquire, never \
                  Relaxed",
        severity: Severity::Deny,
    },
    RuleMeta {
        id: "guard-across-io",
        summary: "no Mutex/RwLock guard held across device I/O in the hot \
                  read-path crates",
        severity: Severity::Deny,
    },
    RuleMeta {
        id: "taxonomy-coverage",
        summary: "wire error codes are handled by the client and every prod \
                  error enum is carried by the TksError taxonomy",
        severity: Severity::Deny,
    },
];

/// Look up a rule's registry entry.
pub fn rule_meta(id: &str) -> Option<&'static RuleMeta> {
    RULES.iter().find(|r| r.id == id)
}

/// Shared finding sink: applies `audit:allow` suppression and records
/// which directives were consumed, keyed `(file, directive line, rule)`.
pub struct Sink<'a> {
    pub(crate) report: &'a mut Report,
    /// Directives that suppressed at least one finding.
    pub used_allows: BTreeSet<(String, usize, String)>,
}

impl<'a> Sink<'a> {
    /// Wrap a report.
    pub fn new(report: &'a mut Report) -> Self {
        Sink {
            report,
            used_allows: BTreeSet::new(),
        }
    }

    /// Emit a finding at 1-based `line_no` and 0-based `col0`, unless a
    /// directive suppresses it.
    pub fn emit(
        &mut self,
        file: &SourceFile,
        rule: &'static str,
        severity: Severity,
        line_no: usize,
        col0: usize,
        message: String,
    ) {
        if let Some(d) = file.allow_for(line_no, rule) {
            self.report.suppressed += 1;
            self.used_allows.insert((file.rel.clone(), d.line, d.rule));
            return;
        }
        self.report.findings.push(Finding {
            rule,
            severity,
            file: file.rel.clone(),
            line: line_no,
            col: col0 + 1,
            message,
            snippet: file.snippet(line_no),
        });
    }
}

/// Run every rule over `files`, accumulating into `report`; returns the
/// set of `audit:allow` directives that suppressed at least one finding.
pub fn run_all(files: &[SourceFile], report: &mut Report) -> BTreeSet<(String, usize, String)> {
    let mut sink = Sink::new(report);
    no_panic_in_prod(files, &mut sink);
    worm_append_only(files, &mut sink);
    shard_isolation(files, &mut sink);
    forbid_unsafe(files, &mut sink);
    error_taxonomy(files, &mut sink);
    wire_versioning(files, &mut sink);
    hot_path_io(files, &mut sink);
    commit_point_order(files, &mut sink);
    chain_append_discipline(files, &mut sink);
    replica_apply_only(files, &mut sink);
    trusted_conjunction(files, &mut sink);
    atomic_ordering(files, &mut sink);
    guard_across_io(files, &mut sink);
    taxonomy_coverage(files, &mut sink);
    sink.used_allows
}

// ---------------------------------------------------------------------------
// Shared text helpers (operate on the stripped view).
// ---------------------------------------------------------------------------

pub(crate) fn under_any(rel: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| rel.starts_with(p))
}

/// Iterate identifiers in a stripped line as `(column0, ident)`.
pub(crate) fn idents(line: &str) -> Vec<(usize, &str)> {
    let b = line.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = i;
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
            out.push((start, &line[start..i]));
        } else {
            i += 1;
        }
    }
    out
}

pub(crate) fn next_non_ws(line: &str, from: usize) -> Option<u8> {
    line.as_bytes()[from..]
        .iter()
        .copied()
        .find(|c| !c.is_ascii_whitespace())
}

/// The leading identifier of `s` (after trimming), if it starts with one.
pub(crate) fn first_word(s: &str) -> &str {
    let s = s.trim_start();
    let end = s
        .bytes()
        .position(|c| !(c.is_ascii_alphanumeric() || c == b'_'))
        .unwrap_or(s.len());
    &s[..end]
}

/// `crates/<name>/…` → `crates/<name>/`.
pub(crate) fn crate_prefix(rel: &str) -> Option<&str> {
    if let Some(rest) = rel.strip_prefix("crates/") {
        let end = rest.find('/')?;
        return Some(&rel[..("crates/".len() + end + 1)]);
    }
    if rel.starts_with("src/") {
        return Some("src/");
    }
    None
}

pub(crate) fn last_segment(ty: &str) -> String {
    let t = ty.trim().trim_start_matches('&').trim();
    let t = t.split('<').next().unwrap_or(t).trim();
    t.rsplit("::").next().unwrap_or(t).trim().to_string()
}

/// Find `Result<` as a path segment (not e.g. `MyResult<`).
pub(crate) fn find_result(ret: &str) -> Option<usize> {
    let b = ret.as_bytes();
    let mut from = 0;
    while let Some(p) = ret[from..].find("Result<") {
        let i = from + p;
        let prev_ok = i == 0 || !(b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_');
        if prev_ok {
            return Some(i);
        }
        from = i + 1;
    }
    None
}

/// Given text starting at/containing `…<A, B, …>`, return the second
/// top-level generic argument, if any.
pub(crate) fn second_generic_arg(s: &str) -> Option<String> {
    let open = s.find('<')?;
    let mut depth = 0i32;
    let mut args: Vec<String> = vec![String::new()];
    for c in s[open..].chars() {
        match c {
            '<' | '(' | '[' => {
                depth += 1;
                if depth > 1 {
                    args.last_mut()?.push(c);
                }
            }
            '>' | ')' | ']' => {
                depth -= 1;
                if depth == 0 && c == '>' {
                    break;
                }
                args.last_mut()?.push(c);
            }
            ',' if depth == 1 => args.push(String::new()),
            _ if depth >= 1 => args.last_mut()?.push(c),
            _ => {}
        }
    }
    args.get(1).map(|a| a.trim().to_string())
}

/// Return-type text of a signature: everything after the `->` that sits at
/// parenthesis depth zero (so `fn(f: impl Fn(u32) -> u64) -> …` finds the
/// outer arrow).
pub(crate) fn return_type(sig: &str) -> Option<String> {
    let b = sig.as_bytes();
    let mut depth = 0i32;
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'(' => depth += 1,
            b')' => depth -= 1,
            b'-' if depth == 0 && b.get(i + 1) == Some(&b'>') => {
                let ret = sig[i + 2..].trim();
                // Trim a trailing where-clause.
                let ret = match ret.find(" where ") {
                    Some(w) => &ret[..w],
                    None => ret,
                };
                return Some(ret.trim().to_string());
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// Is the identifier immediately before the `.` at `dot` an `fs`-suffixed
/// receiver (`fs`, `self.fs`, `doc_fs`, …)?
pub(crate) fn receiver_ends_with_fs(line: &str, dot: usize) -> bool {
    let b = line.as_bytes();
    let mut s = dot;
    while s > 0 && (b[s - 1].is_ascii_alphanumeric() || b[s - 1] == b'_') {
        s -= 1;
    }
    line.get(s..dot).is_some_and(|id| id.ends_with("fs"))
}

/// The argument text of a call whose opening paren sits just before
/// `lines[idx][start..]`, spanning at most a few lines.
pub(crate) fn call_args(lines: &[&str], idx: usize, start: usize) -> Option<String> {
    let mut out = String::new();
    let mut depth = 1i32;
    let mut j = idx;
    let mut rest: &str = lines.get(j)?.get(start..)?;
    loop {
        for (k, c) in rest.char_indices() {
            match c {
                '(' | '[' => depth += 1,
                ')' | ']' => {
                    depth -= 1;
                    if depth == 0 {
                        out.push_str(rest.get(..k).unwrap_or(""));
                        return Some(out);
                    }
                }
                _ => {}
            }
        }
        out.push_str(rest);
        out.push(' ');
        j += 1;
        if j > idx + 4 {
            return None;
        }
        rest = lines.get(j)?;
    }
}

/// The last top-level comma-separated argument of `args`.
pub(crate) fn last_top_level_arg(args: &str) -> Option<String> {
    let mut depth = 0i32;
    let mut last_start = 0usize;
    for (k, c) in args.char_indices() {
        match c {
            '(' | '[' => depth += 1,
            ')' | ']' => depth -= 1,
            ',' if depth == 0 => last_start = k + 1,
            _ => {}
        }
    }
    let a = args.get(last_start..)?.trim();
    (!a.is_empty()).then(|| a.to_string())
}

/// A compile-time-constant length: an integer literal (`2`, `8_192`,
/// `0x10`, `8usize`) or an ALL-CAPS const path (`META_RECORD`,
/// `codec::POSTING_SIZE`), optionally with a trailing cast.
pub(crate) fn is_const_len(arg: &str) -> bool {
    let a = arg.split(" as ").next().unwrap_or(arg).trim();
    if a.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        return true;
    }
    let last_seg = a.rsplit("::").next().unwrap_or(a).trim();
    !last_seg.is_empty()
        && last_seg
            .chars()
            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
        && last_seg.chars().any(|c| c.is_ascii_uppercase())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generic_args_split_at_top_level() {
        assert_eq!(
            second_generic_arg("Result<Vec<(u32, u64)>, ListError>").as_deref(),
            Some("ListError")
        );
        assert_eq!(second_generic_arg("Result<T>"), None);
    }

    #[test]
    fn return_type_skips_closure_arrows() {
        let sig = "fn apply(f: impl Fn(u32) -> u64) -> Result<u64, JumpError>";
        assert_eq!(return_type(sig).as_deref(), Some("Result<u64, JumpError>"));
    }

    #[test]
    fn last_segment_strips_paths_and_generics() {
        assert_eq!(last_segment("crate::persist::PersistError"), "PersistError");
        assert_eq!(last_segment("&JumpError"), "JumpError");
        assert_eq!(last_segment("PhantomData<T>"), "PhantomData");
    }

    #[test]
    fn find_result_requires_segment_boundary() {
        assert_eq!(find_result("MyResult<u8>"), None);
        assert_eq!(find_result("std::result::Result<u8, E>"), Some(13));
    }

    #[test]
    fn first_word_takes_leading_ident() {
        assert_eq!(first_word("  true,"), "true");
        assert_eq!(first_word("true && x"), "true");
        assert_eq!(first_word("!x"), "");
    }

    #[test]
    fn hot_path_prefixes_cover_the_block_summary_module() {
        // The block-summary sidecar (DESIGN.md §5h) rides the decode
        // path, so its module must stay inside the `hot-path-io` /
        // `guard-across-io` audited surface; a rename or move out of
        // `crates/postings/src/` would silently drop it.
        for file in [
            "crates/postings/src/summary.rs",
            "crates/postings/src/block_reader.rs",
            "crates/core/src/engine.rs",
        ] {
            assert!(
                under_any(file, &HOT_PATH_PREFIXES),
                "{file} must be on the audited hot path"
            );
        }
        assert!(!under_any(
            "crates/bench/src/bin/at_scale.rs",
            &HOT_PATH_PREFIXES
        ));
    }

    #[test]
    fn rule_registry_covers_every_rule_once() {
        let mut ids: Vec<&str> = RULES.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), RULES.len(), "duplicate rule id in registry");
        assert!(rule_meta("no-panic-in-prod").is_some());
        assert!(rule_meta("taxonomy-coverage").is_some());
        assert!(rule_meta("nope").is_none());
    }
}
