//! The first **cross-file** rule: `taxonomy-coverage`.
//!
//! The paper's compliance story depends on every failure being a *typed*
//! value an auditor can classify; an error type that exists but is never
//! consumed (or never feeds the workspace taxonomy) is a silent hole in
//! that story.  Two checks, both needing more than one file at a time:
//!
//! * **Part A — wire variants are consumed.**  Every variant of the wire
//!   envelope's `WireError*` enums must appear as a code identifier
//!   somewhere in the client crate.  A variant the server can send but no
//!   client ever matches on collapses to "unknown error" at the one
//!   place a human sees it.
//! * **Part B — error types are connected.**  Every public `*Error` enum
//!   in a prod crate must be connected — through `From` impls or
//!   error-typed variant payloads — to the workspace taxonomy roots
//!   (`TksError`, or std's `Error` via an `io::Error` payload).  A
//!   disconnected error type can never surface through the unified
//!   taxonomy (`error-taxonomy` rule) and dies as a `String` somewhere.

use super::{Sink, PROD_PREFIXES, WIRE_ENVELOPE};
use crate::lex::TokKind;
use crate::report::Severity;
use crate::scan::SourceFile;
use crate::tree::{Item, ItemKind};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Client crate whose sources must consume every wire error variant.
const CONSUMER_PREFIX: &str = "crates/client/";

/// Connectivity roots: the unified workspace error ([`TksError`]) and
/// std's `Error` (reached by wrapping an `std::io::Error` payload).
const TAXONOMY_ROOTS: [&str; 2] = ["TksError", "Error"];

/// Rule `taxonomy-coverage` (cross-file): wire error variants must be
/// consumed by the client, and every public `*Error` enum must be
/// connected to the workspace taxonomy.  See the module docs.
pub fn taxonomy_coverage(files: &[SourceFile], sink: &mut Sink) {
    wire_variants_consumed(files, sink);
    error_types_connected(files, sink);
}

/// Part A: every variant of the envelope's `WireError*` enums appears as
/// a non-test code identifier in the client crate.
fn wire_variants_consumed(files: &[SourceFile], sink: &mut Sink) {
    let Some(envelope) = files.iter().find(|f| f.rel == WIRE_ENVELOPE) else {
        return; // fixture runs without the envelope: nothing to check
    };
    // Identifiers the client crate uses in non-test code.
    let mut consumed: BTreeSet<&str> = BTreeSet::new();
    for file in files.iter().filter(|f| f.rel.starts_with(CONSUMER_PREFIX)) {
        for tok in &file.tokens {
            if tok.kind == TokKind::Ident && !file.tree.in_test(tok.line - 1) {
                consumed.insert(tok.text(&file.raw));
            }
        }
    }
    for item in envelope.tree.walk() {
        let is_wire_error_enum = item.kind == ItemKind::Enum
            && item
                .name
                .as_deref()
                .is_some_and(|n| n.starts_with("WireError"));
        if !is_wire_error_enum || envelope.tree.in_test(item.kw_line.saturating_sub(1)) {
            continue;
        }
        let enum_name = item.name.as_deref().unwrap_or("");
        for v in enum_variants(envelope, item) {
            if !consumed.contains(v.name.as_str()) {
                sink.emit(
                    envelope,
                    "taxonomy-coverage",
                    Severity::Deny,
                    v.line,
                    v.col.saturating_sub(1),
                    format!(
                        "wire error variant `{enum_name}::{}` is never consumed by \
                         the client crate: a failure class the server can send but \
                         no client classifies collapses to \"unknown error\" at the \
                         operator console",
                        v.name
                    ),
                );
            }
        }
    }
}

/// Part B: every public `*Error` enum in a prod crate reaches a taxonomy
/// root through the undirected graph of `From` impls and error-typed
/// variant payloads.
fn error_types_connected(files: &[SourceFile], sink: &mut Sink) {
    // Undirected adjacency over type names, plus the pub *Error enums we
    // must certify (name -> declaration site).
    let mut edges: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut required: Vec<(&SourceFile, &Item)> = Vec::new();

    let connect = |edges: &mut BTreeMap<String, BTreeSet<String>>, a: &str, b: &str| {
        if a != b {
            edges
                .entry(a.to_string())
                .or_default()
                .insert(b.to_string());
            edges
                .entry(b.to_string())
                .or_default()
                .insert(a.to_string());
        }
    };

    for file in files
        .iter()
        .filter(|f| super::under_any(&f.rel, &PROD_PREFIXES))
    {
        // Edges from `impl From<X> for Y` (token pattern; test code skipped).
        for (x, y) in from_impls(file) {
            connect(&mut edges, &x, &y);
        }
        // Enum nodes and their payload edges.
        for item in file.tree.walk() {
            if item.kind != ItemKind::Enum || file.tree.in_test(item.kw_line.saturating_sub(1)) {
                continue;
            }
            let Some(name) = item.name.as_deref() else {
                continue;
            };
            for v in enum_variants(file, item) {
                // A payload identifier ending in `Error` links the two
                // types; anything else (`String`, `u32`, field names) is
                // ignored so shared plain payloads cannot fake
                // connectivity.
                for payload in &v.payload_error_idents {
                    connect(&mut edges, name, payload);
                }
            }
            if item.is_pub && name.ends_with("Error") {
                required.push((file, item));
            }
        }
    }

    // BFS from the roots over the undirected graph.
    let mut reachable: BTreeSet<&str> = BTreeSet::new();
    let mut queue: VecDeque<&str> = TAXONOMY_ROOTS.into_iter().collect();
    while let Some(n) = queue.pop_front() {
        if !reachable.insert(n) {
            continue;
        }
        if let Some(next) = edges.get(n) {
            queue.extend(next.iter().map(String::as_str));
        }
    }

    for (file, item) in required {
        let name = item.name.as_deref().unwrap_or("");
        if !reachable.contains(name) {
            sink.emit(
                file,
                "taxonomy-coverage",
                Severity::Deny,
                item.kw_line,
                0,
                format!(
                    "public error type `{name}` is disconnected from the workspace \
                     taxonomy: no `From` impl or error-typed variant payload links it \
                     (transitively) to {} — it can never surface through the unified \
                     error path and will die as a stringly-typed message",
                    TAXONOMY_ROOTS.join(" or ")
                ),
            );
        }
    }
}

/// One enum variant: its name/site and the `*Error`-suffixed identifiers
/// appearing in its payload.
struct Variant {
    name: String,
    line: usize,
    col: usize,
    payload_error_idents: Vec<String>,
}

/// Extract the variants of `item` (an enum) from the token stream: a
/// variant name is the first identifier at brace depth 0 of the body (and
/// after each depth-0 comma); everything nested deeper — tuple payloads,
/// struct fields, attribute arguments — is payload.
fn enum_variants(file: &SourceFile, item: &Item) -> Vec<Variant> {
    let Some(open) = item.tok_body_open else {
        return Vec::new();
    };
    let body = &file.tokens[open + 1..item.tok_end.saturating_sub(1)];
    let mut out: Vec<Variant> = Vec::new();
    let mut depth = 0usize;
    let mut expect_name = true;
    for tok in body {
        match tok.kind {
            TokKind::Comment => {}
            TokKind::Punct(b'(') | TokKind::Punct(b'[') | TokKind::Punct(b'{') => depth += 1,
            TokKind::Punct(b')') | TokKind::Punct(b']') | TokKind::Punct(b'}') => {
                depth = depth.saturating_sub(1)
            }
            TokKind::Punct(b',') if depth == 0 => expect_name = true,
            TokKind::Ident => {
                let text = tok.text(&file.raw);
                if depth == 0 && expect_name {
                    out.push(Variant {
                        name: text.to_string(),
                        line: tok.line,
                        col: tok.col,
                        payload_error_idents: Vec::new(),
                    });
                    expect_name = false;
                } else if text.ends_with("Error") {
                    if let Some(v) = out.last_mut() {
                        v.payload_error_idents.push(text.to_string());
                    }
                }
            }
            _ => {}
        }
    }
    out
}

/// `(X, Y)` pairs for every non-test `impl From<X> for Y` in the file,
/// where `X` is the last path segment inside the generic argument.
fn from_impls(file: &SourceFile) -> Vec<(String, String)> {
    let toks = &file.tokens;
    let code: Vec<usize> = (0..toks.len()).filter(|&i| toks[i].is_code()).collect();
    let mut out = Vec::new();
    for w in 0..code.len() {
        let i = code[w];
        if toks[i].text(&file.raw) != "impl" || file.tree.in_test(toks[i].line - 1) {
            continue;
        }
        let mut k = w + 1;
        if code
            .get(k)
            .is_none_or(|&j| toks[j].text(&file.raw) != "From")
        {
            continue;
        }
        k += 1;
        if code
            .get(k)
            .is_none_or(|&j| toks[j].kind != TokKind::Punct(b'<'))
        {
            continue;
        }
        // Scan the generic argument to its matching `>`, remembering the
        // last identifier (the path's final segment).
        let mut angle = 1i32;
        let mut source: Option<String> = None;
        k += 1;
        while angle > 0 {
            let Some(&j) = code.get(k) else { break };
            match toks[j].kind {
                TokKind::Punct(b'<') => angle += 1,
                TokKind::Punct(b'>') => angle -= 1,
                TokKind::Ident => source = Some(toks[j].text(&file.raw).to_string()),
                _ => {}
            }
            k += 1;
        }
        let Some(source) = source else { continue };
        if code
            .get(k)
            .is_none_or(|&j| toks[j].text(&file.raw) != "for")
        {
            continue;
        }
        // Target: last path segment before the impl body opens.
        let mut target: Option<String> = None;
        k += 1;
        while let Some(&j) = code.get(k) {
            match toks[j].kind {
                TokKind::Ident => target = Some(toks[j].text(&file.raw).to_string()),
                TokKind::Punct(b'{') => break,
                _ => {}
            }
            k += 1;
        }
        if let Some(target) = target {
            out.push((source, target));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Report;
    use std::path::PathBuf;

    fn fixture(rel: &str, src: &str) -> SourceFile {
        SourceFile::from_source(PathBuf::from(rel), rel.to_string(), src.to_string())
    }

    fn run(files: &[SourceFile]) -> Report {
        let mut report = Report::default();
        let mut sink = Sink::new(&mut report);
        taxonomy_coverage(files, &mut sink);
        report
    }

    #[test]
    fn variant_extraction_handles_payload_shapes() {
        let f = fixture(
            "crates/server/src/wire.rs",
            "pub enum E {\n    Plain,\n    Tuple(std::io::Error),\n    Fields { shard: u32, source: SearchError },\n    Doc(String),\n}\n",
        );
        let item = f
            .tree
            .walk()
            .into_iter()
            .find(|i| i.kind == ItemKind::Enum)
            .unwrap();
        let vars = enum_variants(&f, item);
        let names: Vec<&str> = vars.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(names, vec!["Plain", "Tuple", "Fields", "Doc"]);
        assert_eq!(vars[1].payload_error_idents, vec!["Error"]);
        assert_eq!(vars[2].payload_error_idents, vec!["SearchError"]);
        assert!(vars[3].payload_error_idents.is_empty());
        assert_eq!(vars[0].line, 2);
    }

    #[test]
    fn from_impl_edges_extracted() {
        let f = fixture(
            "crates/core/src/error.rs",
            "impl From<tks_worm::WormError> for TksError {\n    fn from(e: tks_worm::WormError) -> TksError { TksError::Worm(e) }\n}\nimpl From<&ShardError> for WireError {\n    fn from(e: &ShardError) -> WireError { todo!() }\n}\n",
        );
        let pairs = from_impls(&f);
        assert_eq!(
            pairs,
            vec![
                ("WormError".to_string(), "TksError".to_string()),
                ("ShardError".to_string(), "WireError".to_string()),
            ]
        );
    }

    #[test]
    fn unconsumed_wire_variant_denied() {
        let wire = fixture(
            "crates/server/src/wire.rs",
            "pub enum WireErrorCode {\n    Overloaded,\n    Internal,\n}\n",
        );
        let client = fixture(
            "crates/client/src/lib.rs",
            "pub fn classify(c: WireErrorCode) -> bool {\n    matches!(c, WireErrorCode::Overloaded)\n}\n",
        );
        let report = run(&[wire, client]);
        assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
        assert_eq!(report.findings[0].line, 3);
        assert!(report.findings[0]
            .message
            .contains("WireErrorCode::Internal"));
    }

    #[test]
    fn test_only_client_use_does_not_count() {
        let wire = fixture(
            "crates/server/src/wire.rs",
            "pub enum WireErrorCode {\n    Overloaded,\n}\n",
        );
        let client = fixture(
            "crates/client/src/lib.rs",
            "#[cfg(test)]\nmod tests {\n    fn t() { let _ = WireErrorCode::Overloaded; }\n}\n",
        );
        let report = run(&[wire, client]);
        assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    }

    #[test]
    fn disconnected_error_enum_denied_connected_ones_pass() {
        let root = fixture(
            "crates/core/src/error.rs",
            "pub enum TksError {\n    Worm(WormError),\n}\n",
        );
        let connected = fixture(
            "crates/worm/src/device.rs",
            "pub enum WormError {\n    Io(String),\n}\n",
        );
        let orphan = fixture(
            "crates/worm/src/layout.rs",
            "pub enum LayoutError {\n    Io(String),\n    DuplicateShard(u32),\n}\n",
        );
        let report = run(&[root, connected, orphan]);
        assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
        assert_eq!(report.findings[0].file, "crates/worm/src/layout.rs");
        assert_eq!(report.findings[0].line, 1);
        assert!(report.findings[0].message.contains("`LayoutError`"));
    }

    #[test]
    fn from_impl_reconnects_orphan() {
        let root = fixture(
            "crates/core/src/error.rs",
            "pub enum TksError {\n    Worm(WormError),\n}\n",
        );
        let worm = fixture(
            "crates/worm/src/device.rs",
            "pub enum WormError {\n    Io(String),\n}\nimpl From<LayoutError> for WormError {\n    fn from(e: LayoutError) -> WormError { WormError::Io(format!(\"{e}\")) }\n}\n",
        );
        let layout = fixture(
            "crates/worm/src/layout.rs",
            "pub enum LayoutError {\n    Io(String),\n}\n",
        );
        let report = run(&[root, worm, layout]);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn io_error_payload_roots_a_type() {
        let server = fixture(
            "crates/server/src/error.rs",
            "pub enum ServerError {\n    Io(std::io::Error),\n}\n",
        );
        let report = run(&[server]);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn string_payload_does_not_fake_connectivity() {
        // Both enums carry `String` payloads; that shared plain type must
        // not link the orphan to the rooted one.
        let rooted = fixture(
            "crates/core/src/error.rs",
            "pub enum TksError {\n    Msg(String),\n    Io(std::io::Error),\n}\n",
        );
        let orphan = fixture(
            "crates/jump/src/lib.rs",
            "pub enum JumpError {\n    Msg(String),\n}\n",
        );
        let report = run(&[rooted, orphan]);
        assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
        assert!(report.findings[0].message.contains("`JumpError`"));
    }

    #[test]
    fn suppression_applies_to_coverage_findings() {
        let orphan = fixture(
            "crates/jump/src/lib.rs",
            "// audit:allow(taxonomy-coverage) — internal-only probe error\npub enum ProbeError {\n    Msg(String),\n}\n",
        );
        let report = run(&[orphan]);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert_eq!(report.suppressed, 1);
    }
}
