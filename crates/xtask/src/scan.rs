//! Source model for the audit: load `.rs` files and derive every view the
//! rules need from **one lex + one item-tree build per file**.
//!
//! Since the v2 engine, a [`SourceFile`] carries the token stream
//! ([`crate::lex`]) and the item tree ([`crate::tree`]) as the primary
//! representations; the stripped "code view" and the `#[cfg(test)]` line
//! mask are derived from them (not from the old line-oriented state
//! machine), so token-level rules, item-scoped suppression, and the legacy
//! line-pattern helpers all agree on what is code and what is test-only.
//!
//! The original hand-rolled stripper survives as [`strip_legacy`]: it is
//! the oracle for the lexer property test
//! (`stripped(lex(src)) == strip_legacy(src)`), pinning the port as
//! behaviour-preserving.

use crate::lex::{self, Token};
use crate::tree::{self, Directive, ItemTree};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A loaded source file with its derived views.
pub struct SourceFile {
    /// Absolute path on disk.
    pub path: PathBuf,
    /// Path relative to the workspace root, with `/` separators.
    pub rel: String,
    /// Raw file contents (used for snippets).
    pub raw: String,
    /// Token stream of `raw`.
    pub tokens: Vec<Token>,
    /// Item tree built over `tokens`.
    pub tree: ItemTree,
    /// Contents with comments and string/char literal bodies blanked to
    /// spaces, derived from the token stream.  Same length and line
    /// structure as `raw`.
    pub code: String,
}

impl SourceFile {
    /// Load and pre-process one file.
    pub fn load(root: &Path, path: PathBuf) -> io::Result<Self> {
        let raw = fs::read_to_string(&path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        Ok(Self::from_source(path, rel, raw))
    }

    /// Build the model from in-memory source (used by rule unit tests).
    pub fn from_source(path: PathBuf, rel: String, raw: String) -> Self {
        let tokens = lex::lex(&raw);
        let tree = tree::build(&raw, &tokens);
        let code = lex::stripped(&raw, &tokens);
        Self {
            path,
            rel,
            raw,
            tokens,
            tree,
            code,
        }
    }

    /// Lines of the stripped view, zipped with 1-based line numbers, raw
    /// text, and the test mask.
    pub fn lines(&self) -> impl Iterator<Item = LineView<'_>> {
        self.code
            .lines()
            .zip(self.raw.lines())
            .enumerate()
            .map(|(i, (code, raw))| LineView {
                number: i + 1,
                code,
                raw,
                in_test: self.tree.in_test(i),
            })
    }

    /// Is 1-based `line` inside `#[cfg(test)]`-gated code?
    pub fn in_test(&self, line: usize) -> bool {
        self.tree.in_test(line.saturating_sub(1))
    }

    /// The directive suppressing `rule` at 1-based `line`, if any (see
    /// [`ItemTree::allow_for`]).
    pub fn allow_for(&self, line: usize, rule: &str) -> Option<Directive> {
        self.tree.allow_for(line, rule)
    }

    /// The trimmed raw text of 1-based `line` (finding snippets).
    pub fn snippet(&self, line: usize) -> String {
        self.raw
            .lines()
            .nth(line.saturating_sub(1))
            .unwrap_or("")
            .trim()
            .to_string()
    }
}

/// One line of a [`SourceFile`], in both views.
pub struct LineView<'a> {
    /// 1-based line number.
    pub number: usize,
    /// Stripped view (comments/literals blanked).
    pub code: &'a str,
    /// Raw view (for snippets).
    pub raw: &'a str,
    /// Whether the line is inside a `#[cfg(test)]` item.
    pub in_test: bool,
}

/// Recursively collect `.rs` files under `dir`, skipping `target/`,
/// `vendor/`, and hidden directories.  Results are sorted for
/// deterministic reports.
pub fn walk_rs_files(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    walk_into(dir, &mut out)?;
    out.sort();
    Ok(out)
}

fn walk_into(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "vendor" || name.starts_with('.') {
                continue;
            }
            walk_into(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The original line-oriented stripper, kept verbatim as the oracle for
/// the lexer property test: blank comments and string/char literal bodies
/// to spaces, preserving newlines and byte offsets.
///
/// Handles line comments, nested block comments, `"…"` and `b"…"` strings
/// with escapes, raw strings `r"…"` / `r#"…"#` (any hash count), and char
/// literals.  A `'` is treated as a char literal only when it closes within
/// a few bytes (`'x'`, `'\n'`, `'\u{..}'`); otherwise it is a lifetime and
/// left alone.  This is the standard lexical heuristic and is exact for
/// rustfmt-formatted sources.
pub fn strip_legacy(raw: &str) -> String {
    let b = raw.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(b.len());
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        // Line comment.
        if c == b'/' && b.get(i + 1) == Some(&b'/') {
            while i < b.len() && b[i] != b'\n' {
                out.push(b' ');
                i += 1;
            }
            continue;
        }
        // Block comment (nested).
        if c == b'/' && b.get(i + 1) == Some(&b'*') {
            let mut depth = 0usize;
            while i < b.len() {
                if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    out.extend_from_slice(b"  ");
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
            continue;
        }
        // Raw string r"…" / r#"…"# (optionally b-prefixed).
        let (raw_start, raw_prefix) = if c == b'r' {
            (true, 1)
        } else if c == b'b' && b.get(i + 1) == Some(&b'r') {
            (true, 2)
        } else {
            (false, 0)
        };
        if raw_start && !prev_is_ident(&out) {
            let mut j = i + raw_prefix;
            let mut hashes = 0usize;
            while b.get(j) == Some(&b'#') {
                hashes += 1;
                j += 1;
            }
            if b.get(j) == Some(&b'"') {
                // Emit the opener verbatim-length as spaces, then blank to
                // the matching closer `"###…`.
                out.resize(out.len() + (j - i + 1), b' ');
                i = j + 1;
                'raw: while i < b.len() {
                    if b[i] == b'"' {
                        let mut k = 0;
                        while k < hashes && b.get(i + 1 + k) == Some(&b'#') {
                            k += 1;
                        }
                        if k == hashes {
                            out.resize(out.len() + hashes + 1, b' ');
                            i += 1 + hashes;
                            break 'raw;
                        }
                    }
                    out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
                continue;
            }
        }
        // Ordinary string (optionally b-prefixed).
        if c == b'"' || (c == b'b' && b.get(i + 1) == Some(&b'"') && !prev_is_ident(&out)) {
            let skip = if c == b'b' { 2 } else { 1 };
            out.resize(out.len() + skip, b' ');
            i += skip;
            while i < b.len() {
                if b[i] == b'\\' {
                    // An escaped newline (string continuation) must stay a
                    // newline or every later line number drifts — the one
                    // v1 bug fixed in this otherwise-verbatim copy (the v2
                    // lexer preserves line structure; the oracle must too).
                    out.push(b' ');
                    if b.get(i + 1) == Some(&b'\n') {
                        out.push(b'\n');
                    } else if i + 1 < b.len() {
                        out.push(b' ');
                    }
                    i += 2;
                    continue;
                }
                if b[i] == b'"' {
                    out.push(b' ');
                    i += 1;
                    break;
                }
                out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                i += 1;
            }
            continue;
        }
        // Char literal vs lifetime.
        if c == b'\'' {
            let closes = if b.get(i + 1) == Some(&b'\\') {
                // Escaped char: find the closing quote within a small window
                // (covers '\n', '\u{10FFFF}').
                (i + 2..(i + 12).min(b.len())).find(|&k| b[k] == b'\'')
            } else if b.get(i + 2) == Some(&b'\'') && b.get(i + 1) != Some(&b'\'') {
                Some(i + 2)
            } else {
                // Multi-byte UTF-8 scalar like 'é': closing quote within 5.
                (i + 2..(i + 6).min(b.len()))
                    .find(|&k| b[k] == b'\'')
                    .filter(|_| b.get(i + 1).is_some_and(|&x| x >= 0x80))
            };
            if let Some(end) = closes {
                for &byte in b.iter().take(end + 1).skip(i) {
                    out.push(if byte == b'\n' { b'\n' } else { b' ' });
                }
                i = end + 1;
                continue;
            }
            // Lifetime: emit the quote, keep going.
            out.push(c);
            i += 1;
            continue;
        }
        out.push(c);
        i += 1;
    }
    // strip_legacy operates on bytes but only ever replaces bytes with
    // spaces, so the result is valid UTF-8 whenever the input was.
    String::from_utf8(out).unwrap_or_default()
}

fn prev_is_ident(out: &[u8]) -> bool {
    out.last()
        .is_some_and(|&c| c.is_ascii_alphanumeric() || c == b'_')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(rel: &str, src: &str) -> SourceFile {
        SourceFile::from_source(PathBuf::from(rel), rel.to_string(), src.to_string())
    }

    #[test]
    fn derived_code_view_strips_comments_and_strings() {
        let src = "let x = \"unwrap()\"; // unwrap()\nlet y = 1; /* panic! */\n";
        let f = file("crates/core/src/lib.rs", src);
        assert!(!f.code.contains("unwrap"));
        assert!(!f.code.contains("panic"));
        assert!(f.code.contains("let x ="));
        assert_eq!(f.code.lines().count(), src.lines().count());
    }

    #[test]
    fn derived_view_agrees_with_legacy_on_tricky_input() {
        let src = "let s = r#\"panic!(\"x\")\"#; fn f<'a>(x: &'a str) {}\nlet c = '\\n'; let q = '\"'; let s2 = \"after\";\n";
        let f = file("crates/core/src/lib.rs", src);
        assert_eq!(f.code, strip_legacy(src));
    }

    #[test]
    fn test_mask_via_tree() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let f = file("crates/core/src/lib.rs", src);
        let mask: Vec<bool> = f.lines().map(|l| l.in_test).collect();
        assert_eq!(mask, vec![false, true, true, true, true, false]);
    }
}
