//! Source model for the audit: load `.rs` files, blank out comments and
//! string/char literals (so pattern rules never fire inside them), and mark
//! which lines belong to `#[cfg(test)]`-gated items.
//!
//! The scanner is deliberately lexical, not syntactic: it never parses Rust,
//! it only tracks enough state (comment nesting, string kinds, brace depth)
//! to answer "is this byte code, and is it test-only code?".  That keeps the
//! tool dependency-free and fast, at the cost of a few documented
//! heuristics (see [`strip_code`] and [`test_line_mask`]).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A loaded source file with its derived views.
pub struct SourceFile {
    /// Absolute path on disk.
    pub path: PathBuf,
    /// Path relative to the workspace root, with `/` separators.
    pub rel: String,
    /// Raw file contents (used for allow-directive comments and snippets).
    pub raw: String,
    /// Contents with comments and string/char literal bodies blanked to
    /// spaces.  Same length and line structure as `raw`.
    pub code: String,
    /// `mask[i]` is true when line `i` (0-based) is inside a
    /// `#[cfg(test)]`-gated item.
    pub test_mask: Vec<bool>,
}

impl SourceFile {
    /// Load and pre-process one file.
    pub fn load(root: &Path, path: PathBuf) -> io::Result<Self> {
        let raw = fs::read_to_string(&path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let code = strip_code(&raw);
        let test_mask = test_line_mask(&code);
        Ok(Self {
            path,
            rel,
            raw,
            code,
            test_mask,
        })
    }

    /// Lines of the stripped view, zipped with 1-based line numbers, raw
    /// text, and the test mask.
    pub fn lines(&self) -> impl Iterator<Item = LineView<'_>> {
        self.code
            .lines()
            .zip(self.raw.lines())
            .enumerate()
            .map(|(i, (code, raw))| LineView {
                number: i + 1,
                code,
                raw,
                in_test: self.test_mask.get(i).copied().unwrap_or(false),
            })
    }
}

/// One line of a [`SourceFile`], in both views.
pub struct LineView<'a> {
    /// 1-based line number.
    pub number: usize,
    /// Stripped view (comments/literals blanked).
    pub code: &'a str,
    /// Raw view (for snippets and allow directives).
    pub raw: &'a str,
    /// Whether the line is inside a `#[cfg(test)]` item.
    pub in_test: bool,
}

/// Recursively collect `.rs` files under `dir`, skipping `target/`,
/// `vendor/`, and hidden directories.  Results are sorted for
/// deterministic reports.
pub fn walk_rs_files(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    walk_into(dir, &mut out)?;
    out.sort();
    Ok(out)
}

fn walk_into(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "vendor" || name.starts_with('.') {
                continue;
            }
            walk_into(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Blank comments and string/char literal bodies to spaces, preserving
/// newlines and byte offsets.
///
/// Handles line comments, nested block comments, `"…"` and `b"…"` strings
/// with escapes, raw strings `r"…"` / `r#"…"#` (any hash count), and char
/// literals.  A `'` is treated as a char literal only when it closes within
/// a few bytes (`'x'`, `'\n'`, `'\u{..}'`); otherwise it is a lifetime and
/// left alone.  This is the standard lexical heuristic and is exact for
/// rustfmt-formatted sources.
pub fn strip_code(raw: &str) -> String {
    let b = raw.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(b.len());
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        // Line comment.
        if c == b'/' && b.get(i + 1) == Some(&b'/') {
            while i < b.len() && b[i] != b'\n' {
                out.push(b' ');
                i += 1;
            }
            continue;
        }
        // Block comment (nested).
        if c == b'/' && b.get(i + 1) == Some(&b'*') {
            let mut depth = 0usize;
            while i < b.len() {
                if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    out.extend_from_slice(b"  ");
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
            continue;
        }
        // Raw string r"…" / r#"…"# (optionally b-prefixed).
        let (raw_start, raw_prefix) = if c == b'r' {
            (true, 1)
        } else if c == b'b' && b.get(i + 1) == Some(&b'r') {
            (true, 2)
        } else {
            (false, 0)
        };
        if raw_start && !prev_is_ident(&out) {
            let mut j = i + raw_prefix;
            let mut hashes = 0usize;
            while b.get(j) == Some(&b'#') {
                hashes += 1;
                j += 1;
            }
            if b.get(j) == Some(&b'"') {
                // Emit the opener verbatim-length as spaces, then blank to
                // the matching closer `"###…`.
                out.resize(out.len() + (j - i + 1), b' ');
                i = j + 1;
                'raw: while i < b.len() {
                    if b[i] == b'"' {
                        let mut k = 0;
                        while k < hashes && b.get(i + 1 + k) == Some(&b'#') {
                            k += 1;
                        }
                        if k == hashes {
                            out.resize(out.len() + hashes + 1, b' ');
                            i += 1 + hashes;
                            break 'raw;
                        }
                    }
                    out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
                continue;
            }
        }
        // Ordinary string (optionally b-prefixed).
        if c == b'"' || (c == b'b' && b.get(i + 1) == Some(&b'"') && !prev_is_ident(&out)) {
            let skip = if c == b'b' { 2 } else { 1 };
            out.resize(out.len() + skip, b' ');
            i += skip;
            while i < b.len() {
                if b[i] == b'\\' {
                    out.extend_from_slice(b"  ");
                    i += 2;
                    continue;
                }
                if b[i] == b'"' {
                    out.push(b' ');
                    i += 1;
                    break;
                }
                out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                i += 1;
            }
            continue;
        }
        // Char literal vs lifetime.
        if c == b'\'' {
            let closes = if b.get(i + 1) == Some(&b'\\') {
                // Escaped char: find the closing quote within a small window
                // (covers '\n', '\u{10FFFF}').
                (i + 2..(i + 12).min(b.len())).find(|&k| b[k] == b'\'')
            } else if b.get(i + 2) == Some(&b'\'') && b.get(i + 1) != Some(&b'\'') {
                Some(i + 2)
            } else {
                // Multi-byte UTF-8 scalar like 'é': closing quote within 5.
                (i + 2..(i + 6).min(b.len()))
                    .find(|&k| b[k] == b'\'')
                    .filter(|_| b.get(i + 1).is_some_and(|&x| x >= 0x80))
            };
            if let Some(end) = closes {
                for &byte in b.iter().take(end + 1).skip(i) {
                    out.push(if byte == b'\n' { b'\n' } else { b' ' });
                }
                i = end + 1;
                continue;
            }
            // Lifetime: emit the quote, keep going.
            out.push(c);
            i += 1;
            continue;
        }
        out.push(c);
        i += 1;
    }
    // strip_code operates on bytes but only ever replaces bytes with spaces,
    // so the result is valid UTF-8 whenever the input was.
    String::from_utf8(out).unwrap_or_default()
}

fn prev_is_ident(out: &[u8]) -> bool {
    out.last()
        .is_some_and(|&c| c.is_ascii_alphanumeric() || c == b'_')
}

/// Mark lines covered by `#[cfg(test)]`-gated items.
///
/// Tracks brace depth over the stripped source; when a `#[cfg(test)]`
/// attribute is seen, the next `{` opens a test region that closes when the
/// depth returns to its opening value.  Attribute lines between the cfg and
/// the item body (e.g. an `#[allow(…)]` stack) are included.  A `;` before
/// any `{` cancels the pending attribute (covers `#[cfg(test)] use …;`).
pub fn test_line_mask(code: &str) -> Vec<bool> {
    let mut mask = Vec::new();
    let mut depth: usize = 0;
    let mut regions: Vec<usize> = Vec::new();
    let mut pending = false;
    for line in code.lines() {
        let compact: String = line.chars().filter(|c| !c.is_whitespace()).collect();
        let attr_here = compact.contains("#[cfg(test)]");
        if attr_here {
            pending = true;
        }
        mask.push(!regions.is_empty() || pending);
        for ch in line.chars() {
            match ch {
                '{' => {
                    if pending {
                        regions.push(depth);
                        pending = false;
                    }
                    depth += 1;
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    if regions.last() == Some(&depth) {
                        regions.pop();
                    }
                }
                ';' if pending && !attr_here => pending = false,
                _ => {}
            }
        }
        // `#[cfg(test)] use foo;` on one line: the `;` handler above skips
        // same-line cancellation, so handle it here.
        if attr_here && pending && compact.ends_with(';') {
            pending = false;
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_comments_and_strings() {
        let src = "let x = \"unwrap()\"; // unwrap()\nlet y = 1; /* panic! */\n";
        let s = strip_code(src);
        assert!(!s.contains("unwrap"));
        assert!(!s.contains("panic"));
        assert!(s.contains("let x ="));
        assert_eq!(s.lines().count(), src.lines().count());
    }

    #[test]
    fn strips_raw_strings_and_keeps_lifetimes() {
        let src = "let s = r#\"panic!(\"x\")\"#; fn f<'a>(x: &'a str) {}";
        let s = strip_code(src);
        assert!(!s.contains("panic"));
        assert!(s.contains("<'a>"));
    }

    #[test]
    fn char_literals_blanked() {
        let src = "let c = '\\n'; let q = '\"'; let s = \"after\";";
        let s = strip_code(src);
        assert!(!s.contains("after"));
        assert!(!s.contains('"'));
    }

    #[test]
    fn test_mask_covers_cfg_test_mod() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let mask = test_line_mask(&strip_code(src));
        assert_eq!(mask, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn test_mask_handles_attr_stack_and_use() {
        let src = "#[cfg(test)]\n#[allow(deprecated)]\nmod tests {\n    fn t() {}\n}\n#[cfg(test)] use x;\nfn prod() {}\n";
        let mask = test_line_mask(&strip_code(src));
        assert_eq!(mask, vec![true, true, true, true, true, true, false]);
    }
}
