//! The audit rules.
//!
//! Each rule walks the pre-processed [`SourceFile`]s (comments and string
//! literals already blanked, `#[cfg(test)]` lines masked) and emits
//! [`Finding`]s.  Findings can be suppressed two ways:
//!
//! * a **rule allowlist** of path prefixes (e.g. `crates/worm/` may name
//!   overwrite APIs — it implements the WORM device and must reject them);
//! * an **inline directive**: a comment containing `audit:allow(<rule>)`
//!   on the offending line or the line above.
//!
//! Suppressed findings are counted in [`Report::suppressed`] so a clean run
//! still shows how many exceptions are in play.

use crate::report::{Finding, Report, Severity};
use crate::scan::SourceFile;
use std::collections::{BTreeMap, BTreeSet};

/// Production crates subject to the panic and taxonomy rules: the storage
/// and query layers whose failures must surface as typed errors (a crash
/// during a compliance lookup is indistinguishable from a hidden record).
pub const PROD_PREFIXES: [&str; 7] = [
    "crates/core/src/",
    "crates/worm/src/",
    "crates/jump/src/",
    "crates/postings/src/",
    "crates/shard/src/",
    "crates/server/src/",
    "crates/client/src/",
];

/// Crates that speak the network protocol, subject to `wire-versioning`.
const WIRE_PREFIXES: [&str; 2] = ["crates/server/src/", "crates/client/src/"];

/// The envelope module — the one file in the network crates that may name
/// serde.  Everything that crosses the wire is defined here, behind the
/// protocol-version byte.
const WIRE_ENVELOPE: &str = "crates/server/src/wire.rs";

/// serde machinery identifiers denied outside the envelope module.
const SERDE_IDENTS: [&str; 4] = ["serde", "serde_json", "Serialize", "Deserialize"];

/// Internal core/shard types that must never be serialized directly: their
/// layout follows the engine, not the protocol, so putting one on the wire
/// silently couples remote clients to internal refactors.  The envelope
/// mirrors each as a versioned `Wire*` type instead.
const INTERNAL_WIRE_TYPES: [&str; 9] = [
    "Query",
    "QueryResponse",
    "ShardedResponse",
    "ShardStatus",
    "TimeRange",
    "TermSelector",
    "SearchHit",
    "DegradedShard",
    "ShardedStatus",
];

/// Path prefixes exempt from `worm-append-only`: the WORM layer itself
/// (it names overwrite APIs in order to reject them) and this audit tool
/// (it names them as patterns).
const WORM_RULE_ALLOW: [&str; 2] = ["crates/worm/", "crates/xtask/"];

/// Path prefixes subject to `hot-path-io`: the crates whose read paths
/// are supposed to be block-granular (`read_block` / `read_exact_at`
/// batched reads, decoded a block at a time).
const HOT_PATH_PREFIXES: [&str; 2] = ["crates/postings/src/", "crates/core/src/"];

/// Panicking constructs denied in production code.
const PANIC_METHODS: [&str; 2] = ["unwrap", "expect"];
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// API names that truncate or overwrite storage.  Nothing outside the WORM
/// layer may even name them: committed extents are immutable, and the only
/// mutation path is `WormDevice::try_overwrite`, which exists to *reject*
/// tampering and log a `TamperAttempt`.
const OVERWRITE_APIS: [&str; 7] = [
    "try_overwrite",
    "device_mut",
    "set_len",
    "ftruncate",
    "truncate_file",
    "remove_file",
    "OpenOptions",
];

/// Storage-layer identifiers the shard crate must not name: the sharding
/// layer routes and merges, it never touches a shard's WORM devices or
/// posting store directly.  Every storage interaction flows through the
/// engine/service API, so per-shard fault isolation (and the audit rules
/// above it) cannot be bypassed by the orchestration layer.  The opaque
/// `EngineParts` pass-through is allowed — it carries devices to recovery
/// without granting access to them.
const SHARD_STORAGE_IDENTS: [&str; 13] = [
    "WormFs",
    "WormDevice",
    "ListStore",
    "list_store",
    "list_store_mut",
    "doc_fs",
    "doc_fs_mut",
    "positions_fs",
    "positions_fs_mut",
    "store_fs",
    "pos_fs",
    "load_fs",
    "save_fs",
];

/// Does `raw` (or the preceding raw line) carry an `audit:allow(rule)`
/// directive?
fn allowed_inline(file: &SourceFile, line_no: usize, rule: &str) -> bool {
    let needle = format!("audit:allow({rule})");
    let raws: Vec<&str> = file.raw.lines().collect();
    let here = raws.get(line_no - 1).copied().unwrap_or("");
    let above = if line_no >= 2 {
        raws.get(line_no - 2).copied().unwrap_or("")
    } else {
        ""
    };
    here.contains(&needle) || above.contains(&needle)
}

fn under_any(rel: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| rel.starts_with(p))
}

/// Iterate identifiers in a stripped line as `(column0, ident)`.
fn idents(line: &str) -> Vec<(usize, &str)> {
    let b = line.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = i;
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
            out.push((start, &line[start..i]));
        } else {
            i += 1;
        }
    }
    out
}

fn next_non_ws(line: &str, from: usize) -> Option<u8> {
    line.as_bytes()[from..]
        .iter()
        .copied()
        .find(|c| !c.is_ascii_whitespace())
}

struct Sink<'a> {
    report: &'a mut Report,
}

impl Sink<'_> {
    fn emit(
        &mut self,
        file: &SourceFile,
        rule: &'static str,
        severity: Severity,
        line_no: usize,
        col0: usize,
        message: String,
    ) {
        if allowed_inline(file, line_no, rule) {
            self.report.suppressed += 1;
            return;
        }
        let snippet = file
            .raw
            .lines()
            .nth(line_no - 1)
            .unwrap_or("")
            .trim()
            .to_string();
        self.report.findings.push(Finding {
            rule,
            severity,
            file: file.rel.clone(),
            line: line_no,
            col: col0 + 1,
            message,
            snippet,
        });
    }
}

/// Rule `no-panic-in-prod`: no `unwrap`/`expect` calls and no
/// `panic!`/`unreachable!`/`todo!`/`unimplemented!` macros in non-test code
/// of the production crates (deny); slice/array indexing is flagged at warn
/// severity since `get(..)` with a typed error is preferred but indexing a
/// just-validated range is acceptable.
pub fn no_panic_in_prod(files: &[SourceFile], report: &mut Report) {
    let mut sink = Sink { report };
    for file in files.iter().filter(|f| under_any(&f.rel, &PROD_PREFIXES)) {
        for line in file.lines() {
            if line.in_test {
                continue;
            }
            for (col, id) in idents(line.code) {
                let after = col + id.len();
                if PANIC_METHODS.contains(&id) && next_non_ws(line.code, after) == Some(b'(') {
                    sink.emit(
                        file,
                        "no-panic-in-prod",
                        Severity::Deny,
                        line.number,
                        col,
                        format!(
                            "`{id}(…)` can panic; production code must return a typed \
                             error from the workspace taxonomy instead"
                        ),
                    );
                }
                if PANIC_MACROS.contains(&id) && next_non_ws(line.code, after) == Some(b'!') {
                    sink.emit(
                        file,
                        "no-panic-in-prod",
                        Severity::Deny,
                        line.number,
                        col,
                        format!(
                            "`{id}!` aborts the process; a crash during a compliance \
                             lookup is indistinguishable from a hidden record"
                        ),
                    );
                }
            }
            // Warn-level: indexing expressions `expr[…]` (an out-of-range
            // index panics).  Heuristic: `[` directly preceded by an
            // identifier character, `)`, or `]`.  Attribute lines are
            // skipped (`#[cfg(...)]`).
            if line.code.trim_start().starts_with('#') {
                continue;
            }
            let b = line.code.as_bytes();
            for i in 1..b.len() {
                if b[i] == b'['
                    && (b[i - 1].is_ascii_alphanumeric()
                        || b[i - 1] == b'_'
                        || b[i - 1] == b')'
                        || b[i - 1] == b']')
                {
                    sink.emit(
                        file,
                        "no-panic-in-prod",
                        Severity::Warn,
                        line.number,
                        i,
                        "indexing can panic on out-of-range; prefer `get(..)` with a \
                         typed error unless the range was just validated"
                            .to_string(),
                    );
                }
            }
        }
    }
}

/// Rule `worm-append-only`: outside the WORM layer, no non-test code may
/// name a truncation/overwrite API.  Committed extents are write-once; the
/// append-only discipline is what makes the index trustworthy, so the
/// compiler-visible surface of every other crate must not even mention the
/// escape hatches.
pub fn worm_append_only(files: &[SourceFile], report: &mut Report) {
    let mut sink = Sink { report };
    for file in files
        .iter()
        .filter(|f| !under_any(&f.rel, &WORM_RULE_ALLOW))
    {
        // Scope: crate sources and the facade crate, not tests/examples
        // (adversary simulations legitimately attempt overwrites there).
        let in_scope = (file.rel.starts_with("crates/") && file.rel.contains("/src/"))
            || file.rel.starts_with("src/");
        if !in_scope {
            continue;
        }
        for line in file.lines() {
            if line.in_test {
                continue;
            }
            for (col, id) in idents(line.code) {
                if OVERWRITE_APIS.contains(&id) {
                    sink.emit(
                        file,
                        "worm-append-only",
                        Severity::Deny,
                        line.number,
                        col,
                        format!(
                            "`{id}` is a truncation/overwrite API; only crates/worm may \
                             name it (committed WORM extents are immutable)"
                        ),
                    );
                }
            }
        }
    }
}

/// Rule `shard-isolation`: non-test code in `crates/shard` must not name
/// any storage-layer API — no `WormFs`/`WormDevice`, no posting-store
/// accessors, no persistence entry points.  The sharding layer is pure
/// orchestration: it owns per-shard `IndexWriter`/`Searcher` handles and
/// opaque `EngineParts`, and every byte that reaches a WORM device goes
/// through the engine's audited commit path.  A shard layer with direct
/// device access could corrupt one shard while reporting another healthy,
/// which is exactly the confusion per-shard fault isolation exists to
/// prevent.
pub fn shard_isolation(files: &[SourceFile], report: &mut Report) {
    let mut sink = Sink { report };
    for file in files
        .iter()
        .filter(|f| f.rel.starts_with("crates/shard/src/"))
    {
        for line in file.lines() {
            if line.in_test {
                continue;
            }
            for (col, id) in idents(line.code) {
                if SHARD_STORAGE_IDENTS.contains(&id) {
                    sink.emit(
                        file,
                        "shard-isolation",
                        Severity::Deny,
                        line.number,
                        col,
                        format!(
                            "`{id}` is a storage-layer API; the shard layer is pure \
                             orchestration and must reach storage only through the \
                             engine/service interface"
                        ),
                    );
                }
            }
        }
    }
}

/// Rule `wire-versioning`: in the network crates (`crates/server`,
/// `crates/client`) every serde touchpoint must live in the envelope
/// module, and internal core/shard types must never be serialized
/// directly.  The wire format is a compatibility contract — a versioned
/// `Wire*` mirror per payload, behind the protocol-version byte — so the
/// engine's internal response types can evolve without silently breaking
/// deployed clients.  Concretely:
///
/// * outside `crates/server/src/wire.rs`, non-test code in the network
///   crates must not name `serde`, `serde_json`, `Serialize`, or
///   `Deserialize` (derives included);
/// * inside the envelope module, no hand-rolled
///   `impl Serialize/Deserialize for <internal type>` and no
///   `serde_json` call that names an internal core/shard type.
pub fn wire_versioning(files: &[SourceFile], report: &mut Report) {
    let mut sink = Sink { report };
    for file in files.iter().filter(|f| under_any(&f.rel, &WIRE_PREFIXES)) {
        let in_envelope = file.rel == WIRE_ENVELOPE;
        for line in file.lines() {
            if line.in_test {
                continue;
            }
            let ids = idents(line.code);
            if !in_envelope {
                // One finding per line: a `use serde::{…}` line names
                // several serde idents but is a single offence.
                if let Some(&(col, id)) = ids.iter().find(|(_, id)| SERDE_IDENTS.contains(id)) {
                    sink.emit(
                        file,
                        "wire-versioning",
                        Severity::Deny,
                        line.number,
                        col,
                        format!(
                            "`{id}` outside the envelope module ({WIRE_ENVELOPE}); \
                             every wire type and serde touchpoint in the network \
                             crates must live behind the versioned envelope"
                        ),
                    );
                }
                continue;
            }
            // Envelope module: serde is allowed, internal types on the
            // wire are not.
            for pat in ["Serialize for ", "Deserialize for "] {
                if let Some(pos) = line.code.find(pat) {
                    if line.code[..pos].contains("impl") {
                        let name: String = line.code[pos + pat.len()..]
                            .chars()
                            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                            .collect();
                        if INTERNAL_WIRE_TYPES.contains(&name.as_str()) {
                            sink.emit(
                                file,
                                "wire-versioning",
                                Severity::Deny,
                                line.number,
                                pos,
                                format!(
                                    "hand-rolled serde impl for internal type `{name}`; \
                                     internal core/shard types cross the wire only as \
                                     versioned `Wire*` envelope mirrors"
                                ),
                            );
                        }
                    }
                }
            }
            // Same-line lexical check: a serde_json call that names an
            // internal type on the line (argument, turbofish, or binding
            // annotation) is a direct leak of engine layout to the wire.
            if ids.iter().any(|&(_, id)| id == "serde_json") {
                if let Some(&(col, id)) =
                    ids.iter().find(|(_, id)| INTERNAL_WIRE_TYPES.contains(id))
                {
                    sink.emit(
                        file,
                        "wire-versioning",
                        Severity::Deny,
                        line.number,
                        col,
                        format!(
                            "internal type `{id}` on a serde_json line; serialize \
                             its versioned `Wire*` mirror instead — internal types \
                             are not wire-stable"
                        ),
                    );
                }
            }
        }
    }
}

/// Rule `hot-path-io` (warn): a `…fs.read(…)` call whose length argument
/// is a small constant — an integer literal or an ALL-CAPS const like
/// `META_RECORD` — inside the postings/core read paths is a per-record
/// read: it pays call overhead and a storage-cache traversal for every
/// few bytes.  Batch through `WormFs::read_block` / `read_exact_at` and
/// decode whole blocks instead.  One-off metadata readers (recovery
/// headers, per-document records) may opt out with
/// `audit:allow(hot-path-io)`.
pub fn hot_path_io(files: &[SourceFile], report: &mut Report) {
    let mut sink = Sink { report };
    for file in files
        .iter()
        .filter(|f| under_any(&f.rel, &HOT_PATH_PREFIXES))
    {
        let lines: Vec<&str> = file.code.lines().collect();
        for (idx, line) in lines.iter().enumerate() {
            if file.test_mask.get(idx).copied().unwrap_or(false) {
                continue;
            }
            let mut from = 0;
            while let Some(p) = line.get(from..).and_then(|s| s.find(".read(")) {
                let i = from + p;
                from = i + ".read(".len();
                if !receiver_ends_with_fs(line, i) {
                    continue;
                }
                let Some(args) = call_args(&lines, idx, i + ".read(".len()) else {
                    continue;
                };
                let Some(len_arg) = last_top_level_arg(&args) else {
                    continue;
                };
                if is_const_len(&len_arg) {
                    sink.emit(
                        file,
                        "hot-path-io",
                        Severity::Warn,
                        idx + 1,
                        i,
                        format!(
                            "constant-length `fs.read(…, {len_arg})` is a per-record read on \
                             the block-granular read path; batch via `read_block`/`read_exact_at` \
                             (metadata readers may `audit:allow(hot-path-io)`)"
                        ),
                    );
                }
            }
        }
    }
}

/// Is the identifier immediately before the `.` at `dot` an `fs`-suffixed
/// receiver (`fs`, `self.fs`, `doc_fs`, …)?
fn receiver_ends_with_fs(line: &str, dot: usize) -> bool {
    let b = line.as_bytes();
    let mut s = dot;
    while s > 0 && (b[s - 1].is_ascii_alphanumeric() || b[s - 1] == b'_') {
        s -= 1;
    }
    line.get(s..dot).is_some_and(|id| id.ends_with("fs"))
}

/// The argument text of a call whose opening paren sits just before
/// `lines[idx][start..]`, spanning at most a few lines.
fn call_args(lines: &[&str], idx: usize, start: usize) -> Option<String> {
    let mut out = String::new();
    let mut depth = 1i32;
    let mut j = idx;
    let mut rest: &str = lines.get(j)?.get(start..)?;
    loop {
        for (k, c) in rest.char_indices() {
            match c {
                '(' | '[' => depth += 1,
                ')' | ']' => {
                    depth -= 1;
                    if depth == 0 {
                        out.push_str(rest.get(..k).unwrap_or(""));
                        return Some(out);
                    }
                }
                _ => {}
            }
        }
        out.push_str(rest);
        out.push(' ');
        j += 1;
        if j > idx + 4 {
            return None;
        }
        rest = lines.get(j)?;
    }
}

/// The last top-level comma-separated argument of `args`.
fn last_top_level_arg(args: &str) -> Option<String> {
    let mut depth = 0i32;
    let mut last_start = 0usize;
    for (k, c) in args.char_indices() {
        match c {
            '(' | '[' => depth += 1,
            ')' | ']' => depth -= 1,
            ',' if depth == 0 => last_start = k + 1,
            _ => {}
        }
    }
    let a = args.get(last_start..)?.trim();
    (!a.is_empty()).then(|| a.to_string())
}

/// A compile-time-constant length: an integer literal (`2`, `8_192`,
/// `0x10`, `8usize`) or an ALL-CAPS const path (`META_RECORD`,
/// `codec::POSTING_SIZE`), optionally with a trailing cast.
fn is_const_len(arg: &str) -> bool {
    let a = arg.split(" as ").next().unwrap_or(arg).trim();
    if a.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        return true;
    }
    let last_seg = a.rsplit("::").next().unwrap_or(a).trim();
    !last_seg.is_empty()
        && last_seg
            .chars()
            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
        && last_seg.chars().any(|c| c.is_ascii_uppercase())
}

/// Rule `forbid-unsafe`: no `unsafe` anywhere in the workspace (tests
/// included), and every library crate root must carry
/// `#![forbid(unsafe_code)]` so the compiler enforces it too.
pub fn forbid_unsafe(files: &[SourceFile], report: &mut Report) {
    let mut sink = Sink { report };
    for file in files {
        for line in file.lines() {
            for (col, id) in idents(line.code) {
                if id == "unsafe" {
                    sink.emit(
                        file,
                        "forbid-unsafe",
                        Severity::Deny,
                        line.number,
                        col,
                        "`unsafe` is banned workspace-wide; the index must be \
                         auditable without trusting hand-checked invariants"
                            .to_string(),
                    );
                }
            }
        }
        let is_lib_root = file.rel == "src/lib.rs"
            || (file.rel.starts_with("crates/") && file.rel.ends_with("/src/lib.rs"));
        if is_lib_root && !file.raw.contains("#![forbid(unsafe_code)]") {
            sink.emit(
                file,
                "forbid-unsafe",
                Severity::Deny,
                1,
                0,
                "library crate root is missing `#![forbid(unsafe_code)]`".to_string(),
            );
        }
    }
}

/// Rule `error-taxonomy`: every `pub fn` in a production crate that returns
/// `Result<_, E>` must use an `E` that implements `std::error::Error`
/// (membership is established by scanning the workspace for
/// `impl std::error::Error for …`).  `String`, integers, and other ad-hoc
/// error payloads are denied — they cannot carry a source chain and do not
/// compose under the `TksError` umbrella.
pub fn error_taxonomy(files: &[SourceFile], report: &mut Report) {
    // Pass 1: collect types with an Error impl, plus per-crate `Result`
    // aliases (e.g. tks-worm's `pub type Result<T> = Result<T, WormError>`).
    let mut error_types: BTreeSet<String> = BTreeSet::new();
    error_types.insert("Error".to_string()); // std::io::Error et al.
    let mut aliases: BTreeMap<String, String> = BTreeMap::new();
    for file in files {
        for line in file.code.lines() {
            if let Some(pos) = line.find("Error for ") {
                if line[..pos].contains("impl") {
                    let rest = &line[pos + "Error for ".len()..];
                    let name: String = rest
                        .chars()
                        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                        .collect();
                    if !name.is_empty() {
                        error_types.insert(name);
                    }
                }
            }
            if let (Some(tp), Some(eq)) = (line.find("type Result<"), line.find('=')) {
                if tp < eq {
                    if let Some(err) = second_generic_arg(&line[eq..]) {
                        if let Some(krate) = crate_prefix(&file.rel) {
                            aliases.insert(krate.to_string(), last_segment(&err));
                        }
                    }
                }
            }
        }
    }

    // Pass 2: check public fallible signatures in production code.
    let mut sink = Sink { report };
    for file in files.iter().filter(|f| under_any(&f.rel, &PROD_PREFIXES)) {
        for (line_no, sig) in pub_fn_signatures(file) {
            let Some(ret) = return_type(&sig) else {
                continue;
            };
            let Some(idx) = find_result(&ret) else {
                continue;
            };
            let before = &ret[..idx];
            let err = match second_generic_arg(&ret[idx..]) {
                Some(e) => last_segment(&e),
                None => {
                    // Single-argument `Result<T>`: an alias.  `io::Result`
                    // means `io::Error`; otherwise resolve the crate alias.
                    if before.contains("io::") {
                        "Error".to_string()
                    } else {
                        crate_prefix(&file.rel)
                            .and_then(|k| aliases.get(k).cloned())
                            .unwrap_or_default()
                    }
                }
            };
            let ok =
                error_types.contains(&err) || err.starts_with("Box<dyn") || ret.contains("Box<dyn");
            if !ok {
                sink.emit(
                    file,
                    "error-taxonomy",
                    Severity::Deny,
                    line_no,
                    0,
                    format!(
                        "public fallible API returns `Result<_, {}>` but `{}` has no \
                         `std::error::Error` impl in the workspace taxonomy",
                        if err.is_empty() { "?" } else { &err },
                        if err.is_empty() {
                            "the error type"
                        } else {
                            &err
                        },
                    ),
                );
            }
        }
    }
}

/// Rule `commit-point-order`: DOCMETA is the commit point — the record
/// whose presence makes a document durable — so it must be the **last**
/// WORM append of a commit path.  Crash recovery quarantines everything
/// behind the last whole DOCMETA record; an index append sequenced after
/// the DOCMETA append would make a torn commit *visible* (metadata whole,
/// postings missing) instead of quarantinable.
///
/// Lexically: inside any one non-test function in `crates/core/src/`, a
/// write-path `open(DOCMETA_FILE)` site must not be followed by an
/// index-path append (`store.append(…)`, a B-tree `insert_with(…)`, or a
/// positional-sidecar append) later in the same function.
pub fn commit_point_order(files: &[SourceFile], report: &mut Report) {
    let mut sink = Sink { report };
    for file in files
        .iter()
        .filter(|f| f.rel.starts_with("crates/core/src/"))
    {
        let lines: Vec<&str> = file.code.lines().collect();
        for (start, end) in function_spans(file) {
            let mut docmeta: Option<(usize, usize)> = None;
            let mut index_after: Option<usize> = None;
            for (i, line) in lines
                .iter()
                .enumerate()
                .take((end + 1).min(lines.len()))
                .skip(start)
            {
                if file.test_mask.get(i).copied().unwrap_or(false) {
                    continue;
                }
                if let Some(col) = line.find("open(DOCMETA_FILE)") {
                    // A read-path site (`open` feeding `read`) cannot
                    // reorder appends; only remember sites in functions
                    // that also append to the index, checked below.
                    if docmeta.is_none() {
                        docmeta = Some((i, col));
                    }
                }
                if docmeta.is_some() && is_index_append(line) {
                    index_after = Some(i);
                }
            }
            if let (Some((dl, dc)), Some(il)) = (docmeta, index_after) {
                sink.emit(
                    file,
                    "commit-point-order",
                    Severity::Deny,
                    dl + 1,
                    dc,
                    format!(
                        "DOCMETA is the commit point and must be the last WORM append \
                         of a commit; an index append follows at line {}",
                        il + 1
                    ),
                );
            }
        }
    }
}

/// An index-path append on the stripped line: a posting-list append, a
/// B-tree (jump / commit-time) `insert_with`, or a positional-sidecar
/// append.
fn is_index_append(line: &str) -> bool {
    [
        "store.append(",
        ".insert_with(",
        "ps.append(",
        "positions.append(",
    ]
    .iter()
    .any(|pat| line.contains(pat))
}

/// `(start, end)` 0-based inclusive line spans of `fn` bodies, by brace
/// counting over the stripped source.  Closures don't use the `fn`
/// keyword, so they stay inside their enclosing function's span; nested
/// `fn` items are handled by the stack.  A `;` before the body's `{`
/// cancels a pending signature (trait method declarations).
fn function_spans(file: &SourceFile) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut stack: Vec<(usize, i32)> = Vec::new();
    let mut pending_fn: Option<usize> = None;
    let mut depth = 0i32;
    for (i, line) in file.code.lines().enumerate() {
        if idents(line).iter().any(|&(_, id)| id == "fn") {
            pending_fn = Some(i);
        }
        for c in line.chars() {
            match c {
                '{' => {
                    if let Some(start) = pending_fn.take() {
                        stack.push((start, depth));
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if stack.last().is_some_and(|&(_, d)| d == depth) {
                        if let Some((start, _)) = stack.pop() {
                            out.push((start, i));
                        }
                    }
                }
                ';' => pending_fn = None,
                _ => {}
            }
        }
    }
    out
}

/// `crates/<name>/…` → `crates/<name>/`.
fn crate_prefix(rel: &str) -> Option<&str> {
    if let Some(rest) = rel.strip_prefix("crates/") {
        let end = rest.find('/')?;
        return Some(&rel[..("crates/".len() + end + 1)]);
    }
    if rel.starts_with("src/") {
        return Some("src/");
    }
    None
}

fn last_segment(ty: &str) -> String {
    let t = ty.trim().trim_start_matches('&').trim();
    let t = t.split('<').next().unwrap_or(t).trim();
    t.rsplit("::").next().unwrap_or(t).trim().to_string()
}

/// Find `Result<` as a path segment (not e.g. `MyResult<`).
fn find_result(ret: &str) -> Option<usize> {
    let b = ret.as_bytes();
    let mut from = 0;
    while let Some(p) = ret[from..].find("Result<") {
        let i = from + p;
        let prev_ok = i == 0 || !(b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_');
        if prev_ok {
            return Some(i);
        }
        from = i + 1;
    }
    None
}

/// Given text starting at/containing `…<A, B, …>`, return the second
/// top-level generic argument, if any.
fn second_generic_arg(s: &str) -> Option<String> {
    let open = s.find('<')?;
    let mut depth = 0i32;
    let mut args: Vec<String> = vec![String::new()];
    for c in s[open..].chars() {
        match c {
            '<' | '(' | '[' => {
                depth += 1;
                if depth > 1 {
                    args.last_mut()?.push(c);
                }
            }
            '>' | ')' | ']' => {
                depth -= 1;
                if depth == 0 && c == '>' {
                    break;
                }
                args.last_mut()?.push(c);
            }
            ',' if depth == 1 => args.push(String::new()),
            _ if depth >= 1 => args.last_mut()?.push(c),
            _ => {}
        }
    }
    args.get(1).map(|a| a.trim().to_string())
}

/// Extract `(line_number, signature_text)` for every `pub fn` in non-test
/// code.  The signature runs from `fn` to the first `{` or `;`.
fn pub_fn_signatures(file: &SourceFile) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let lines: Vec<&str> = file.code.lines().collect();
    for (i, line) in lines.iter().enumerate() {
        if file.test_mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        let toks = idents(line);
        let mut found = None;
        for w in toks.windows(2) {
            if w[0].1 == "pub" && (w[1].1 == "fn" || w[1].1 == "const" || w[1].1 == "async") {
                // `pub fn`, `pub const fn`, `pub async fn` — find the `fn`.
                if let Some((col, _)) = toks.iter().find(|(c, id)| *id == "fn" && *c >= w[0].0) {
                    found = Some(*col);
                }
                break;
            }
        }
        let Some(fn_col) = found else { continue };
        // Accumulate until `{` or `;`.
        let mut sig = String::new();
        let mut j = i;
        let mut rest = &lines[i][fn_col..];
        loop {
            if let Some(p) = rest.find(['{', ';']) {
                sig.push_str(&rest[..p]);
                break;
            }
            sig.push_str(rest);
            sig.push(' ');
            j += 1;
            match lines.get(j) {
                Some(l) => rest = l,
                None => break,
            }
        }
        out.push((i + 1, sig));
    }
    out
}

/// Return-type text of a signature: everything after the `->` that sits at
/// parenthesis depth zero (so `fn(f: impl Fn(u32) -> u64) -> …` finds the
/// outer arrow).
fn return_type(sig: &str) -> Option<String> {
    let b = sig.as_bytes();
    let mut depth = 0i32;
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'(' => depth += 1,
            b')' => depth -= 1,
            b'-' if depth == 0 && b.get(i + 1) == Some(&b'>') => {
                let ret = sig[i + 2..].trim();
                // Trim a trailing where-clause.
                let ret = match ret.find(" where ") {
                    Some(w) => &ret[..w],
                    None => ret,
                };
                return Some(ret.trim().to_string());
            }
            _ => {}
        }
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generic_args_split_at_top_level() {
        assert_eq!(
            second_generic_arg("Result<Vec<(u32, u64)>, ListError>").as_deref(),
            Some("ListError")
        );
        assert_eq!(second_generic_arg("Result<T>"), None);
    }

    #[test]
    fn return_type_skips_closure_arrows() {
        let sig = "fn apply(f: impl Fn(u32) -> u64) -> Result<u64, JumpError>";
        assert_eq!(return_type(sig).as_deref(), Some("Result<u64, JumpError>"));
    }

    #[test]
    fn last_segment_strips_paths_and_generics() {
        assert_eq!(last_segment("crate::persist::PersistError"), "PersistError");
        assert_eq!(last_segment("&JumpError"), "JumpError");
        assert_eq!(last_segment("PhantomData<T>"), "PhantomData");
    }

    #[test]
    fn find_result_requires_segment_boundary() {
        assert_eq!(find_result("MyResult<u8>"), None);
        assert_eq!(find_result("std::result::Result<u8, E>"), Some(13));
    }

    fn core_fixture(src: &str) -> SourceFile {
        let code = crate::scan::strip_code(src);
        let test_mask = crate::scan::test_line_mask(&code);
        SourceFile {
            path: std::path::PathBuf::from("crates/core/src/engine.rs"),
            rel: "crates/core/src/engine.rs".to_string(),
            raw: src.to_string(),
            code,
            test_mask,
        }
    }

    #[test]
    fn commit_point_order_denies_docmeta_before_index_append() {
        let src = "\
fn add(&mut self) -> Result<(), E> {
    let f = self.doc_fs.open(DOCMETA_FILE)?;
    self.doc_fs.append(f, &rec)?;
    self.store.append(list, term, doc, tf, cache)?;
    Ok(())
}
";
        let mut report = Report::default();
        commit_point_order(&[core_fixture(src)], &mut report);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].rule, "commit-point-order");
        assert_eq!(report.findings[0].line, 2);
    }

    #[test]
    fn commit_point_order_accepts_docmeta_last() {
        let src = "\
fn add(&mut self) -> Result<(), E> {
    self.store.append(list, term, doc, tf, cache)?;
    self.commit_times.insert_with(entry, |t| {})?;
    let f = self.doc_fs.open(DOCMETA_FILE)?;
    self.doc_fs.append(f, &rec)?;
    Ok(())
}
fn recover() -> Result<(), E> {
    let f = doc_fs.open(DOCMETA_FILE)?;
    let rec = doc_fs.read(f, 0, 16)?;
    Ok(())
}
";
        let mut report = Report::default();
        commit_point_order(&[core_fixture(src)], &mut report);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn commit_point_order_scopes_per_function_and_skips_tests() {
        // The index append lives in a *different* function, and the
        // test-gated copy of the bad ordering is masked: neither fires.
        let src = "\
fn write_meta(&mut self) -> Result<(), E> {
    let f = self.doc_fs.open(DOCMETA_FILE)?;
    self.doc_fs.append(f, &rec)?;
    Ok(())
}
fn index(&mut self) -> Result<(), E> {
    self.store.append(list, term, doc, tf, cache)?;
    Ok(())
}
#[cfg(test)]
mod tests {
    fn bad() {
        let f = doc_fs.open(DOCMETA_FILE).unwrap();
        store.append(list, term, doc, tf, None).unwrap();
    }
}
";
        let mut report = Report::default();
        commit_point_order(&[core_fixture(src)], &mut report);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn commit_point_order_honours_inline_allow() {
        let src = "\
fn migrate(&mut self) -> Result<(), E> {
    // audit:allow(commit-point-order)
    let f = self.doc_fs.open(DOCMETA_FILE)?;
    self.store.append(list, term, doc, tf, cache)?;
    Ok(())
}
";
        let mut report = Report::default();
        commit_point_order(&[core_fixture(src)], &mut report);
        assert!(report.findings.is_empty());
        assert_eq!(report.suppressed, 1);
    }

    #[test]
    fn function_spans_track_nested_items_and_closures() {
        let src = "\
fn outer() {
    let f = |x: u32| {
        x + 1
    };
    fn inner() {
        ()
    }
}
";
        let file = core_fixture(src);
        let spans = function_spans(&file);
        assert!(spans.contains(&(0, 7)), "{spans:?}");
        assert!(spans.contains(&(4, 6)), "{spans:?}");
    }
}
