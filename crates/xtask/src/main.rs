//! CLI entry point:
//! `cargo xtask audit [--json|--sarif] [--baseline <file>] [--write-baseline <file>]`.

#![forbid(unsafe_code)]
// Developer tooling, not part of the production no-panic surface it gates:
// terse panics on impossible states are fine here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::path::PathBuf;
use std::process::ExitCode;
use xtask::baseline::Baseline;

const USAGE: &str = "\
xtask — workspace automation

USAGE:
    cargo xtask audit [--json|--sarif] [--root <path>]
                      [--baseline <file>] [--write-baseline <file>]

COMMANDS:
    audit    Run the WORM-discipline static-analysis pass.
             Exits nonzero on any deny-severity finding (or on a warn
             regression when --baseline is given).

OPTIONS:
    --json                  Emit the report as JSON instead of human diagnostics.
    --sarif                 Emit the report as SARIF 2.1.0 (for CI annotation).
    --root <path>           Audit a different workspace root (default: this one).
    --baseline <file>       Compare warn counts against a committed baseline and
                            fail on any per-(rule, file) increase.
    --write-baseline <file> Write the current warn counts as the new baseline.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("audit") => {
            let mut json = false;
            let mut sarif = false;
            let mut root: Option<PathBuf> = None;
            let mut baseline_path: Option<PathBuf> = None;
            let mut write_baseline: Option<PathBuf> = None;
            let mut it = args.iter().skip(1);
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--json" => json = true,
                    "--sarif" => sarif = true,
                    "--root" => match it.next() {
                        Some(p) => root = Some(PathBuf::from(p)),
                        None => {
                            eprintln!("error: --root requires a path");
                            return ExitCode::from(2);
                        }
                    },
                    "--baseline" => match it.next() {
                        Some(p) => baseline_path = Some(PathBuf::from(p)),
                        None => {
                            eprintln!("error: --baseline requires a file path");
                            return ExitCode::from(2);
                        }
                    },
                    "--write-baseline" => match it.next() {
                        Some(p) => write_baseline = Some(PathBuf::from(p)),
                        None => {
                            eprintln!("error: --write-baseline requires a file path");
                            return ExitCode::from(2);
                        }
                    },
                    other => {
                        eprintln!("error: unknown argument `{other}`\n\n{USAGE}");
                        return ExitCode::from(2);
                    }
                }
            }
            if json && sarif {
                eprintln!("error: --json and --sarif are mutually exclusive");
                return ExitCode::from(2);
            }
            let root = root.unwrap_or_else(workspace_root);
            match xtask::audit_workspace(&root) {
                Ok(report) => {
                    if sarif {
                        print!("{}", xtask::sarif::render_sarif(&report));
                    } else if json {
                        print!("{}", report.render_json());
                    } else {
                        print!("{}", report.render_human());
                    }
                    let current = Baseline::from_report(&report);
                    if let Some(path) = write_baseline {
                        if let Err(e) = std::fs::write(&path, current.render()) {
                            eprintln!("error: cannot write baseline {}: {e}", path.display());
                            return ExitCode::from(2);
                        }
                    }
                    let mut failed = report.deny_count() > 0;
                    if let Some(path) = baseline_path {
                        let committed = match std::fs::read_to_string(&path) {
                            Ok(text) => match Baseline::parse(&text) {
                                Ok(b) => b,
                                Err(e) => {
                                    eprintln!("error: {}: {e}", path.display());
                                    return ExitCode::from(2);
                                }
                            },
                            Err(e) => {
                                eprintln!("error: cannot read baseline {}: {e}", path.display());
                                return ExitCode::from(2);
                            }
                        };
                        let regressions = committed.regressions(&current);
                        for r in &regressions {
                            eprintln!("baseline regression: {r}");
                        }
                        failed |= !regressions.is_empty();
                    }
                    if failed {
                        ExitCode::FAILURE
                    } else {
                        ExitCode::SUCCESS
                    }
                }
                Err(e) => {
                    eprintln!("error: audit failed to read sources: {e}");
                    ExitCode::from(2)
                }
            }
        }
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("error: unknown command `{other}`\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// The workspace root is two levels above this crate's manifest.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or(manifest)
}
