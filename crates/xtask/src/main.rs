//! CLI entry point: `cargo xtask audit [--json]`.

#![forbid(unsafe_code)]
// Developer tooling, not part of the production no-panic surface it gates:
// terse panics on impossible states are fine here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
xtask — workspace automation

USAGE:
    cargo xtask audit [--json] [--root <path>]

COMMANDS:
    audit    Run the WORM-discipline static-analysis pass.
             Exits nonzero on any deny-severity finding.

OPTIONS:
    --json           Emit the report as JSON instead of human diagnostics.
    --root <path>    Audit a different workspace root (default: this one).
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("audit") => {
            let mut json = false;
            let mut root: Option<PathBuf> = None;
            let mut it = args.iter().skip(1);
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--json" => json = true,
                    "--root" => match it.next() {
                        Some(p) => root = Some(PathBuf::from(p)),
                        None => {
                            eprintln!("error: --root requires a path");
                            return ExitCode::from(2);
                        }
                    },
                    other => {
                        eprintln!("error: unknown argument `{other}`\n\n{USAGE}");
                        return ExitCode::from(2);
                    }
                }
            }
            let root = root.unwrap_or_else(workspace_root);
            match xtask::audit_workspace(&root) {
                Ok(report) => {
                    if json {
                        print!("{}", report.render_json());
                    } else {
                        print!("{}", report.render_human());
                    }
                    if report.deny_count() == 0 {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::FAILURE
                    }
                }
                Err(e) => {
                    eprintln!("error: audit failed to read sources: {e}");
                    ExitCode::from(2)
                }
            }
        }
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("error: unknown command `{other}`\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// The workspace root is two levels above this crate's manifest.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or(manifest)
}
