//! A lightweight item tree over the token stream.
//!
//! [`build`] brace-matches the [`lex`](crate::lex) token stream into a
//! nested tree of items — `mod`, `fn`, `impl`, `struct`, `enum`, `trait`,
//! `use`/`const`/`static`/`type` statements — and attaches three things to
//! each item *structurally* instead of by line proximity:
//!
//! * its **attributes** (`#[cfg(test)]`, `#[cfg(feature = …)]`, …), so
//!   test gating follows the annotated item exactly, attribute stacks and
//!   multi-line headers included;
//! * any **`audit:allow(rule)` directives** written in the item's header
//!   (doc/attribute block), which suppress that rule for the whole item;
//! * its **token and line span**, so function-scoped rules
//!   (`commit-point-order`, `guard-across-io`) and signature-scoped rules
//!   (`error-taxonomy`) iterate real item extents instead of counting
//!   braces themselves.
//!
//! Directives written *inside* a body keep the legacy statement scope:
//! they suppress findings on their own line and the line below.  Both
//! forms are tracked, so the report can list directives that suppressed
//! nothing (the "silently dead allow" bug class this tree exists to kill).

use crate::lex::{TokKind, Token};
use std::collections::BTreeMap;

/// What kind of item a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// `mod name { … }` (or `mod name;`).
    Mod,
    /// `fn name(…) { … }` (or a bodyless trait-method declaration).
    Fn,
    /// `impl … { … }`.
    Impl,
    /// `struct name …`.
    Struct,
    /// `enum name { … }`.
    Enum,
    /// `trait name { … }`.
    Trait,
    /// `use`/`const`/`static`/`type`/`union`/`macro_rules` and anything
    /// else that takes attributes but the audit has no special handling
    /// for.
    Other,
}

/// One item in the tree.
#[derive(Debug)]
pub struct Item {
    /// What the item is.
    pub kind: ItemKind,
    /// Its name, when one directly follows the keyword (`impl` has none).
    pub name: Option<String>,
    /// Compacted attribute texts (whitespace removed), e.g. `cfg(test)`.
    pub attrs: Vec<String>,
    /// Rules suppressed for the whole item by `audit:allow(rule)`
    /// directives in its header, with the directive's line.
    pub allows: Vec<(usize, String)>,
    /// Whether the item (not counting ancestors) is `#[cfg(test)]`-gated.
    pub cfg_test: bool,
    /// Whether the item is `pub` (any visibility form: `pub`,
    /// `pub(crate)`, `pub(super)`, …).
    pub is_pub: bool,
    /// 1-based first line (first attribute or doc line when present).
    pub start_line: usize,
    /// 1-based line of the item keyword itself.
    pub kw_line: usize,
    /// 1-based last line (closing brace, or terminating `;`).
    pub end_line: usize,
    /// Token index of the item keyword.
    pub tok_kw: usize,
    /// Token index of the body's `{`, when the item has a body.
    pub tok_body_open: Option<usize>,
    /// Token index one past the item's last token.
    pub tok_end: usize,
    /// Nested items.
    pub children: Vec<Item>,
}

/// One `audit:allow(rule)` directive, wherever it was written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Directive {
    /// 1-based line of the comment.
    pub line: usize,
    /// The rule it names.
    pub rule: String,
}

/// The parsed file: item tree plus derived per-line views.
#[derive(Debug)]
pub struct ItemTree {
    /// Top-level items.
    pub items: Vec<Item>,
    /// `test_mask[i]` is true when 0-based line `i` belongs to a
    /// `#[cfg(test)]`-gated item (attribute lines included).
    pub test_mask: Vec<bool>,
    /// Every `audit:allow` directive in the file, in order.
    pub directives: Vec<Directive>,
    /// Line-scoped suppression map: directives keyed by the line they sit
    /// on (they also cover the line below, legacy statement scope).
    pub line_allows: BTreeMap<usize, Vec<String>>,
}

impl ItemTree {
    /// Is 0-based line `i` inside `#[cfg(test)]`-gated code?
    pub fn in_test(&self, line0: usize) -> bool {
        self.test_mask.get(line0).copied().unwrap_or(false)
    }

    /// The directive suppressing `rule` at 1-based `line`, if any: either
    /// a line-scoped directive on `line`/`line - 1`, or an item-scoped
    /// directive on an enclosing item whose header names the rule.
    pub fn allow_for(&self, line: usize, rule: &str) -> Option<Directive> {
        for l in [line, line.saturating_sub(1)] {
            if l == 0 {
                continue;
            }
            if let Some(rules) = self.line_allows.get(&l) {
                if rules.iter().any(|r| r == rule) {
                    return Some(Directive {
                        line: l,
                        rule: rule.to_string(),
                    });
                }
            }
        }
        item_allow(&self.items, line, rule)
    }

    /// Depth-first iterator over every item (preorder).
    pub fn walk(&self) -> Vec<&Item> {
        let mut out = Vec::new();
        fn rec<'a>(items: &'a [Item], out: &mut Vec<&'a Item>) {
            for it in items {
                out.push(it);
                rec(&it.children, out);
            }
        }
        rec(&self.items, &mut out);
        out
    }

    /// Every `fn` item with a body, with test-gating resolved through its
    /// ancestors: `(item, in_test)`.
    pub fn functions(&self) -> Vec<(&Item, bool)> {
        let mut out = Vec::new();
        fn rec<'a>(items: &'a [Item], inherited: bool, out: &mut Vec<(&'a Item, bool)>) {
            for it in items {
                let gated = inherited || it.cfg_test;
                if it.kind == ItemKind::Fn {
                    out.push((it, gated));
                }
                rec(&it.children, gated, out);
            }
        }
        rec(&self.items, false, &mut out);
        out
    }
}

fn item_allow(items: &[Item], line: usize, rule: &str) -> Option<Directive> {
    for it in items {
        if line < it.start_line || line > it.end_line {
            continue;
        }
        if let Some((l, r)) = it.allows.iter().find(|(_, r)| r == rule) {
            return Some(Directive {
                line: *l,
                rule: r.clone(),
            });
        }
        if let Some(d) = item_allow(&it.children, line, rule) {
            return Some(d);
        }
    }
    None
}

/// Item keywords that open a header.
fn item_kw(id: &str) -> Option<ItemKind> {
    Some(match id {
        "mod" => ItemKind::Mod,
        "fn" => ItemKind::Fn,
        "impl" => ItemKind::Impl,
        "struct" => ItemKind::Struct,
        "enum" => ItemKind::Enum,
        "trait" => ItemKind::Trait,
        "use" | "static" | "type" | "union" | "macro_rules" | "const" => ItemKind::Other,
        _ => None?,
    })
}

/// Visibility / qualifier identifiers that may precede an item keyword
/// without ending the pending attribute group.
fn is_modifier(id: &str) -> bool {
    matches!(
        id,
        "pub" | "async" | "unsafe" | "extern" | "default" | "crate"
    )
}

struct Open {
    item: Item,
    depth: i32,
}

/// An in-flight item header: keyword seen, body `{` or terminating `;`
/// not yet reached.
struct Header {
    kind: ItemKind,
    name: Option<String>,
    attrs: Vec<String>,
    allows: Vec<(usize, String)>,
    is_pub: bool,
    start_line: usize,
    kw_line: usize,
    tok_kw: usize,
    /// Paren/bracket nesting inside the header (a `;` only terminates at
    /// zero, so `fn f(x: [u8; 4])` survives).
    nest: i32,
    /// `<`-nesting heuristic for generics, so `->` and comparisons in
    /// const-generic defaults don't confuse `;` handling (kept simple: we
    /// only guard `;`, which cannot appear inside `<…>` except via
    /// brackets already counted in `nest`).
    _generics: (),
}

/// Build the item tree for `src` from its token stream.
pub fn build(src: &str, tokens: &[Token]) -> ItemTree {
    let total_lines = src.lines().count().max(1);
    let mut roots: Vec<Item> = Vec::new();
    let mut stack: Vec<Open> = Vec::new();
    let mut depth: i32 = 0;

    let mut directives: Vec<Directive> = Vec::new();
    let mut line_allows: BTreeMap<usize, Vec<String>> = BTreeMap::new();

    // Pending header material: attributes and allow-directives waiting for
    // the next item keyword.
    let mut pending_attrs: Vec<String> = Vec::new();
    let mut pending_allows: Vec<(usize, String)> = Vec::new();
    let mut pending_start: Option<usize> = None;
    let mut pending_pub = false;
    let mut header: Option<Header> = None;

    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        match t.kind {
            TokKind::Comment => {
                for rule in allow_rules(t.text(src)) {
                    directives.push(Directive {
                        line: t.line,
                        rule: rule.clone(),
                    });
                    line_allows.entry(t.line).or_default().push(rule.clone());
                    if let Some(h) = header.as_mut() {
                        h.allows.push((t.line, rule));
                    } else {
                        pending_allows.push((t.line, rule));
                    }
                }
                i += 1;
                continue;
            }
            TokKind::Punct(b'#') if header.is_none() => {
                // Attribute: `#[…]` (outer) or `#![…]` (inner, file/scope
                // level — consumed but not attached to a pending item).
                let mut j = i + 1;
                let inner = matches!(tokens.get(j), Some(t) if t.kind == TokKind::Punct(b'!'));
                if inner {
                    j += 1;
                }
                if matches!(tokens.get(j), Some(t) if t.kind == TokKind::Punct(b'[')) {
                    let (text, end) = consume_attr(src, tokens, j);
                    if !inner {
                        if pending_start.is_none() {
                            pending_start = Some(t.line);
                        }
                        pending_attrs.push(text);
                    }
                    i = end;
                    continue;
                }
                i += 1;
                continue;
            }
            TokKind::Ident => {
                let id = t.text(src);
                if let Some(h) = header.as_mut() {
                    // `pub const fn` / `const NAME` disambiguation: a `fn`
                    // keyword inside an `Other`(const) header upgrades it.
                    if id == "fn" && h.kind == ItemKind::Other {
                        h.kind = ItemKind::Fn;
                        h.kw_line = t.line;
                        h.tok_kw = i;
                        h.name = next_ident(src, tokens, i + 1);
                    }
                    i += 1;
                    continue;
                }
                if let Some(kind) = item_kw(id) {
                    header = Some(Header {
                        kind,
                        name: if kind == ItemKind::Impl {
                            None
                        } else {
                            next_ident(src, tokens, i + 1)
                        },
                        attrs: std::mem::take(&mut pending_attrs),
                        allows: std::mem::take(&mut pending_allows),
                        is_pub: pending_pub,
                        start_line: pending_start.take().unwrap_or(t.line),
                        kw_line: t.line,
                        tok_kw: i,
                        nest: 0,
                        _generics: (),
                    });
                    pending_pub = false;
                    i += 1;
                    continue;
                }
                if is_modifier(id) {
                    if id == "pub" {
                        pending_pub = true;
                        if pending_start.is_none() {
                            pending_start = Some(t.line);
                        }
                        // Skip a `pub(crate)` / `pub(in …)` group.
                        if matches!(tokens.get(i + 1), Some(n) if n.kind == TokKind::Punct(b'(')) {
                            i = skip_group(tokens, i + 1, b'(', b')');
                            continue;
                        }
                    }
                    i += 1;
                    continue;
                }
                // Any other identifier: expression/statement context —
                // pending header material does not carry across it.
                pending_attrs.clear();
                pending_allows.clear();
                pending_start = None;
                pending_pub = false;
                i += 1;
                continue;
            }
            TokKind::Punct(b'{') => {
                if let Some(h) = header.take() {
                    stack.push(Open {
                        item: finalize(h, t.line, i),
                        depth,
                    });
                } else {
                    pending_attrs.clear();
                    pending_allows.clear();
                    pending_start = None;
                    pending_pub = false;
                }
                depth += 1;
                i += 1;
                continue;
            }
            TokKind::Punct(b'}') => {
                depth -= 1;
                if stack.last().is_some_and(|o| o.depth == depth) {
                    if let Some(mut open) = stack.pop() {
                        open.item.end_line = t.line;
                        open.item.tok_end = i + 1;
                        attach(&mut roots, &mut stack, open.item);
                    }
                }
                i += 1;
                continue;
            }
            TokKind::Punct(b'(') | TokKind::Punct(b'[') => {
                if let Some(h) = header.as_mut() {
                    h.nest += 1;
                }
                i += 1;
                continue;
            }
            TokKind::Punct(b')') | TokKind::Punct(b']') => {
                if let Some(h) = header.as_mut() {
                    h.nest -= 1;
                }
                i += 1;
                continue;
            }
            TokKind::Punct(b';') => {
                if header.as_ref().is_some_and(|h| h.nest <= 0) {
                    if let Some(h) = header.take() {
                        let mut item = finalize(h, t.line, i);
                        item.end_line = t.line;
                        item.tok_end = i + 1;
                        item.tok_body_open = None;
                        attach(&mut roots, &mut stack, item);
                    }
                }
                pending_attrs.clear();
                pending_allows.clear();
                pending_start = None;
                pending_pub = false;
                i += 1;
                continue;
            }
            _ => {
                i += 1;
                continue;
            }
        }
    }
    // Unterminated input: close whatever is still open at the last line.
    if let Some(h) = header.take() {
        let mut item = finalize(h, total_lines, tokens.len());
        item.end_line = total_lines;
        item.tok_end = tokens.len();
        item.tok_body_open = None;
        attach(&mut roots, &mut stack, item);
    }
    while let Some(mut open) = stack.pop() {
        open.item.end_line = total_lines;
        open.item.tok_end = tokens.len();
        attach(&mut roots, &mut stack, open.item);
    }

    let mut test_mask = vec![false; total_lines];
    mark_tests(&roots, false, &mut test_mask);

    ItemTree {
        items: roots,
        test_mask,
        directives,
        line_allows,
    }
}

fn finalize(h: Header, body_line: usize, body_tok: usize) -> Item {
    let cfg_test = h.attrs.iter().any(|a| a.contains("cfg(test)"));
    Item {
        kind: h.kind,
        name: h.name,
        attrs: h.attrs,
        allows: h.allows,
        cfg_test,
        is_pub: h.is_pub,
        start_line: h.start_line,
        kw_line: h.kw_line,
        end_line: body_line,
        tok_kw: h.tok_kw,
        tok_body_open: Some(body_tok),
        tok_end: body_tok + 1,
        children: Vec::new(),
    }
}

fn attach(roots: &mut Vec<Item>, stack: &mut [Open], item: Item) {
    match stack.last_mut() {
        Some(parent) => parent.item.children.push(item),
        None => roots.push(item),
    }
}

fn mark_tests(items: &[Item], inherited: bool, mask: &mut [bool]) {
    for it in items {
        let gated = inherited || it.cfg_test;
        if gated && !inherited {
            for l in it.start_line..=it.end_line {
                if let Some(slot) = mask.get_mut(l - 1) {
                    *slot = true;
                }
            }
        }
        mark_tests(&it.children, gated, mask);
    }
}

/// Extract every rule named by `audit:allow(rule)` in a comment.
fn allow_rules(comment: &str) -> Vec<String> {
    const NEEDLE: &str = "audit:allow(";
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(p) = comment[from..].find(NEEDLE) {
        let start = from + p + NEEDLE.len();
        if let Some(close) = comment[start..].find(')') {
            let rule = comment[start..start + close].trim();
            if !rule.is_empty() {
                out.push(rule.to_string());
            }
            from = start + close + 1;
        } else {
            break;
        }
    }
    out
}

/// The next code identifier at/after token `from`, skipping comments.
fn next_ident(src: &str, tokens: &[Token], from: usize) -> Option<String> {
    tokens[from..]
        .iter()
        .find(|t| t.is_code())
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text(src).to_string())
}

/// Skip a balanced `open…close` group starting at token `at` (which must
/// be `open`); returns the index one past the matching close.
fn skip_group(tokens: &[Token], at: usize, open: u8, close: u8) -> usize {
    let mut depth = 0i32;
    let mut j = at;
    while j < tokens.len() {
        match tokens[j].kind {
            TokKind::Punct(c) if c == open => depth += 1,
            TokKind::Punct(c) if c == close => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    tokens.len()
}

/// Consume an attribute whose `[` is at token `at`; returns the compacted
/// attribute text (whitespace stripped, comments dropped) and the index
/// one past the closing `]`.
fn consume_attr(src: &str, tokens: &[Token], at: usize) -> (String, usize) {
    let end = skip_group(tokens, at, b'[', b']');
    let mut text = String::new();
    for t in &tokens[at + 1..end.saturating_sub(1)] {
        if t.is_code() {
            text.push_str(&t.text(src).split_whitespace().collect::<String>());
        }
    }
    (text, end)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;

    fn tree(src: &str) -> ItemTree {
        build(src, &lex(src))
    }

    #[test]
    fn test_mask_covers_cfg_test_mod() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let t = tree(src);
        assert_eq!(t.test_mask, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn test_mask_handles_attr_stack_and_use() {
        let src = "#[cfg(test)]\n#[allow(deprecated)]\nmod tests {\n    fn t() {}\n}\n#[cfg(test)] use x;\nfn prod() {}\n";
        let t = tree(src);
        assert_eq!(t.test_mask, vec![true, true, true, true, true, true, false]);
    }

    #[test]
    fn nested_items_and_spans() {
        let src = "\
mod outer {
    fn inner() {
        let c = |x: u32| {
            x + 1
        };
    }
    struct S;
}
";
        let t = tree(src);
        assert_eq!(t.items.len(), 1);
        let m = &t.items[0];
        assert_eq!(m.kind, ItemKind::Mod);
        assert_eq!(m.name.as_deref(), Some("outer"));
        assert_eq!((m.start_line, m.end_line), (1, 8));
        assert_eq!(m.children.len(), 2);
        let f = &m.children[0];
        assert_eq!(f.kind, ItemKind::Fn);
        assert_eq!(f.name.as_deref(), Some("inner"));
        assert_eq!((f.start_line, f.end_line), (2, 6), "closure stays inside");
        assert_eq!(m.children[1].kind, ItemKind::Struct);
    }

    #[test]
    fn pub_and_pub_crate_detected() {
        let src = "pub fn a() {}\npub(crate) fn b() {}\nfn c() {}\npub const fn d() {}\n";
        let t = tree(src);
        let pubs: Vec<(Option<&str>, bool)> = t
            .walk()
            .iter()
            .map(|i| (i.name.as_deref(), i.is_pub))
            .collect();
        assert_eq!(
            pubs,
            vec![
                (Some("a"), true),
                (Some("b"), true),
                (Some("c"), false),
                (Some("d"), true),
            ]
        );
    }

    #[test]
    fn const_fn_header_upgrades_to_fn() {
        let src = "pub const fn d() -> u8 { 1 }\nconst X: u8 = 1;\n";
        let t = tree(src);
        assert_eq!(t.items[0].kind, ItemKind::Fn);
        assert_eq!(t.items[0].name.as_deref(), Some("d"));
        assert_eq!(t.items[1].kind, ItemKind::Other);
    }

    #[test]
    fn allow_directive_in_header_attaches_to_item() {
        let src = "\
/// Doc line.
// audit:allow(no-panic-in-prod) — whole fn is exempt
#[inline]
fn exempt() {
    let a = x.unwrap();
    let b = y.unwrap();
}
fn other() {
    z.unwrap();
}
";
        let t = tree(src);
        assert!(t.allow_for(5, "no-panic-in-prod").is_some());
        assert!(t.allow_for(6, "no-panic-in-prod").is_some());
        assert!(t.allow_for(9, "no-panic-in-prod").is_none());
        assert!(t.allow_for(5, "worm-append-only").is_none());
    }

    #[test]
    fn allow_directive_in_body_stays_line_scoped() {
        let src = "\
fn f() {
    // audit:allow(no-panic-in-prod)
    a.unwrap();
    b.unwrap();
}
";
        let t = tree(src);
        assert!(t.allow_for(3, "no-panic-in-prod").is_some());
        assert!(
            t.allow_for(4, "no-panic-in-prod").is_none(),
            "statement scope: the directive covers its own line and the next"
        );
    }

    #[test]
    fn directives_are_recorded_for_usage_tracking() {
        let src =
            "// audit:allow(worm-append-only)\nfn f() {}\n// audit:allow(hot-path-io) trailing\n";
        let t = tree(src);
        assert_eq!(
            t.directives,
            vec![
                Directive {
                    line: 1,
                    rule: "worm-append-only".into()
                },
                Directive {
                    line: 3,
                    rule: "hot-path-io".into()
                },
            ]
        );
    }

    #[test]
    fn enum_and_impl_items_expose_token_spans() {
        let src = "\
pub enum WormError {
    NoSuchBlock(BlockId),
    Io { source: String },
}
impl From<WormError> for TksError {
    fn from(e: WormError) -> Self { TksError::Search(e) }
}
";
        let t = tree(src);
        assert_eq!(t.items[0].kind, ItemKind::Enum);
        assert_eq!(t.items[0].name.as_deref(), Some("WormError"));
        assert!(t.items[0].tok_body_open.is_some());
        assert_eq!(t.items[1].kind, ItemKind::Impl);
        assert_eq!(t.items[1].children.len(), 1);
        assert_eq!(t.items[1].children[0].kind, ItemKind::Fn);
    }

    #[test]
    fn semicolon_items_do_not_leak_attrs() {
        let src = "#[cfg(test)] use helpers;\nfn prod() {}\n";
        let t = tree(src);
        assert_eq!(t.test_mask, vec![true, false]);
        assert_eq!(t.items[1].kind, ItemKind::Fn);
        assert!(!t.items[1].cfg_test);
    }

    #[test]
    fn trait_fns_without_bodies_close_at_semicolon() {
        let src = "\
trait T {
    fn decl(&self) -> u8;
    fn with_default(&self) -> u8 {
        0
    }
}
";
        let t = tree(src);
        let tr = &t.items[0];
        assert_eq!(tr.children.len(), 2);
        assert_eq!(tr.children[0].end_line, 2);
        assert!(tr.children[0].tok_body_open.is_none());
        assert_eq!(tr.children[1].end_line, 5);
    }
}
