//! A dependency-free Rust lexer for the audit engine.
//!
//! [`lex`] turns a source file into a flat token stream — identifiers,
//! every literal form (plain/byte/raw strings with any hash count, char
//! literals, numbers), lifetimes, single-byte punctuation, and comments
//! (line and nested block, retained because `audit:allow(…)` directives
//! live in them).  Every token carries a byte span and a 1-based
//! line/column, so rules report exact locations instead of re-scanning
//! lines.
//!
//! The lexer is *lossless*: concatenating the gaps (whitespace) and token
//! spans reproduces the input byte-for-byte.  [`stripped`] exploits that to
//! rebuild the "code view" (comments and literal bodies blanked to spaces,
//! newlines and offsets preserved) that the line-oriented
//! [`strip_legacy`](crate::scan::strip_legacy) used to produce with a
//! hand-rolled state machine; a property test pins the two views equal so
//! the port is behaviour-preserving.
//!
//! Char-vs-lifetime disambiguation uses the same bounded-window heuristic
//! as the legacy stripper (a `'` is a char literal only when it closes
//! within a few bytes), which is exact for rustfmt-formatted sources and
//! keeps the two views in lockstep.

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unwrap`, `DOCMETA_FILE`).
    Ident,
    /// Numeric literal (`0x10`, `8_192usize`, `1.5`).
    Num,
    /// Lifetime (`'a`, `'static`) — the quote plus the label.
    Lifetime,
    /// Plain or byte string literal, quotes included (`"…"`, `b"…"`).
    Str,
    /// Raw string literal, prefix and hashes included (`r#"…"#`, `br"…"`).
    RawStr,
    /// Char literal, quotes included (`'x'`, `'\n'`).
    Char,
    /// Line or block comment, markers included.
    Comment,
    /// A single punctuation byte (`{`, `&`, `!`, …).  Multi-byte UTF-8
    /// scalars outside literals are carried as one token keyed by their
    /// first byte.
    Punct(u8),
}

/// One token with its source location.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// What the token is.
    pub kind: TokKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of the first byte.
    pub line: usize,
    /// 1-based byte column of the first byte within its line.
    pub col: usize,
}

impl Token {
    /// The token's text.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        src.get(self.start..self.end).unwrap_or("")
    }

    /// Is this a code token (not a comment)?
    pub fn is_code(&self) -> bool {
        self.kind != TokKind::Comment
    }
}

/// Tokenize `src`.  Whitespace is not represented; everything else is.
/// The lexer never fails — malformed tails (unterminated strings or
/// comments) become one token running to end of input, mirroring how the
/// legacy stripper blanked them.
pub fn lex(src: &str) -> Vec<Token> {
    let b = src.as_bytes();
    let len = b.len();
    let mut toks: Vec<(TokKind, usize, usize)> = Vec::new();
    let mut i = 0;
    while i < len {
        let c = b[i];
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Line comment.
        if c == b'/' && b.get(i + 1) == Some(&b'/') {
            let start = i;
            while i < len && b[i] != b'\n' {
                i += 1;
            }
            toks.push((TokKind::Comment, start, i));
            continue;
        }
        // Block comment (nested).
        if c == b'/' && b.get(i + 1) == Some(&b'*') {
            let start = i;
            let mut depth = 0usize;
            while i < len {
                if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    i += 1;
                }
            }
            toks.push((TokKind::Comment, start, i));
            continue;
        }
        // Identifier — but `r"…"`, `r#"…"#`, `b"…"`, `br"…"` start with
        // ident bytes and must lex as string literals.
        if c.is_ascii_alphabetic() || c == b'_' {
            if let Some((kind, end)) = string_with_prefix(b, i) {
                toks.push((kind, i, end));
                i = end;
                continue;
            }
            let start = i;
            while i < len && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
            toks.push((TokKind::Ident, start, i));
            continue;
        }
        // Plain string.
        if c == b'"' {
            let end = scan_string(b, i);
            toks.push((TokKind::Str, i, end));
            i = end;
            continue;
        }
        // Number.
        if c.is_ascii_digit() {
            let start = i;
            while i < len && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
            // One embedded `.` continues the literal only when a digit
            // follows (so `0..9` stays two numbers and a range).
            if i < len && b[i] == b'.' && b.get(i + 1).is_some_and(|d| d.is_ascii_digit()) {
                i += 1;
                while i < len && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
            }
            toks.push((TokKind::Num, start, i));
            continue;
        }
        // Char literal vs lifetime: same bounded-window heuristic as the
        // legacy stripper, so the stripped views agree byte-for-byte.
        if c == b'\'' {
            let closes = if b.get(i + 1) == Some(&b'\\') {
                (i + 2..(i + 12).min(len)).find(|&k| b[k] == b'\'')
            } else if b.get(i + 2) == Some(&b'\'') && b.get(i + 1) != Some(&b'\'') {
                Some(i + 2)
            } else {
                (i + 2..(i + 6).min(len))
                    .find(|&k| b[k] == b'\'')
                    .filter(|_| b.get(i + 1).is_some_and(|&x| x >= 0x80))
            };
            if let Some(end) = closes {
                toks.push((TokKind::Char, i, end + 1));
                i = end + 1;
                continue;
            }
            // Lifetime: the quote plus the following ident run (possibly
            // empty, e.g. a stray quote — still one token).
            let start = i;
            i += 1;
            while i < len && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
            toks.push((TokKind::Lifetime, start, i));
            continue;
        }
        // Punctuation.  A multi-byte UTF-8 scalar is one token.
        let start = i;
        i += 1;
        while i < len && (b[i] & 0xC0) == 0x80 {
            i += 1;
        }
        toks.push((TokKind::Punct(c), start, i));
    }
    attach_positions(src, toks)
}

/// `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#` starting at `i`, if any.  Returns
/// `None` for raw identifiers (`r#ident`) and ordinary idents starting
/// with `r`/`b`, which then lex as identifiers.
fn string_with_prefix(b: &[u8], i: usize) -> Option<(TokKind, usize)> {
    let (raw_possible, after_prefix) = match b[i] {
        b'r' => (true, i + 1),
        b'b' if b.get(i + 1) == Some(&b'r') => (true, i + 2),
        b'b' if b.get(i + 1) == Some(&b'"') => {
            return Some((TokKind::Str, scan_string(b, i + 1)));
        }
        _ => return None,
    };
    if !raw_possible {
        return None;
    }
    let mut j = after_prefix;
    let mut hashes = 0usize;
    while b.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if b.get(j) != Some(&b'"') {
        return None; // raw ident or plain ident
    }
    // Scan to the closing `"###…` with the same hash count.
    let mut k = j + 1;
    while k < b.len() {
        if b[k] == b'"' {
            let mut h = 0;
            while h < hashes && b.get(k + 1 + h) == Some(&b'#') {
                h += 1;
            }
            if h == hashes {
                return Some((TokKind::RawStr, k + 1 + hashes));
            }
        }
        k += 1;
    }
    Some((TokKind::RawStr, b.len())) // unterminated: runs to EOF
}

/// Scan a plain string whose opening quote is at `i`; returns one past the
/// closing quote (or end of input when unterminated).
fn scan_string(b: &[u8], i: usize) -> usize {
    let mut j = i + 1;
    while j < b.len() {
        match b[j] {
            b'\\' => j = (j + 2).min(b.len()),
            b'"' => return j + 1,
            _ => j += 1,
        }
    }
    b.len()
}

/// Convert `(kind, start, end)` triples into [`Token`]s with line/col.
fn attach_positions(src: &str, toks: Vec<(TokKind, usize, usize)>) -> Vec<Token> {
    let mut line_starts = vec![0usize];
    for (i, c) in src.bytes().enumerate() {
        if c == b'\n' {
            line_starts.push(i + 1);
        }
    }
    toks.into_iter()
        .map(|(kind, start, end)| {
            let line = match line_starts.binary_search(&start) {
                Ok(l) => l,
                Err(l) => l - 1,
            };
            Token {
                kind,
                start,
                end,
                line: line + 1,
                col: start - line_starts[line] + 1,
            }
        })
        .collect()
}

/// Rebuild the stripped "code view" from the token stream: comments and
/// the full extent of string/char literals are blanked to spaces (newlines
/// preserved), everything else — including lifetimes and numeric literals
/// — is kept verbatim.  Byte offsets and line structure match the input.
pub fn stripped(src: &str, tokens: &[Token]) -> String {
    let b = src.as_bytes();
    let mut out = Vec::with_capacity(b.len());
    let mut cursor = 0usize;
    for t in tokens {
        out.extend_from_slice(&b[cursor..t.start]);
        let blank = matches!(
            t.kind,
            TokKind::Comment | TokKind::Str | TokKind::RawStr | TokKind::Char
        );
        if blank {
            for &byte in &b[t.start..t.end] {
                out.push(if byte == b'\n' { b'\n' } else { b' ' });
            }
        } else {
            out.extend_from_slice(&b[t.start..t.end]);
        }
        cursor = t.end;
    }
    out.extend_from_slice(&b[cursor..]);
    // Only byte-for-byte space substitution happened, so UTF-8 validity is
    // preserved... except inside blanked multi-byte literal bodies, which
    // became ASCII spaces — still valid.
    String::from_utf8(out).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokKind> {
        lex(src).iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_idents_literals_and_punct() {
        let toks = lex("let x = y.unwrap();");
        let texts: Vec<&str> = toks.iter().map(|t| t.text("let x = y.unwrap();")).collect();
        assert_eq!(
            texts,
            vec!["let", "x", "=", "y", ".", "unwrap", "(", ")", ";"]
        );
    }

    #[test]
    fn raw_strings_any_hash_count() {
        let src = r####"let s = r#"panic!("x")"#; let t = r"y";"####;
        let toks = lex(src);
        assert!(toks.iter().any(|t| t.kind == TokKind::RawStr));
        let s = stripped(src, &toks);
        assert!(!s.contains("panic"));
        assert!(s.contains("let t ="));
    }

    #[test]
    fn raw_idents_are_not_raw_strings() {
        let src = "let r#type = 1;";
        let toks = lex(src);
        assert!(toks.iter().all(|t| t.kind != TokKind::RawStr));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text(src) == "type"));
    }

    #[test]
    fn nested_block_comments_are_one_token() {
        let src = "a /* x /* y */ z */ b";
        assert_eq!(
            kinds(src),
            vec![TokKind::Ident, TokKind::Comment, TokKind::Ident]
        );
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }";
        let toks = lex(src);
        let lifetimes = toks.iter().filter(|t| t.kind == TokKind::Lifetime).count();
        let chars = toks.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn positions_are_one_based_line_col() {
        let src = "ab\n  cd";
        let toks = lex(src);
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn stripping_preserves_length_and_lines() {
        let src = "let x = \"unwrap()\"; // unwrap()\nlet y = 1; /* panic! */\n";
        let s = stripped(src, &lex(src));
        assert_eq!(s.len(), src.len());
        assert_eq!(s.lines().count(), src.lines().count());
        assert!(!s.contains("unwrap"));
        assert!(!s.contains("panic"));
    }

    #[test]
    fn byte_strings_blanked() {
        let src = "let a = b\"raw\"; let b2 = br#\"x\"#;";
        let s = stripped(src, &lex(src));
        assert!(!s.contains("raw"));
        assert!(!s.contains('x'));
        assert!(s.contains("let b2 ="));
    }

    #[test]
    fn numbers_stay_verbatim() {
        let src = "let n = 8_192usize + 0x1F; let r = 0..120; let f = 1.5;";
        let s = stripped(src, &lex(src));
        assert_eq!(s, src);
        let toks = lex(src);
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Num && t.text(src) == "1.5"));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Num && t.text(src) == "120"));
    }
}
