//! # `xtask` — workspace automation
//!
//! `cargo xtask audit` runs a dependency-free static-analysis pass over the
//! workspace, enforcing the disciplines the paper's threat model rests on.
//! The v2 engine lexes every file into a real token stream ([`lex`]),
//! brace-matches it into an item tree ([`tree`]) that resolves
//! `#[cfg(test)]` regions and `audit:allow(…)` suppression structurally,
//! and runs twelve rules over those views in a single pass:
//!
//! * **`no-panic-in-prod`** — non-test code in the production crates
//!   (`core`, `worm`, `jump`, `postings`, `shard`, `server`, `client`)
//!   must not `unwrap`/`expect` or use
//!   panicking macros: invariant violations surface as typed errors
//!   (`TamperEvidence`, `TksError`), never crashes.  Slice indexing is
//!   reported at warn severity.
//! * **`worm-append-only`** — only `crates/worm` may name
//!   truncation/overwrite APIs; committed extents are immutable.
//! * **`shard-isolation`** — `crates/shard` must not name storage-layer
//!   APIs (`WormFs`, `ListStore`, device/persistence accessors): the
//!   sharding layer is pure orchestration over per-shard engines, so it
//!   can never bypass a shard's audited commit path.
//! * **`forbid-unsafe`** — no `unsafe` anywhere; library roots must carry
//!   `#![forbid(unsafe_code)]`.
//! * **`error-taxonomy`** — public fallible APIs in production crates
//!   (including `pub(crate)` ones, which the v2 item tree can see) return
//!   `Result<_, E>` where `E` implements `std::error::Error`.
//! * **`hot-path-io`** (warn) — constant-length `fs.read(…, N)` calls in
//!   the postings/core read paths are per-record reads; batch through
//!   `WormFs::read_block` / `read_exact_at` instead (metadata readers
//!   opt out inline).
//! * **`wire-versioning`** — in the network crates (`server`, `client`)
//!   every serde touchpoint lives in the envelope module
//!   (`crates/server/src/wire.rs`), and internal core/shard response
//!   types are never serialized directly: the wire speaks versioned
//!   `Wire*` mirrors behind a protocol-version byte, so the engine can
//!   evolve without breaking deployed clients.
//! * **`commit-point-order`** — DOCMETA is the commit point: no non-test
//!   function in `crates/core` may append to the index after opening the
//!   DOCMETA file for its commit-point append.  Crash recovery quarantines
//!   everything behind the last whole DOCMETA record, which is only sound
//!   if DOCMETA is the last WORM append of every commit.
//! * **`trusted-conjunction`** — the `trusted` verdict on responses
//!   originates only in the engine's verification module and may only be
//!   combined conjunctively (`&&`/`&=`) elsewhere: trust is never
//!   manufactured (`= true`) or regained (`|=`, `||`) once lost (the
//!   paper's §4 ranking-attack countermeasure as a lint).
//! * **`atomic-ordering`** — the commit watermark publishes with
//!   `Release` and is read with `Acquire`; `Ordering::Relaxed` on a
//!   watermark atomic breaks the readers' happens-before argument.
//! * **`guard-across-io`** — in the hot read-path crates a lock guard
//!   must not be live across a device I/O call; copy out of the lock,
//!   drop the guard, then read.
//! * **`taxonomy-coverage`** — the first **cross-file** rule: every wire
//!   error variant the server can send is consumed by the client crate,
//!   and every public `*Error` enum is connected (via `From` impls or
//!   error-typed payloads) to the workspace taxonomy roots.
//!
//! The pass produces compiler-style human diagnostics, a JSON report
//! (`--json`, including wall-clock `elapsed_ms` and any **unused**
//! `audit:allow` directives), and SARIF 2.1.0 (`--sarif`) for CI
//! annotation; it exits nonzero on any deny-severity finding.  Suppress an
//! individual finding with an `audit:allow(<rule>)` comment on the
//! offending line, the line above, or in the header of the enclosing item
//! (item-scoped suppression covers the whole item).  Warn counts are
//! ratcheted per (rule, file) against a committed baseline
//! (`--baseline` / `--write-baseline`, see [`baseline`]).

#![forbid(unsafe_code)]
// Developer tooling, not part of the production no-panic surface it gates:
// terse panics on impossible states are fine here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

pub mod baseline;
pub mod lex;
pub mod report;
pub mod rules;
pub mod sarif;
pub mod scan;
pub mod tree;

pub use report::{Finding, Report, Severity};

use report::UnusedAllow;
use std::io;
use std::path::Path;
use std::time::Instant;

/// Directories under the workspace root that the audit scans.
const SCAN_DIRS: [&str; 4] = ["crates", "src", "examples", "tests"];

/// Run every rule over the workspace rooted at `root` and return the
/// combined report (findings sorted by file/line/column; directives that
/// suppressed nothing reported as `unused_allows`).
pub fn audit_workspace(root: &Path) -> io::Result<Report> {
    let started = Instant::now();
    let mut files = Vec::new();
    for dir in SCAN_DIRS {
        let d = root.join(dir);
        if d.is_dir() {
            for path in scan::walk_rs_files(&d)? {
                files.push(scan::SourceFile::load(root, path)?);
            }
        }
    }
    let mut report = Report {
        files_scanned: files.len(),
        ..Default::default()
    };
    let used = rules::run_all(&files, &mut report);
    for file in &files {
        // Only production crates carry trust-budget directives worth
        // policing; the tooling crate's docs *mention* `audit:allow(…)`
        // (placeholders, examples) without meaning them.
        if !rules::PROD_PREFIXES.iter().any(|p| file.rel.starts_with(p)) {
            continue;
        }
        for d in &file.tree.directives {
            let registered = rules::rule_meta(&d.rule).is_some();
            if registered && !used.contains(&(file.rel.clone(), d.line, d.rule.clone())) {
                report.unused_allows.push(UnusedAllow {
                    file: file.rel.clone(),
                    line: d.line,
                    rule: d.rule.clone(),
                });
            }
        }
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    report.elapsed_ms = started.elapsed().as_millis() as u64;
    Ok(report)
}
