//! # `xtask` — workspace automation
//!
//! `cargo xtask audit` runs a dependency-free static-analysis pass over the
//! workspace, enforcing the disciplines the paper's threat model rests on:
//!
//! * **`no-panic-in-prod`** — non-test code in the production crates
//!   (`core`, `worm`, `jump`, `postings`, `shard`, `server`, `client`)
//!   must not `unwrap`/`expect` or use
//!   panicking macros: invariant violations surface as typed errors
//!   (`TamperEvidence`, `TksError`), never crashes.  Slice indexing is
//!   reported at warn severity.
//! * **`worm-append-only`** — only `crates/worm` may name
//!   truncation/overwrite APIs; committed extents are immutable.
//! * **`shard-isolation`** — `crates/shard` must not name storage-layer
//!   APIs (`WormFs`, `ListStore`, device/persistence accessors): the
//!   sharding layer is pure orchestration over per-shard engines, so it
//!   can never bypass a shard's audited commit path.
//! * **`forbid-unsafe`** — no `unsafe` anywhere; library roots must carry
//!   `#![forbid(unsafe_code)]`.
//! * **`error-taxonomy`** — public fallible APIs in production crates
//!   return `Result<_, E>` where `E` implements `std::error::Error`.
//! * **`hot-path-io`** (warn) — constant-length `fs.read(…, N)` calls in
//!   the postings/core read paths are per-record reads; batch through
//!   `WormFs::read_block` / `read_exact_at` instead (metadata readers
//!   opt out inline).
//! * **`wire-versioning`** — in the network crates (`server`, `client`)
//!   every serde touchpoint lives in the envelope module
//!   (`crates/server/src/wire.rs`), and internal core/shard response
//!   types are never serialized directly: the wire speaks versioned
//!   `Wire*` mirrors behind a protocol-version byte, so the engine can
//!   evolve without breaking deployed clients.
//! * **`commit-point-order`** — DOCMETA is the commit point: no non-test
//!   function in `crates/core` may append to the index after opening the
//!   DOCMETA file for its commit-point append.  Crash recovery quarantines
//!   everything behind the last whole DOCMETA record, which is only sound
//!   if DOCMETA is the last WORM append of every commit.
//!
//! The pass is lexical (comments and string literals are blanked before
//! matching, `#[cfg(test)]` regions are masked) and produces both
//! compiler-style human diagnostics and a JSON report; it exits nonzero on
//! any deny-severity finding.  Suppress an individual finding with an
//! `audit:allow(<rule>)` comment on or above the offending line.

#![forbid(unsafe_code)]
// Developer tooling, not part of the production no-panic surface it gates:
// terse panics on impossible states are fine here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

pub mod report;
pub mod rules;
pub mod scan;

pub use report::{Finding, Report, Severity};

use std::io;
use std::path::Path;

/// Directories under the workspace root that the audit scans.
const SCAN_DIRS: [&str; 4] = ["crates", "src", "examples", "tests"];

/// Run every rule over the workspace rooted at `root` and return the
/// combined report (findings sorted by file/line/column).
pub fn audit_workspace(root: &Path) -> io::Result<Report> {
    let mut files = Vec::new();
    for dir in SCAN_DIRS {
        let d = root.join(dir);
        if d.is_dir() {
            for path in scan::walk_rs_files(&d)? {
                files.push(scan::SourceFile::load(root, path)?);
            }
        }
    }
    let mut report = Report {
        files_scanned: files.len(),
        ..Default::default()
    };
    rules::no_panic_in_prod(&files, &mut report);
    rules::worm_append_only(&files, &mut report);
    rules::shard_isolation(&files, &mut report);
    rules::forbid_unsafe(&files, &mut report);
    rules::error_taxonomy(&files, &mut report);
    rules::wire_versioning(&files, &mut report);
    rules::hot_path_io(&files, &mut report);
    rules::commit_point_order(&files, &mut report);
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    Ok(report)
}
