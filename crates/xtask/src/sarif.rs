//! SARIF 2.1.0 output for the audit (`cargo xtask audit --sarif`).
//!
//! SARIF (Static Analysis Results Interchange Format) is the schema CI
//! forges ingest to annotate pull requests with per-line findings.  The
//! encoder is hand-rolled like the JSON report (the vendored serde stub
//! has no `Value`); the structure is the minimal valid subset: one run,
//! the full rule registry as `tool.driver.rules` (so viewers can show
//! rule metadata even for clean runs), and one `result` per finding with
//! a physical location.  Deny maps to SARIF `error`, warn to `warning`.

use crate::report::{json_escape, Report, Severity};
use crate::rules::RULES;

/// Schema URI pinned in the output; the snapshot test asserts it.
pub const SARIF_SCHEMA: &str = "https://json.schemastore.org/sarif-2.1.0.json";

fn level(severity: Severity) -> &'static str {
    match severity {
        Severity::Deny => "error",
        Severity::Warn => "warning",
    }
}

/// Render the report as a SARIF 2.1.0 log.
pub fn render_sarif(report: &Report) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\n  \"$schema\": \"{SARIF_SCHEMA}\",\n  \"version\": \"2.1.0\",\n  \"runs\": [\n    {{\n"
    ));
    out.push_str(
        "      \"tool\": {\n        \"driver\": {\n          \"name\": \"tks-audit\",\n          \
         \"informationUri\": \"https://example.invalid/tks/audit\",\n          \
         \"version\": \"2.0.0\",\n          \"rules\": [\n",
    );
    for (i, meta) in RULES.iter().enumerate() {
        out.push_str(&format!(
            "            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}, \
             \"defaultConfiguration\": {{\"level\": \"{}\"}}}}{}\n",
            json_escape(meta.id),
            json_escape(meta.summary),
            level(meta.severity),
            if i + 1 < RULES.len() { "," } else { "" }
        ));
    }
    out.push_str("          ]\n        }\n      },\n      \"results\": [\n");
    for (i, f) in report.findings.iter().enumerate() {
        let rule_index = RULES
            .iter()
            .position(|m| m.id == f.rule)
            .expect("finding references a registered rule");
        out.push_str(&format!(
            "        {{\"ruleId\": \"{}\", \"ruleIndex\": {}, \"level\": \"{}\", \
             \"message\": {{\"text\": \"{}\"}}, \"locations\": [{{\"physicalLocation\": \
             {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \"region\": {{\"startLine\": {}, \
             \"startColumn\": {}, \"snippet\": {{\"text\": \"{}\"}}}}}}}}]}}{}\n",
            json_escape(f.rule),
            rule_index,
            level(f.severity),
            json_escape(&f.message),
            json_escape(&f.file),
            f.line,
            f.col,
            json_escape(&f.snippet),
            if i + 1 < report.findings.len() {
                ","
            } else {
                ""
            }
        ));
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Finding;

    #[test]
    fn clean_report_renders_all_rules_and_no_results() {
        let sarif = render_sarif(&Report::default());
        assert!(sarif.contains(SARIF_SCHEMA));
        assert!(sarif.contains("\"version\": \"2.1.0\""));
        for meta in RULES {
            assert!(sarif.contains(&format!("\"id\": \"{}\"", meta.id)));
        }
        assert!(sarif.contains("\"results\": [\n      ]"));
    }

    #[test]
    fn finding_maps_to_result_with_location_and_rule_index() {
        let report = Report {
            findings: vec![Finding {
                rule: "forbid-unsafe",
                severity: Severity::Deny,
                file: "crates/core/src/engine.rs".into(),
                line: 12,
                col: 5,
                message: "unsafe block".into(),
                snippet: "unsafe { *p }".into(),
            }],
            ..Default::default()
        };
        let sarif = render_sarif(&report);
        let idx = RULES.iter().position(|m| m.id == "forbid-unsafe").unwrap();
        assert!(sarif.contains(&format!(
            "\"ruleId\": \"forbid-unsafe\", \"ruleIndex\": {idx}, \"level\": \"error\""
        )));
        assert!(sarif.contains("\"uri\": \"crates/core/src/engine.rs\""));
        assert!(sarif.contains("\"startLine\": 12, \"startColumn\": 5"));
    }
}
