//! Warn-count baseline ratchet (`cargo xtask audit --baseline <file>`).
//!
//! Deny findings fail the audit outright, but warn findings (the hot-path
//! I/O heuristic) would otherwise accumulate silently.  The baseline pins
//! the current warn count **per (rule, file)**; CI compares each run
//! against the committed baseline and fails on any increase.  Counts may
//! go down freely — regenerate with `--write-baseline` after paying down
//! debt to ratchet the ceiling tighter.
//!
//! The file format is a stable, reviewable JSON document:
//!
//! ```json
//! {
//!   "version": 1,
//!   "warn_counts": [
//!     {"rule": "hot-path-io", "file": "crates/core/src/engine.rs", "count": 3}
//!   ]
//! }
//! ```

use crate::report::{json_escape, Report, Severity};
use std::collections::BTreeMap;

/// Per-(rule, file) warn counts.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct Baseline {
    /// `(rule, file) -> count`, sorted for deterministic rendering.
    pub warn_counts: BTreeMap<(String, String), usize>,
}

impl Baseline {
    /// Capture the warn counts of a report.
    pub fn from_report(report: &Report) -> Baseline {
        let mut warn_counts: BTreeMap<(String, String), usize> = BTreeMap::new();
        for f in &report.findings {
            if f.severity == Severity::Warn {
                *warn_counts
                    .entry((f.rule.to_string(), f.file.clone()))
                    .or_default() += 1;
            }
        }
        Baseline { warn_counts }
    }

    /// Render as the committed JSON document.
    pub fn render(&self) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n  \"warn_counts\": [");
        for (i, ((rule, file), count)) in self.warn_counts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"count\": {}}}",
                json_escape(rule),
                json_escape(file),
                count
            ));
        }
        if !self.warn_counts.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Parse a committed baseline document (the format [`render`](Self::render)
    /// writes: one entry object per line).
    pub fn parse(text: &str) -> Result<Baseline, String> {
        if !text.contains("\"version\": 1") {
            return Err("baseline: missing or unsupported \"version\" (expected 1)".into());
        }
        let mut warn_counts = BTreeMap::new();
        for (i, line) in text.lines().enumerate() {
            if !line.contains("\"rule\":") {
                continue;
            }
            let rule = str_field(line, "rule")
                .ok_or_else(|| format!("baseline line {}: missing \"rule\"", i + 1))?;
            let file = str_field(line, "file")
                .ok_or_else(|| format!("baseline line {}: missing \"file\"", i + 1))?;
            let count = num_field(line, "count")
                .ok_or_else(|| format!("baseline line {}: missing \"count\"", i + 1))?;
            warn_counts.insert((rule, file), count);
        }
        Ok(Baseline { warn_counts })
    }

    /// Regressions of `current` against `self` (the committed baseline):
    /// one message per (rule, file) whose warn count grew.  Empty means
    /// the ratchet holds.
    pub fn regressions(&self, current: &Baseline) -> Vec<String> {
        let mut out = Vec::new();
        for ((rule, file), &count) in &current.warn_counts {
            let allowed = self
                .warn_counts
                .get(&(rule.clone(), file.clone()))
                .copied()
                .unwrap_or(0);
            if count > allowed {
                out.push(format!(
                    "{file}: {count} {rule} warn finding(s), baseline allows {allowed} \
                     — fix the new ones or (deliberately) regenerate with --write-baseline"
                ));
            }
        }
        out
    }
}

/// Extract `"key": "value"` from a single baseline line.
fn str_field(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\": \"");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

/// Extract `"key": 123` from a single baseline line.
fn num_field(line: &str, key: &str) -> Option<usize> {
    let tag = format!("\"{key}\": ");
    let start = line.find(&tag)? + tag.len();
    let digits: String = line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Finding;

    fn warn(rule: &'static str, file: &str) -> Finding {
        Finding {
            rule,
            severity: Severity::Warn,
            file: file.into(),
            line: 1,
            col: 1,
            message: "m".into(),
            snippet: "s".into(),
        }
    }

    fn report_with(findings: Vec<Finding>) -> Report {
        Report {
            findings,
            ..Default::default()
        }
    }

    #[test]
    fn round_trip_preserves_counts() {
        let report = report_with(vec![
            warn("hot-path-io", "crates/core/src/a.rs"),
            warn("hot-path-io", "crates/core/src/a.rs"),
            warn("hot-path-io", "crates/postings/src/b.rs"),
        ]);
        let b = Baseline::from_report(&report);
        let parsed = Baseline::parse(&b.render()).unwrap();
        assert_eq!(parsed, b);
        assert_eq!(
            parsed.warn_counts[&("hot-path-io".into(), "crates/core/src/a.rs".into())],
            2
        );
    }

    #[test]
    fn growth_is_a_regression_shrink_is_not() {
        let committed = Baseline::from_report(&report_with(vec![
            warn("hot-path-io", "crates/core/src/a.rs"),
            warn("hot-path-io", "crates/core/src/a.rs"),
        ]));
        let fewer = Baseline::from_report(&report_with(vec![warn(
            "hot-path-io",
            "crates/core/src/a.rs",
        )]));
        assert!(committed.regressions(&fewer).is_empty());
        let more = Baseline::from_report(&report_with(vec![
            warn("hot-path-io", "crates/core/src/a.rs"),
            warn("hot-path-io", "crates/core/src/a.rs"),
            warn("hot-path-io", "crates/core/src/a.rs"),
        ]));
        let regressions = committed.regressions(&more);
        assert_eq!(regressions.len(), 1);
        assert!(regressions[0].contains("baseline allows 2"));
    }

    #[test]
    fn new_file_counts_against_zero() {
        let committed = Baseline::default();
        let current = Baseline::from_report(&report_with(vec![warn(
            "hot-path-io",
            "crates/core/src/new.rs",
        )]));
        assert_eq!(committed.regressions(&current).len(), 1);
    }

    #[test]
    fn parse_rejects_missing_version() {
        assert!(Baseline::parse("{\"warn_counts\": []}").is_err());
    }
}
