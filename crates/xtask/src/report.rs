//! Diagnostics: findings, human-readable rendering, and a hand-rolled JSON
//! encoder (the vendored `serde_json` stub has no `Value`, so the audit
//! writes its machine-readable output directly).

/// How a finding affects the exit status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fails the audit (nonzero exit).
    Deny,
    /// Reported but does not fail the audit.
    Warn,
}

impl Severity {
    /// Lowercase label used in both output formats.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Deny => "deny",
            Severity::Warn => "warn",
        }
    }
}

/// One rule violation at a specific source location.
#[derive(Debug)]
pub struct Finding {
    /// Rule identifier, e.g. `no-panic-in-prod`.
    pub rule: &'static str,
    /// Whether this finding fails the audit.
    pub severity: Severity,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column of the offending token.
    pub col: usize,
    /// What went wrong and why the rule cares.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

/// An `audit:allow(rule)` directive that suppressed nothing this run —
/// dead trust-budget that should be deleted before it silently excuses a
/// future regression.
#[derive(Debug)]
pub struct UnusedAllow {
    /// Workspace-relative path of the directive.
    pub file: String,
    /// 1-based line of the directive comment.
    pub line: usize,
    /// The rule the directive names.
    pub rule: String,
}

/// The result of an audit run.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, ordered by (file, line).
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Findings suppressed by `audit:allow(...)` directives or rule
    /// allowlists.
    pub suppressed: usize,
    /// Directives that suppressed nothing (candidates for deletion).
    pub unused_allows: Vec<UnusedAllow>,
    /// Wall-clock time of the scan + all rules, in milliseconds.
    pub elapsed_ms: u64,
}

impl Report {
    /// Number of deny-severity findings; the audit exits nonzero iff > 0.
    pub fn deny_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Deny)
            .count()
    }

    /// Number of warn-severity findings.
    pub fn warn_count(&self) -> usize {
        self.findings.len() - self.deny_count()
    }

    /// Render compiler-style human diagnostics plus a summary line.
    ///
    /// Deny findings are always printed in full.  Warn findings are printed
    /// in full only when there are few of them; a large warn set (e.g. the
    /// indexing heuristic over a whole crate) is summarised per file so the
    /// deny findings stay visible.  The JSON output always carries
    /// everything.
    pub fn render_human(&self) -> String {
        const WARN_DETAIL_LIMIT: usize = 25;
        let mut out = String::new();
        for f in &self.findings {
            if f.severity == Severity::Warn && self.warn_count() > WARN_DETAIL_LIMIT {
                continue;
            }
            out.push_str(&format!(
                "{}:{}:{}: {}[{}]: {}\n    {}\n",
                f.file,
                f.line,
                f.col,
                f.severity.label(),
                f.rule,
                f.message,
                f.snippet
            ));
        }
        for ua in &self.unused_allows {
            out.push_str(&format!(
                "{}:{}: note[unused-allow]: `audit:allow({})` suppressed nothing \
                 this run; delete it so it cannot excuse a future regression\n",
                ua.file, ua.line, ua.rule
            ));
        }
        if self.warn_count() > WARN_DETAIL_LIMIT {
            let mut per_file: Vec<(&str, usize)> = Vec::new();
            for f in &self.findings {
                if f.severity != Severity::Warn {
                    continue;
                }
                match per_file.last_mut() {
                    Some((file, n)) if *file == f.file => *n += 1,
                    _ => per_file.push((&f.file, 1)),
                }
            }
            for (file, n) in per_file {
                out.push_str(&format!(
                    "{file}: {n} warn finding(s) (use --json for detail)\n"
                ));
            }
        }
        out.push_str(&format!(
            "audit: {} file(s) scanned, {} deny, {} warn, {} suppressed — {}\n",
            self.files_scanned,
            self.deny_count(),
            self.warn_count(),
            self.suppressed,
            if self.deny_count() == 0 {
                "PASS"
            } else {
                "FAIL"
            }
        ));
        out
    }

    /// Render the report as a single JSON object.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rule\": \"{}\", \"severity\": \"{}\", \"file\": \"{}\", \
                 \"line\": {}, \"col\": {}, \"message\": \"{}\", \"snippet\": \"{}\"}}",
                json_escape(f.rule),
                f.severity.label(),
                json_escape(&f.file),
                f.line,
                f.col,
                json_escape(&f.message),
                json_escape(&f.snippet)
            ));
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"unused_allows\": [");
        for (i, ua) in self.unused_allows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\"}}",
                json_escape(&ua.file),
                ua.line,
                json_escape(&ua.rule)
            ));
        }
        if !self.unused_allows.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str(&format!(
            "],\n  \"files_scanned\": {},\n  \"elapsed_ms\": {},\n  \"deny\": {},\n  \
             \"warn\": {},\n  \"suppressed\": {},\n  \"pass\": {}\n}}\n",
            self.files_scanned,
            self.elapsed_ms,
            self.deny_count(),
            self.warn_count(),
            self.suppressed,
            self.deny_count() == 0
        ));
        out
    }
}

/// Escape a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            findings: vec![Finding {
                rule: "no-panic-in-prod",
                severity: Severity::Deny,
                file: "crates/core/src/engine.rs".into(),
                line: 10,
                col: 5,
                message: "`unwrap()` in production code".into(),
                snippet: "let x = y.unwrap();".into(),
            }],
            files_scanned: 3,
            suppressed: 1,
            ..Default::default()
        }
    }

    #[test]
    fn human_output_has_location_and_verdict() {
        let r = sample().render_human();
        assert!(r.contains("crates/core/src/engine.rs:10:5"));
        assert!(r.contains("deny[no-panic-in-prod]"));
        assert!(r.contains("FAIL"));
    }

    #[test]
    fn json_escapes_quotes() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn unused_allows_render_in_both_formats() {
        let r = Report {
            files_scanned: 1,
            unused_allows: vec![UnusedAllow {
                file: "crates/core/src/engine.rs".into(),
                line: 7,
                rule: "no-panic-in-prod".into(),
            }],
            ..Default::default()
        };
        let human = r.render_human();
        assert!(human.contains("note[unused-allow]"));
        assert!(human.contains("crates/core/src/engine.rs:7"));
        let json = r.render_json();
        assert!(json.contains("\"unused_allows\": [\n    {\"file\": \"crates/core/src/engine.rs\", \"line\": 7, \"rule\": \"no-panic-in-prod\"}"));
        assert!(json.contains("\"elapsed_ms\": 0"));
    }

    #[test]
    fn empty_report_passes() {
        let r = Report {
            files_scanned: 1,
            ..Default::default()
        };
        assert_eq!(r.deny_count(), 0);
        assert!(r.render_json().contains("\"pass\": true"));
    }
}
