//! End-to-end tests for `cargo xtask audit`: seeded violation fixtures per
//! rule, allowlist suppression, a JSON snapshot, and a check that the real
//! workspace is clean.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use xtask::{audit_workspace, Report, Severity};

static FIXTURE_SEQ: AtomicUsize = AtomicUsize::new(0);

/// Materialize a throwaway workspace with the given `(relative path,
/// contents)` files and audit it.
fn audit_fixture(files: &[(&str, &str)]) -> (Report, PathBuf) {
    let n = FIXTURE_SEQ.fetch_add(1, Ordering::Relaxed);
    let root = std::env::temp_dir().join(format!("xtask-audit-fixture-{}-{n}", std::process::id()));
    for (rel, contents) in files {
        let path = root.join(rel);
        fs::create_dir_all(path.parent().expect("fixture path has a parent"))
            .expect("create fixture dirs");
        fs::write(&path, contents).expect("write fixture file");
    }
    let report = audit_workspace(&root).expect("audit fixture");
    (report, root)
}

fn cleanup(root: PathBuf) {
    let _ = fs::remove_dir_all(root);
}

fn rules_of(report: &Report, rule: &str) -> Vec<String> {
    report
        .findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| format!("{}:{} {}", f.file, f.line, f.severity.label()))
        .collect()
}

#[test]
fn no_panic_rule_fires_on_unwrap_and_macros_but_not_tests() {
    let (report, root) = audit_fixture(&[(
        "crates/core/src/lib.rs",
        r##"#![forbid(unsafe_code)]
pub fn prod(x: Option<u8>) -> u8 {
    x.unwrap()
}
pub fn prod2() {
    panic!("boom");
}
pub fn fine(x: Option<u8>) -> u8 {
    x.unwrap_or(0)
}
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        Some(1u8).unwrap();
        todo!();
    }
}
"##,
    )]);
    let hits = rules_of(&report, "no-panic-in-prod");
    assert_eq!(
        hits,
        vec![
            "crates/core/src/lib.rs:3 deny",
            "crates/core/src/lib.rs:6 deny"
        ],
        "unwrap_or must not match; cfg(test) code must be masked"
    );
    assert_eq!(report.deny_count(), 2);
    cleanup(root);
}

#[test]
fn no_panic_rule_ignores_comments_and_strings() {
    let (report, root) = audit_fixture(&[(
        "crates/jump/src/lib.rs",
        r##"#![forbid(unsafe_code)]
// a comment may say unwrap() or panic!
pub fn msg() -> &'static str {
    "this string says unwrap() and panic!(now)"
}
"##,
    )]);
    assert!(rules_of(&report, "no-panic-in-prod").is_empty());
    cleanup(root);
}

#[test]
fn indexing_is_warn_severity_only() {
    let (report, root) = audit_fixture(&[(
        "crates/postings/src/lib.rs",
        r##"#![forbid(unsafe_code)]
pub fn first(xs: &[u8]) -> u8 {
    xs[0]
}
"##,
    )]);
    let hits = rules_of(&report, "no-panic-in-prod");
    assert_eq!(hits, vec!["crates/postings/src/lib.rs:3 warn"]);
    assert_eq!(
        report.deny_count(),
        0,
        "warn findings must not fail the audit"
    );
    assert_eq!(report.warn_count(), 1);
    cleanup(root);
}

#[test]
fn worm_append_only_exempts_the_worm_crate() {
    let shared = r##"#![forbid(unsafe_code)]
pub fn shrink(f: &mut std::fs::File) {
    let _ = f.set_len(0);
}
"##;
    let (report, root) = audit_fixture(&[
        ("crates/jump/src/lib.rs", shared),
        ("crates/worm/src/lib.rs", shared),
    ]);
    let hits = rules_of(&report, "worm-append-only");
    assert_eq!(
        hits,
        vec!["crates/jump/src/lib.rs:3 deny"],
        "only the non-worm crate may be flagged"
    );
    cleanup(root);
}

#[test]
fn shard_isolation_denies_storage_idents_only_in_the_shard_crate() {
    let shared = r##"#![forbid(unsafe_code)]
pub fn peek(engine: &Engine) -> usize {
    engine.list_store().num_blocks()
}
pub fn image(fs: &WormFs) -> Vec<u8> {
    save_fs(fs).unwrap_or_default()
}
pub fn pass_through(parts: EngineParts) -> EngineParts {
    parts
}
#[cfg(test)]
mod tests {
    #[test]
    fn t(engine: &mut Engine) {
        engine.list_store_mut().fs_mut();
    }
}
"##;
    let (report, root) = audit_fixture(&[
        ("crates/shard/src/lib.rs", shared),
        ("crates/core/src/lib.rs", shared),
    ]);
    let hits = rules_of(&report, "shard-isolation");
    assert_eq!(
        hits,
        vec![
            "crates/shard/src/lib.rs:3 deny",
            "crates/shard/src/lib.rs:5 deny",
            "crates/shard/src/lib.rs:6 deny",
        ],
        "storage idents (list_store, WormFs, save_fs) flag in crates/shard \
         non-test code only; the opaque EngineParts pass-through and \
         cfg(test) code do not"
    );
    cleanup(root);
}

#[test]
fn shard_isolation_honours_inline_allow() {
    let (report, root) = audit_fixture(&[(
        "crates/shard/src/lib.rs",
        r##"#![forbid(unsafe_code)]
pub fn fixture(engine: &Engine) -> usize {
    // audit:allow(shard-isolation) — fixture exception
    engine.list_store().num_blocks()
}
"##,
    )]);
    assert!(rules_of(&report, "shard-isolation").is_empty());
    assert_eq!(report.suppressed, 1);
    cleanup(root);
}

#[test]
fn replica_apply_only_denies_mutation_outside_the_applier_module() {
    let mutating = r##"#![forbid(unsafe_code)]
pub(crate) fn sneak(fs: &mut WormFs, f: FileHandle) {
    let _ = fs.append(f, b"x");
    let _ = fs.replay(f, 0, b"x");
}
#[cfg(test)]
mod tests {
    #[test]
    fn t(fs: &mut WormFs, f: FileHandle) {
        fs.append(f, b"x").unwrap();
    }
}
"##;
    let (report, root) = audit_fixture(&[
        ("crates/replica/src/set.rs", mutating),
        ("crates/replica/src/apply.rs", mutating),
        ("crates/core/src/commit.rs", mutating),
    ]);
    let hits = rules_of(&report, "replica-apply-only");
    assert_eq!(
        hits,
        vec![
            "crates/replica/src/set.rs:3 deny",
            "crates/replica/src/set.rs:4 deny",
        ],
        "mutation APIs flag in the replication crate outside apply.rs only; \
         the applier module, cfg(test) code, and other crates do not"
    );
    cleanup(root);
}

#[test]
fn replica_apply_only_accepts_recovery_and_read_paths() {
    let (report, root) = audit_fixture(&[(
        "crates/replica/src/failover.rs",
        r##"#![forbid(unsafe_code)]
pub(crate) fn reboot(parts: &mut EngineParts) -> u64 {
    let q = parts.store_fs.crash_recover().unwrap_or(0);
    let _ = parts.store_fs.len();
    q
}
"##,
    )]);
    assert!(
        rules_of(&report, "replica-apply-only").is_empty(),
        "crash recovery and read accessors are not replication mutations"
    );
    cleanup(root);
}

#[test]
fn replica_apply_only_honours_inline_allow() {
    let (report, root) = audit_fixture(&[(
        "crates/replica/src/set.rs",
        r##"#![forbid(unsafe_code)]
pub(crate) fn seed(fs: &mut WormFs) {
    // audit:allow(replica-apply-only) — fixture exception
    let _ = fs.create("f", 0);
}
"##,
    )]);
    assert!(rules_of(&report, "replica-apply-only").is_empty());
    assert_eq!(report.suppressed, 1);
    cleanup(root);
}

#[test]
fn forbid_unsafe_flags_blocks_and_missing_attr() {
    let (report, root) = audit_fixture(&[(
        "crates/ght/src/lib.rs",
        r##"pub fn evil(p: *const u8) -> u8 {
    unsafe { *p }
}
"##,
    )]);
    let hits = rules_of(&report, "forbid-unsafe");
    assert_eq!(
        hits,
        vec![
            "crates/ght/src/lib.rs:1 deny",
            "crates/ght/src/lib.rs:2 deny"
        ],
        "expect one finding for the missing attribute, one for the block"
    );
    cleanup(root);
}

#[test]
fn error_taxonomy_rejects_string_errors_and_accepts_taxonomy_types() {
    let (report, root) = audit_fixture(&[(
        "crates/core/src/lib.rs",
        r##"#![forbid(unsafe_code)]
#[derive(Debug)]
pub struct GoodError;
impl std::fmt::Display for GoodError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "good")
    }
}
impl std::error::Error for GoodError {}

pub fn bad() -> Result<u8, String> {
    Ok(1)
}
pub fn worse() -> Result<u8, u64> {
    Ok(1)
}
pub fn good() -> Result<u8, GoodError> {
    Ok(1)
}
pub fn infallible() -> u8 {
    1
}
"##,
    )]);
    let hits = rules_of(&report, "error-taxonomy");
    assert_eq!(
        hits,
        vec![
            "crates/core/src/lib.rs:11 deny",
            "crates/core/src/lib.rs:14 deny"
        ]
    );
    cleanup(root);
}

#[test]
fn hot_path_io_flags_constant_small_reads_only_in_read_path_crates() {
    let shared = r##"#![forbid(unsafe_code)]
pub const REC: usize = 12;
pub fn replay(fs: &Fs, f: File, n: u64, len: usize) -> Vec<u8> {
    let mut out = Vec::new();
    for i in 0..n {
        out.extend(fs.read(f, i * 8, 8));
        out.extend(fs.read(f, i * 12, REC));
    }
    out.extend(fs.read(f, 0, len));
    out
}
#[cfg(test)]
mod tests {
    #[test]
    fn t(fs: &Fs, f: File) {
        let _ = fs.read(f, 0, 2);
    }
}
"##;
    let (report, root) = audit_fixture(&[
        ("crates/postings/src/lib.rs", shared),
        ("crates/worm/src/lib.rs", shared),
    ]);
    let hits = rules_of(&report, "hot-path-io");
    assert_eq!(
        hits,
        vec![
            "crates/postings/src/lib.rs:6 warn",
            "crates/postings/src/lib.rs:7 warn"
        ],
        "literal and const lengths flag in postings; runtime lengths, \
         cfg(test) code, and the worm crate itself do not"
    );
    assert_eq!(report.deny_count(), 0, "hot-path-io is warn severity");
    cleanup(root);
}

#[test]
fn hot_path_io_allows_metadata_readers_inline() {
    let (report, root) = audit_fixture(&[(
        "crates/core/src/lib.rs",
        r##"#![forbid(unsafe_code)]
pub fn header(fs: &Fs, f: File) -> Vec<u8> {
    // audit:allow(hot-path-io) — one-off metadata header
    fs.read(f, 0, 16)
}
"##,
    )]);
    assert!(rules_of(&report, "hot-path-io").is_empty());
    assert_eq!(report.suppressed, 1);
    cleanup(root);
}

#[test]
fn wire_versioning_denies_serde_outside_the_envelope_module() {
    let (report, root) = audit_fixture(&[
        (
            "crates/server/src/handlers.rs",
            r##"use serde::{Deserialize, Serialize};
#[derive(Serialize)]
pub struct AdHocReply {
    pub docs: u64,
}
pub fn encode(r: &AdHocReply) -> String {
    serde_json::to_string(r).unwrap_or_default()
}
"##,
        ),
        (
            "crates/client/src/lib.rs",
            r##"#![forbid(unsafe_code)]
use serde::Deserialize;
"##,
        ),
        // The same constructs in a non-network crate are out of scope.
        (
            "crates/core/src/lib.rs",
            r##"#![forbid(unsafe_code)]
pub use serde::Serialize;
"##,
        ),
    ]);
    let hits = rules_of(&report, "wire-versioning");
    assert_eq!(
        hits,
        vec![
            "crates/client/src/lib.rs:2 deny",
            "crates/server/src/handlers.rs:1 deny",
            "crates/server/src/handlers.rs:2 deny",
            "crates/server/src/handlers.rs:7 deny",
        ],
        "serde idents flag anywhere in the network crates outside the \
         envelope module; other crates are untouched"
    );
    cleanup(root);
}

#[test]
fn wire_versioning_keeps_internal_types_off_the_wire_in_the_envelope() {
    let (report, root) = audit_fixture(&[(
        "crates/server/src/wire.rs",
        r##"use serde::{Deserialize, Serialize};
#[derive(Serialize, Deserialize)]
pub struct WireHit {
    pub doc: u64,
}
impl Serialize for ShardedResponse {
    fn serialize(&self) {}
}
pub fn leak(resp: &QueryResponse) -> String {
    serde_json::to_string::<QueryResponse>(resp).unwrap_or_default()
}
pub fn lower(q: &WireHit) -> Query {
    Query::from(q.doc)
}
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let _ = serde_json::to_string(&ShardedResponse::default());
    }
}
"##,
    )]);
    let hits = rules_of(&report, "wire-versioning");
    assert_eq!(
        hits,
        vec![
            "crates/server/src/wire.rs:6 deny",
            "crates/server/src/wire.rs:10 deny",
        ],
        "the envelope may use serde for Wire* types and may *name* internal \
         types (query lowering), but hand-rolled impls and serde_json on \
         internal types are denied; cfg(test) code is masked"
    );
    cleanup(root);
}

#[test]
fn wire_versioning_honours_inline_allow() {
    let (report, root) = audit_fixture(&[(
        "crates/client/src/lib.rs",
        r##"#![forbid(unsafe_code)]
// audit:allow(wire-versioning) — fixture exception
use serde::Deserialize;
"##,
    )]);
    assert!(rules_of(&report, "wire-versioning").is_empty());
    assert_eq!(report.suppressed, 1);
    cleanup(root);
}

#[test]
fn inline_allow_directive_suppresses_and_is_counted() {
    let (report, root) = audit_fixture(&[(
        "crates/core/src/lib.rs",
        r##"#![forbid(unsafe_code)]
pub fn prod(x: Option<u8>) -> u8 {
    // audit:allow(no-panic-in-prod) — fixture exception
    x.unwrap()
}
"##,
    )]);
    assert!(rules_of(&report, "no-panic-in-prod").is_empty());
    assert_eq!(report.suppressed, 1);
    assert_eq!(report.deny_count(), 0);
    cleanup(root);
}

#[test]
fn allow_directive_for_one_rule_does_not_mute_others() {
    let (report, root) = audit_fixture(&[(
        "crates/core/src/lib.rs",
        r##"#![forbid(unsafe_code)]
pub fn prod(x: Option<u8>) -> u8 {
    // audit:allow(worm-append-only) — wrong rule name on purpose
    x.unwrap()
}
"##,
    )]);
    assert_eq!(
        rules_of(&report, "no-panic-in-prod"),
        vec!["crates/core/src/lib.rs:4 deny"]
    );
    assert_eq!(report.suppressed, 0);
    cleanup(root);
}

#[test]
fn json_report_snapshot() {
    let (mut report, root) = audit_fixture(&[(
        "crates/worm/src/lib.rs",
        r##"#![forbid(unsafe_code)]
// audit:allow(forbid-unsafe) — dead directive, reported as unused
pub fn prod() {
    panic!("boom");
}
"##,
    )]);
    // Wall-clock is nondeterministic; zero it for the snapshot.
    report.elapsed_ms = 0;
    let expected = r##"{
  "findings": [
    {"rule": "no-panic-in-prod", "severity": "deny", "file": "crates/worm/src/lib.rs", "line": 4, "col": 5, "message": "`panic!` aborts the process; a crash during a compliance lookup is indistinguishable from a hidden record", "snippet": "panic!(\"boom\");"}
  ],
  "unused_allows": [
    {"file": "crates/worm/src/lib.rs", "line": 2, "rule": "forbid-unsafe"}
  ],
  "files_scanned": 1,
  "elapsed_ms": 0,
  "deny": 1,
  "warn": 0,
  "suppressed": 0,
  "pass": false
}
"##;
    assert_eq!(report.render_json(), expected);
    cleanup(root);
}

#[test]
fn the_real_workspace_is_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("workspace root")
        .to_path_buf();
    let report = audit_workspace(&root).expect("audit workspace");
    let denies: Vec<String> = report
        .findings
        .iter()
        .filter(|f| f.severity == Severity::Deny)
        .map(|f| format!("{}:{} [{}] {}", f.file, f.line, f.rule, f.message))
        .collect();
    assert!(
        denies.is_empty(),
        "the workspace must audit clean:\n{}",
        denies.join("\n")
    );
}

// ---------------------------------------------------------------------------
// v2 structural rules: positive, negative, and suppressed fixtures each.
// ---------------------------------------------------------------------------

#[test]
fn trusted_conjunction_denies_manufactured_or_regained_trust() {
    let (report, root) = audit_fixture(&[(
        "crates/shard/src/service.rs",
        r##"#![forbid(unsafe_code)]
fn merge(out: &mut Response, a: &Response, b: &Response) {
    out.trusted = true;
    out.trusted |= a.trusted;
    out.trusted = a.trusted || b.trusted;
    out.trusted &= a.trusted;
    out.trusted = a.trusted && b.trusted;
    out.trusted = false;
    // audit:allow(trusted-conjunction)
    out.trusted = true;
}
"##,
    )]);
    assert_eq!(
        rules_of(&report, "trusted-conjunction"),
        vec![
            "crates/shard/src/service.rs:3 deny",
            "crates/shard/src/service.rs:4 deny",
            "crates/shard/src/service.rs:5 deny",
        ]
    );
    assert_eq!(report.suppressed, 1);
    cleanup(root);
}

#[test]
fn trusted_conjunction_exempts_the_verification_module() {
    let (report, root) = audit_fixture(&[(
        "crates/core/src/engine.rs",
        r##"#![forbid(unsafe_code)]
fn verify(ok: bool) -> Response {
    Response { trusted: ok && tamper_log_clean() }
}
fn init() -> Response {
    Response { trusted: true }
}
"##,
    )]);
    assert!(rules_of(&report, "trusted-conjunction").is_empty());
    cleanup(root);
}

#[test]
fn atomic_ordering_denies_relaxed_watermark_only() {
    let (report, root) = audit_fixture(&[(
        "crates/core/src/service.rs",
        r##"#![forbid(unsafe_code)]
fn publish(s: &S, v: u64) {
    s.watermark.store(v, Ordering::Relaxed);
    s.watermark.store(v, Ordering::Release);
    s.query_count.fetch_add(1, Ordering::Relaxed);
    // audit:allow(atomic-ordering)
    s.watermark.store(v, Ordering::Relaxed);
}
"##,
    )]);
    assert_eq!(
        rules_of(&report, "atomic-ordering"),
        vec!["crates/core/src/service.rs:3 deny"]
    );
    assert_eq!(report.suppressed, 1);
    cleanup(root);
}

#[test]
fn guard_across_io_denies_live_guard_and_accepts_dropped_one() {
    let (report, root) = audit_fixture(&[(
        "crates/postings/src/list.rs",
        r##"#![forbid(unsafe_code)]
fn bad(s: &S) -> Result<Vec<u8>, E> {
    let cache = s.blocks.lock();
    if let Some(hit) = cache.get(&0) {
        return Ok(hit.clone());
    }
    let bytes = s.store_fs.read(f, 0, len)?;
    Ok(bytes)
}
fn good(s: &S) -> Result<Vec<u8>, E> {
    let cache = s.blocks.lock();
    let hit = cache.get(&0).cloned();
    drop(cache);
    let bytes = s.store_fs.read(f, 0, len)?;
    Ok(bytes)
}
fn allowed(s: &S) -> Result<Vec<u8>, E> {
    let cache = s.blocks.lock();
    // audit:allow(guard-across-io)
    let bytes = s.store_fs.read(f, 0, len)?;
    Ok(bytes)
}
"##,
    )]);
    assert_eq!(
        rules_of(&report, "guard-across-io"),
        vec!["crates/postings/src/list.rs:7 deny"]
    );
    assert_eq!(report.suppressed, 1);
    cleanup(root);
}

#[test]
fn taxonomy_coverage_denies_unconsumed_wire_variant_and_orphan_enum() {
    let (report, root) = audit_fixture(&[
        (
            "crates/server/src/wire.rs",
            r##"#![forbid(unsafe_code)]
pub enum WireErrorCode {
    Overloaded,
    Internal,
}
"##,
        ),
        (
            "crates/client/src/lib.rs",
            r##"#![forbid(unsafe_code)]
pub fn classify(c: WireErrorCode) -> bool {
    matches!(c, WireErrorCode::Overloaded)
}
"##,
        ),
        (
            "crates/core/src/error.rs",
            r##"#![forbid(unsafe_code)]
pub enum TksError {
    Worm(WormError),
}
"##,
        ),
        (
            "crates/worm/src/device.rs",
            r##"#![forbid(unsafe_code)]
pub enum WormError {
    Io(String),
}
"##,
        ),
        (
            "crates/worm/src/layout.rs",
            r##"#![forbid(unsafe_code)]
pub enum LayoutError {
    Io(String),
}
// audit:allow(taxonomy-coverage)
pub enum QuietError {
    Io(String),
}
"##,
        ),
    ]);
    assert_eq!(
        rules_of(&report, "taxonomy-coverage"),
        vec![
            "crates/server/src/wire.rs:4 deny",
            "crates/worm/src/layout.rs:2 deny",
        ]
    );
    assert_eq!(report.suppressed, 1);
    cleanup(root);
}

#[test]
fn sarif_output_snapshot_is_schema_shaped() {
    let (report, root) = audit_fixture(&[(
        "crates/worm/src/lib.rs",
        r##"#![forbid(unsafe_code)]
pub fn prod() {
    panic!("boom");
}
"##,
    )]);
    let sarif = xtask::sarif::render_sarif(&report);
    // Top-level SARIF 2.1.0 shape.
    assert!(sarif.starts_with(&format!(
        "{{\n  \"$schema\": \"{}\",\n  \"version\": \"2.1.0\",\n  \"runs\": [\n",
        xtask::sarif::SARIF_SCHEMA
    )));
    // The full rule registry rides along even for a one-finding run.
    for meta in xtask::rules::RULES {
        assert!(
            sarif.contains(&format!("\"id\": \"{}\"", meta.id)),
            "SARIF must list rule {}",
            meta.id
        );
    }
    // The finding becomes a located result.
    assert!(sarif.contains("\"ruleId\": \"no-panic-in-prod\""));
    assert!(sarif.contains("\"level\": \"error\""));
    assert!(sarif.contains("\"uri\": \"crates/worm/src/lib.rs\""));
    assert!(sarif.contains("\"startLine\": 3, \"startColumn\": 5"));
    // Balanced JSON (hand-rolled encoder sanity).
    assert_eq!(
        sarif.matches('{').count(),
        sarif.matches('}').count(),
        "unbalanced braces in SARIF output"
    );
    cleanup(root);
}
