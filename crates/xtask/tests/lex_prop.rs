//! Property test pinning the v2 lexer to the legacy stripper.
//!
//! The audit engine's rules run over [`xtask::lex::stripped`] — the
//! token-stream-derived "code view".  The v1 engine derived the same view
//! with a hand-rolled byte-at-a-time state machine, which survives as
//! [`xtask::scan::strip_legacy`] solely to serve as the oracle here: for
//! any soup of well-formed Rust fragments,
//! `stripped(src, &lex(src)) == strip_legacy(src)`.  This pins the port as
//! behaviour-preserving across every literal form the workspace uses
//! (strings, raw strings with hashes, byte strings, char escapes,
//! lifetimes, nested block comments).
//!
//! Fragments are self-contained (every literal terminated) because the two
//! implementations are allowed to disagree on *unterminated* garbage at
//! EOF — no rustc-accepted source ends inside a literal.

use proptest::prelude::*;
use xtask::lex;
use xtask::scan::strip_legacy;

/// Self-contained source fragments covering every token class the lexer
/// distinguishes.  Joined in arbitrary order they stay lexically valid.
const FRAGMENTS: &[&str] = &[
    "fn f(x: u8) -> u8 { x + 1 }\n",
    "// line comment with unwrap() and panic! inside\n",
    "/* block /* nested */ comment */ ",
    "let s = \"string with \\\" escape and // not a comment\"; ",
    "let r = r\"plain raw\"; ",
    "let r2 = r#\"raw with \"quotes\" inside\"#; ",
    "let r3 = r##\"nested \"# hash\"##; ",
    "let b = b\"bytes\\n\"; ",
    "let br = br#\"raw bytes\"#; ",
    "let c = 'x'; ",
    "let esc = '\\n'; ",
    "let uni = '\\u{10FFFF}'; ",
    "let wide = 'é'; ",
    "let q = '\"'; ",
    "let cont = \"first \\\n second\"; ",
    "fn g<'a>(s: &'a str) -> &'a str { s }\n",
    "let lt: &'static str = \"s\"; ",
    "let n = 0x1f + 1.25e3 as u64; ",
    "#[cfg(test)]\nmod tests { fn t() {} }\n",
    "struct S { field: Vec<u8> }\n",
    "impl S { fn m(&self) -> usize { self.field.len() } }\n",
    "\n    ",
    "let arr = [1, 2, 3]; let x = arr[0]; ",
    "macro_rules! m { () => {} }\n",
];

proptest! {
    /// For any fragment soup, the token-derived code view equals the
    /// legacy stripper's output byte for byte.
    #[test]
    fn stripped_matches_legacy_oracle(
        picks in proptest::collection::vec(0usize..FRAGMENTS.len(), 0..40),
    ) {
        let src: String = picks.iter().map(|&i| FRAGMENTS[i]).collect();
        let tokens = lex::lex(&src);
        let ours = lex::stripped(&src, &tokens);
        let oracle = strip_legacy(&src);
        prop_assert_eq!(&ours, &oracle, "source:\n{}", src);
        // The view never changes length or line structure.
        prop_assert_eq!(ours.len(), src.len());
        prop_assert_eq!(ours.lines().count(), src.lines().count());
    }

    /// Token spans tile the source: in-bounds, ordered, non-overlapping.
    #[test]
    fn token_spans_are_ordered_and_in_bounds(
        picks in proptest::collection::vec(0usize..FRAGMENTS.len(), 0..30),
    ) {
        let src: String = picks.iter().map(|&i| FRAGMENTS[i]).collect();
        let tokens = lex::lex(&src);
        let mut prev_end = 0usize;
        for t in &tokens {
            prop_assert!(t.start >= prev_end, "overlapping tokens in:\n{}", src);
            prop_assert!(t.end <= src.len());
            prop_assert!(t.start < t.end);
            prev_end = t.end;
        }
    }
}

/// Self-audit: the two strippers agree on every real source file of this
/// workspace — the corpus the engine actually runs on, including the
/// engine's own sources (which are full of adversarial-looking string
/// literals about panics, unsafe, and overwrites).
#[test]
fn strippers_agree_on_the_whole_workspace() {
    let root = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("workspace root")
        .to_path_buf();
    let mut checked = 0usize;
    for dir in ["crates", "examples", "tests"] {
        let d = root.join(dir);
        if !d.is_dir() {
            continue;
        }
        for path in xtask::scan::walk_rs_files(&d).expect("walk") {
            let src = std::fs::read_to_string(&path).expect("read source");
            let tokens = lex::lex(&src);
            assert_eq!(
                lex::stripped(&src, &tokens),
                strip_legacy(&src),
                "strippers disagree on {}",
                path.display()
            );
            checked += 1;
        }
    }
    assert!(
        checked >= 50,
        "expected a real corpus, found {checked} files"
    );
}
