//! Epoch-based indexing with learned statistics (paper §3.3).
//!
//! "One possible approach is to divide time into epochs and maintain a
//! separate index for the documents inserted in each epoch.  The choice of
//! posting lists to merge in any particular epoch can be determined by the
//! statistics collected during the previous epoch.  Queries must be
//! answered by scanning the indexes of all epochs. … For [time-restricted]
//! queries, one only needs to consider those indexes whose epochs overlap
//! with the time interval specified in the query."
//!
//! [`EpochManager`] maintains one [`SearchEngine`] per epoch over a fixed
//! term-ID vocabulary (the synthetic-workload setting in which the paper
//! evaluates learning, Figures 3(f)–3(g)).  When an epoch fills, the next
//! epoch's merge assignment keeps the previously-hottest terms unmerged —
//! ranked by observed query frequency when query statistics exist, else by
//! observed document frequency.

use crate::engine::{EngineConfig, SearchEngine, SearchError, SearchHit};
use crate::merge::MergeAssignment;
use tks_postings::{DocId, TermId, Timestamp};

/// Epoch-manager configuration.
#[derive(Debug, Clone)]
pub struct EpochConfig {
    /// Documents per epoch before rolling over.
    pub docs_per_epoch: u64,
    /// Fixed vocabulary size (term IDs must stay below this).
    pub vocab_size: u32,
    /// Physical lists per epoch index (`M` = cache blocks).
    pub num_lists: u32,
    /// How many of the previous epoch's hottest terms stay unmerged.
    pub unmerged_terms: usize,
    /// Prefer query-frequency ranking (Figure 3(f)) over document-
    /// frequency ranking (Figure 3(g)) when query statistics exist.
    pub rank_by_query_freq: bool,
    /// Candidate jump-index geometry for *adaptive* per-epoch decisions
    /// (paper §4.5: "One can use the epoch scheme … to learn the query
    /// pattern in one epoch and use it to decide whether to include a
    /// jump index for the next epoch").  When set, each new epoch enables
    /// the jump index iff the previous epoch's workload was dominated by
    /// many-keyword conjunctive queries; when `None`, the template's
    /// `engine.jump` is used unconditionally.
    pub adaptive_jump: Option<tks_jump::JumpConfig>,
    /// Mean conjunctive keyword count above which the jump index pays off
    /// (the paper's crossover is between three and four keywords).
    pub jump_keyword_threshold: f64,
    /// Template for each epoch's engine (its `assignment` is replaced).
    pub engine: EngineConfig,
}

impl Default for EpochConfig {
    fn default() -> Self {
        Self {
            docs_per_epoch: 1_000,
            vocab_size: 10_000,
            num_lists: 64,
            unmerged_terms: 8,
            rank_by_query_freq: true,
            adaptive_jump: None,
            jump_keyword_threshold: 3.5,
            engine: EngineConfig {
                store_documents: false,
                ..EngineConfig::default()
            },
        }
    }
}

#[derive(Debug)]
struct Epoch {
    engine: SearchEngine,
    /// Global ID of this epoch's first document.
    first_doc: u64,
    start_ts: Timestamp,
    end_ts: Timestamp,
}

/// Multi-epoch trustworthy index (see module docs).
#[derive(Debug)]
pub struct EpochManager {
    config: EpochConfig,
    epochs: Vec<Epoch>,
    total_docs: u64,
    /// Per-term document frequency observed in the *current* epoch.
    doc_counts: Vec<u64>,
    /// Per-term query frequency observed in the *current* epoch.
    query_counts: Vec<u64>,
    /// Statistics frozen from the previous epoch, used for the current
    /// epoch's merge assignment.
    prev_doc_counts: Option<Vec<u64>>,
    prev_query_counts: Option<Vec<u64>>,
    /// Query-shape statistics of the *current* epoch, for the adaptive
    /// jump-index decision: (disjunctive queries, conjunctive queries,
    /// total conjunctive keywords).
    query_shape: (u64, u64, u64),
    prev_query_shape: Option<(u64, u64, u64)>,
}

impl EpochManager {
    /// Create an empty manager; the first epoch opens on first insert.
    pub fn new(config: EpochConfig) -> Self {
        let v = config.vocab_size as usize;
        Self {
            config,
            epochs: Vec::new(),
            total_docs: 0,
            doc_counts: vec![0; v],
            query_counts: vec![0; v],
            prev_doc_counts: None,
            prev_query_counts: None,
            query_shape: (0, 0, 0),
            prev_query_shape: None,
        }
    }

    /// Number of epochs opened so far.
    pub fn num_epochs(&self) -> usize {
        self.epochs.len()
    }

    /// Total committed documents across epochs.
    pub fn num_docs(&self) -> u64 {
        self.total_docs
    }

    /// The merge assignment the *current* epoch runs with (diagnostics).
    pub fn current_assignment(&self) -> Option<&MergeAssignment> {
        self.epochs.last().map(|e| &e.engine.config().assignment)
    }

    /// Decoded-block cache counters summed across every epoch's engine —
    /// a cross-epoch query touches each epoch's store, so the aggregate is
    /// the number the whole read path sees.
    pub fn decoded_cache_stats(&self) -> tks_postings::DecodedCacheStats {
        let mut total = tks_postings::DecodedCacheStats::default();
        for e in &self.epochs {
            let s = e.engine.decoded_cache_stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.invalidations += s.invalidations;
            total.resident += s.resident;
        }
        total
    }

    fn next_assignment(&self) -> MergeAssignment {
        let ranked_source = if self.config.rank_by_query_freq {
            self.prev_query_counts
                .as_ref()
                .or(self.prev_doc_counts.as_ref())
        } else {
            self.prev_doc_counts.as_ref()
        };
        match ranked_source {
            Some(counts) if self.config.unmerged_terms > 0 => {
                let mut ranked: Vec<TermId> = (0..self.config.vocab_size).map(TermId).collect();
                ranked.sort_by_key(|t| std::cmp::Reverse(counts[t.0 as usize]));
                MergeAssignment::popular_unmerged(
                    &ranked,
                    self.config.unmerged_terms,
                    self.config.num_lists,
                    self.config.vocab_size,
                )
            }
            _ => MergeAssignment::uniform(self.config.num_lists),
        }
    }

    /// The §4.5 decision: enable the jump index when the learned workload
    /// is dominated by many-keyword conjunctive queries.
    fn next_jump(&self) -> Option<tks_jump::JumpConfig> {
        let Some(candidate) = self.config.adaptive_jump else {
            return self.config.engine.jump;
        };
        match self.prev_query_shape {
            Some((disj, conj, conj_kw)) if conj > 0 => {
                let conj_dominates = conj >= disj;
                let avg_kw = conj_kw as f64 / conj as f64;
                (conj_dominates && avg_kw >= self.config.jump_keyword_threshold)
                    .then_some(candidate)
            }
            // No learned statistics yet: start conservative (no index),
            // as the paper's default for disjunctive-or-short workloads.
            _ => None,
        }
    }

    fn roll_epoch(&mut self, ts: Timestamp) -> Result<(), SearchError> {
        // Freeze the closing epoch's statistics for the next one.
        if !self.epochs.is_empty() {
            self.prev_doc_counts = Some(std::mem::replace(
                &mut self.doc_counts,
                vec![0; self.config.vocab_size as usize],
            ));
            self.prev_query_counts = Some(std::mem::replace(
                &mut self.query_counts,
                vec![0; self.config.vocab_size as usize],
            ));
            self.prev_query_shape = Some(std::mem::take(&mut self.query_shape));
        }
        let assignment = self.next_assignment();
        let jump = self.next_jump();
        let engine = SearchEngine::new(EngineConfig {
            assignment,
            jump,
            ..self.config.engine.clone()
        })?;
        self.epochs.push(Epoch {
            engine,
            first_doc: self.total_docs,
            start_ts: ts,
            end_ts: ts,
        });
        Ok(())
    }

    /// Whether the current epoch runs with a jump index (diagnostics).
    pub fn current_jump_enabled(&self) -> Option<bool> {
        self.epochs.last().map(|e| e.engine.config().jump.is_some())
    }

    /// Commit a document; returns its *global* document ID.
    pub fn add_document_terms(
        &mut self,
        terms: &[(TermId, u32)],
        ts: Timestamp,
    ) -> Result<DocId, SearchError> {
        let needs_new = match self.epochs.last() {
            None => true,
            Some(e) => e.engine.num_docs() >= self.config.docs_per_epoch,
        };
        if needs_new {
            self.roll_epoch(ts)?;
        }
        let Some(epoch) = self.epochs.last_mut() else {
            return Err(SearchError::Internal("no epoch open after roll".into()));
        };
        epoch.engine.add_document_terms(terms, ts, None)?;
        epoch.end_ts = ts;
        for &(t, _) in terms {
            self.doc_counts[t.0 as usize] += 1;
        }
        self.total_docs += 1;
        Ok(DocId(self.total_docs - 1))
    }

    fn record_query(&mut self, terms: &[TermId]) {
        for &t in terms {
            if let Some(c) = self.query_counts.get_mut(t.0 as usize) {
                *c += 1;
            }
        }
    }

    /// Ranked disjunctive search across *all* epochs ("queries must be
    /// answered by scanning the indexes of all epochs").
    pub fn search_terms(&mut self, terms: &[TermId], top_k: usize) -> Vec<SearchHit> {
        self.record_query(terms);
        self.query_shape.0 += 1;
        let mut hits: Vec<SearchHit> = Vec::new();
        for e in &self.epochs {
            let epoch_hits = e
                .engine
                .execute(&crate::query::Query::disjunctive(terms, top_k))
                .map(|r| r.hits)
                .unwrap_or_default();
            for h in epoch_hits {
                hits.push(SearchHit {
                    doc: DocId(e.first_doc + h.doc.0),
                    score: h.score,
                });
            }
        }
        hits.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.doc.cmp(&b.doc))
        });
        hits.truncate(top_k);
        hits
    }

    /// Conjunctive search across all epochs (per-epoch intersections,
    /// concatenated in global doc order).
    pub fn conjunctive_terms(&mut self, terms: &[TermId]) -> Result<Vec<DocId>, SearchError> {
        self.record_query(terms);
        self.query_shape.1 += 1;
        self.query_shape.2 += terms.len() as u64;
        let mut out = Vec::new();
        for e in &self.epochs {
            let (docs, _) = e.engine.conjunctive_terms(terms)?;
            out.extend(docs.into_iter().map(|d| DocId(e.first_doc + d.0)));
        }
        Ok(out)
    }

    /// Conjunctive search restricted to a commit-time range: only epochs
    /// whose span overlaps the range are consulted — the §3.3 payoff.
    /// Returns the matches and the number of epochs actually scanned.
    pub fn conjunctive_in_range(
        &mut self,
        terms: &[TermId],
        from: Timestamp,
        to: Timestamp,
    ) -> Result<(Vec<DocId>, usize), SearchError> {
        self.record_query(terms);
        self.query_shape.1 += 1;
        self.query_shape.2 += terms.len() as u64;
        let mut out = Vec::new();
        let mut scanned = 0;
        for e in &self.epochs {
            if e.end_ts < from || e.start_ts > to {
                continue; // epoch disjoint from the query interval
            }
            scanned += 1;
            let (docs, _) = e.engine.conjunctive_terms(terms)?;
            for d in docs {
                let global = DocId(e.first_doc + d.0);
                let ts = e.engine.document_timestamp(d).ok_or_else(|| {
                    SearchError::Internal(format!("epoch-local {d} has no timestamp"))
                })?;
                if ts >= from && ts <= to {
                    out.push(global);
                }
            }
        }
        Ok((out, scanned))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(docs_per_epoch: u64) -> EpochConfig {
        EpochConfig {
            docs_per_epoch,
            vocab_size: 100,
            num_lists: 8,
            unmerged_terms: 2,
            ..Default::default()
        }
    }

    fn doc(terms: &[u32]) -> Vec<(TermId, u32)> {
        let mut v: Vec<(TermId, u32)> = terms.iter().map(|&t| (TermId(t), 1)).collect();
        v.sort_unstable_by_key(|&(t, _)| t);
        v
    }

    #[test]
    fn epochs_roll_at_capacity() {
        let mut m = EpochManager::new(config(3));
        for i in 0..10u64 {
            m.add_document_terms(&doc(&[1, 2, 3]), Timestamp(i))
                .unwrap();
        }
        assert_eq!(m.num_epochs(), 4); // 3+3+3+1
        assert_eq!(m.num_docs(), 10);
    }

    #[test]
    fn first_epoch_is_uniform_then_learned() {
        let mut m = EpochManager::new(config(3));
        m.add_document_terms(&doc(&[7, 8]), Timestamp(0)).unwrap();
        assert!(matches!(
            m.current_assignment(),
            Some(MergeAssignment::Uniform { .. })
        ));
        // Make term 7 clearly hottest, both in docs and queries.
        m.add_document_terms(&doc(&[7]), Timestamp(1)).unwrap();
        m.search_terms(&[TermId(7)], 5);
        m.search_terms(&[TermId(7)], 5);
        m.add_document_terms(&doc(&[7, 9]), Timestamp(2)).unwrap();
        // Next insert rolls the epoch; the new assignment is learned.
        m.add_document_terms(&doc(&[1]), Timestamp(3)).unwrap();
        match m.current_assignment() {
            Some(MergeAssignment::Table { list_of, .. }) => {
                // Term 7 (hottest by query freq) holds private list 0.
                assert_eq!(list_of[7], 0);
            }
            other => panic!("expected learned Table assignment, got {other:?}"),
        }
    }

    #[test]
    fn search_spans_epochs_with_global_ids() {
        let mut m = EpochManager::new(config(2));
        m.add_document_terms(&doc(&[5]), Timestamp(0)).unwrap(); // global 0
        m.add_document_terms(&doc(&[6]), Timestamp(1)).unwrap(); // global 1
        m.add_document_terms(&doc(&[5, 6]), Timestamp(2)).unwrap(); // global 2, epoch 2
        let hits = m.search_terms(&[TermId(5)], 10);
        let docs: Vec<u64> = hits.iter().map(|h| h.doc.0).collect();
        assert!(docs.contains(&0) && docs.contains(&2) && !docs.contains(&1));
        let conj = m.conjunctive_terms(&[TermId(5), TermId(6)]).unwrap();
        assert_eq!(conj, vec![DocId(2)]);
    }

    #[test]
    fn time_range_skips_disjoint_epochs() {
        let mut m = EpochManager::new(config(2));
        for i in 0..8u64 {
            m.add_document_terms(&doc(&[3]), Timestamp(i * 100))
                .unwrap();
        }
        assert_eq!(m.num_epochs(), 4);
        // Range covering only epoch 2 (timestamps 400, 500).
        let (docs, scanned) = m
            .conjunctive_in_range(&[TermId(3)], Timestamp(400), Timestamp(500))
            .unwrap();
        assert_eq!(docs, vec![DocId(4), DocId(5)]);
        assert_eq!(scanned, 1, "only the overlapping epoch is consulted");
    }

    #[test]
    fn adaptive_jump_follows_query_shape() {
        let jump_cfg = tks_jump::JumpConfig::new(2048, 4, 1 << 32);
        let mut m = EpochManager::new(EpochConfig {
            adaptive_jump: Some(jump_cfg),
            jump_keyword_threshold: 3.5,
            ..config(2)
        });
        // Epoch 1: no statistics yet → conservative, no jump index.
        m.add_document_terms(&doc(&[1, 2, 3, 4, 5]), Timestamp(0))
            .unwrap();
        assert_eq!(m.current_jump_enabled(), Some(false));
        // Workload: many-keyword conjunctive queries.
        for _ in 0..10 {
            m.conjunctive_terms(&[TermId(1), TermId(2), TermId(3), TermId(4), TermId(5)])
                .unwrap();
        }
        m.add_document_terms(&doc(&[1, 2]), Timestamp(1)).unwrap();
        // Epoch 2 learns the pattern and enables the jump index.
        m.add_document_terms(&doc(&[1]), Timestamp(2)).unwrap();
        assert_eq!(m.current_jump_enabled(), Some(true));
        // Workload flips to disjunctive-dominated…
        for _ in 0..20 {
            m.search_terms(&[TermId(1)], 5);
        }
        m.add_document_terms(&doc(&[2]), Timestamp(3)).unwrap();
        // …so epoch 3 drops the index again.
        m.add_document_terms(&doc(&[3]), Timestamp(4)).unwrap();
        assert_eq!(m.current_jump_enabled(), Some(false));
    }

    #[test]
    fn non_adaptive_uses_template_jump() {
        let jump_cfg = tks_jump::JumpConfig::new(2048, 4, 1 << 32);
        let mut m = EpochManager::new(EpochConfig {
            engine: EngineConfig {
                jump: Some(jump_cfg),
                store_documents: false,
                ..EngineConfig::default()
            },
            ..config(2)
        });
        m.add_document_terms(&doc(&[1]), Timestamp(0)).unwrap();
        assert_eq!(m.current_jump_enabled(), Some(true));
    }

    #[test]
    fn rank_by_doc_freq_variant() {
        let mut m = EpochManager::new(EpochConfig {
            rank_by_query_freq: false,
            ..config(2)
        });
        m.add_document_terms(&doc(&[9, 1]), Timestamp(0)).unwrap();
        m.add_document_terms(&doc(&[9]), Timestamp(1)).unwrap();
        m.add_document_terms(&doc(&[0]), Timestamp(2)).unwrap(); // rolls
        match m.current_assignment() {
            Some(MergeAssignment::Table { list_of, .. }) => assert_eq!(list_of[9], 0),
            other => panic!("expected Table, got {other:?}"),
        }
    }
}
