//! Simulation drivers for the paper's experiments.
//!
//! These reproduce the methodology of §3.4/§4.5: corpus-scale insertion
//! simulations run against the storage-cache simulator with metadata-only
//! state (so a million-document run needs O(cache + vocabulary) memory),
//! and query simulations run against real index structures counting block
//! reads.  The `tks-bench` crate wraps these in one binary per figure.

pub mod insertion;
pub mod queries;

pub use insertion::{insertion_ios, jump_insertion_ios, InsertionSimResult};
pub use queries::{btree_conjunctive_cost, build_engine, build_term_btrees, scan_merge_blocks};
