//! Insertion-cost simulations (Figures 2 and 8(b)).
//!
//! Figure 2: "we simulated the incremental insertion of one million
//! documents … the tail blocks of as many posting lists as possible are
//! cached in the storage server's (initially dirty) cache" — per-term
//! (unmerged) lists, LRU tail caching, I/Os counted per the
//! [`StorageCache`] policy.
//!
//! Figure 8(b): the same insertion stream against *merged* lists stored as
//! block jump indexes; appending a document touches the tail block of each
//! of its terms' lists plus the interior blocks whose jump pointers get
//! set (the paper's §4.5 memo optimisation means *following* pointers is
//! free).
//!
//! Both simulations are metadata-only with respect to posting bytes: list
//! state is a posting count per list (Figure 2) or an in-memory jump-index
//! skeleton (Figure 8(b)); the storage cache tracks block identities.

use crate::merge::MergeAssignment;
use tks_corpus::DocumentGenerator;
use tks_jump::block::{BlockJumpIndex, Touch};
use tks_jump::JumpConfig;
use tks_postings::POSTING_SIZE;
use tks_worm::{AccessKind, BlockId, CacheConfig, IoStats, StorageCache};

/// Outcome of an insertion simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InsertionSimResult {
    /// Documents inserted.
    pub docs: u64,
    /// Postings appended (Σ distinct terms per document).
    pub postings: u64,
    /// Random-I/O counters from the cache simulator.
    pub stats: IoStats,
}

impl InsertionSimResult {
    /// The paper's y-axis: random I/Os per inserted document.
    pub fn ios_per_doc(&self) -> f64 {
        self.stats.total_ios() as f64 / self.docs.max(1) as f64
    }
}

/// Synthetic device-wide block ID for block `idx` of list `list`.
fn list_block(list: u32, idx: u64) -> BlockId {
    BlockId(((list as u64) << 32) | idx)
}

/// Simulate inserting documents `0..num_docs` into posting lists under
/// `assignment`, with an LRU storage cache of `cache_bytes` and
/// `block_size`-byte blocks.  With [`MergeAssignment::unmerged`] this is
/// exactly the Figure 2 experiment; with a uniform assignment it is the
/// merged-list update path of §3.
pub fn insertion_ios(
    gen: &DocumentGenerator,
    assignment: &MergeAssignment,
    num_docs: u64,
    cache_bytes: u64,
    block_size: u32,
) -> InsertionSimResult {
    assert!((block_size as usize).is_multiple_of(POSTING_SIZE));
    let mut cache = StorageCache::new(CacheConfig::new(cache_bytes, block_size));
    let mut list_postings = vec![0u64; assignment.num_lists() as usize];
    let bs = block_size as u64;
    let per_block = bs / POSTING_SIZE as u64;
    let mut postings = 0u64;
    for doc in gen.docs(0..num_docs) {
        for &(term, _tf) in &doc.terms {
            let l = assignment.list_of(term).0;
            let n = list_postings[l as usize];
            let idx = n / per_block;
            let off = n % per_block;
            cache.access(
                list_block(l, idx),
                AccessKind::Append {
                    was_empty: off == 0,
                    fills: off + 1 == per_block,
                },
            );
            list_postings[l as usize] = n + 1;
            postings += 1;
        }
    }
    InsertionSimResult {
        docs: num_docs,
        postings,
        stats: cache.stats(),
    }
}

/// Synthetic block ID for jump-index chain block `idx` of list `list`
/// (disjoint namespace from [`list_block`]).
fn jump_block(list: u32, idx: u32) -> BlockId {
    BlockId((1 << 63) | ((list as u64) << 32) | idx as u64)
}

/// Figure 8(b): insertion I/O with merged lists stored as block jump
/// indexes.  Each posting appends to its list's tail block; setting a jump
/// pointer is a read-modify-write of an interior block.  Returns the
/// result plus the total jump pointers set.
pub fn jump_insertion_ios(
    gen: &DocumentGenerator,
    assignment: &MergeAssignment,
    jump: JumpConfig,
    num_docs: u64,
    cache_bytes: u64,
) -> Result<(InsertionSimResult, u64), tks_jump::JumpError> {
    let mut cache = StorageCache::new(CacheConfig::new(cache_bytes, jump.block_size as u32));
    let mut lists: Vec<BlockJumpIndex<u64>> = (0..assignment.num_lists())
        .map(|_| BlockJumpIndex::new(jump))
        .collect();
    let mut postings = 0u64;
    for doc in gen.docs(0..num_docs) {
        for &(term, _tf) in &doc.terms {
            let l = assignment.list_of(term).0;
            let cache = &mut cache;
            lists[l as usize].insert_with(doc.id.0, |t| match t {
                Touch::Append {
                    block,
                    was_empty,
                    fills,
                } => {
                    cache.access(
                        jump_block(l, block),
                        AccessKind::Append { was_empty, fills },
                    );
                }
                Touch::PointerSet { block, .. } => {
                    cache.access(jump_block(l, block), AccessKind::Update);
                }
            })?;
            postings += 1;
        }
    }
    let pointers_set = lists.iter().map(|x| x.stats().pointers_set).sum();
    Ok((
        InsertionSimResult {
            docs: num_docs,
            postings,
            stats: cache.stats(),
        },
        pointers_set,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tks_corpus::CorpusConfig;

    fn gen() -> DocumentGenerator {
        DocumentGenerator::new(CorpusConfig {
            num_docs: 300,
            vocab_size: 3_000,
            mean_distinct_terms: 30,
            ..Default::default()
        })
    }

    #[test]
    fn bigger_cache_means_fewer_ios_unmerged() {
        let g = gen();
        let a = MergeAssignment::unmerged(3_000);
        let small = insertion_ios(&g, &a, 300, 16 * 8192, 8192);
        let big = insertion_ios(&g, &a, 300, 2_048 * 8192, 8192);
        assert!(small.ios_per_doc() > big.ios_per_doc());
        assert_eq!(small.postings, big.postings, "same corpus stream");
    }

    #[test]
    fn merging_to_cache_size_gets_near_one_io_per_doc() {
        // The §3 headline: lists merged to the number of cache blocks make
        // every append a hit; I/O ≈ postings/block-capacity per doc.
        let g = gen();
        let m = 64u32;
        let merged = insertion_ios(&g, &MergeAssignment::uniform(m), 300, m as u64 * 8192, 8192);
        // 30 postings/doc, 1024 postings per 8K block → ~0.03 write I/Os
        // per doc from block fills; anything below 0.5 shows the effect.
        assert!(
            merged.ios_per_doc() < 0.5,
            "merged insertion should be nearly free, got {}",
            merged.ios_per_doc()
        );
        let unmerged = insertion_ios(
            &g,
            &MergeAssignment::unmerged(3_000),
            300,
            m as u64 * 8192,
            8192,
        );
        assert!(unmerged.ios_per_doc() > merged.ios_per_doc() * 10.0);
    }

    #[test]
    fn jump_insertion_costs_more_than_plain_but_converges() {
        let g = gen();
        let m = 64u32;
        // Small blocks (p = 19 with B = 32 over N = 2³²) so each list
        // spans several blocks and pointers actually get set.
        let jump = JumpConfig::new(1024, 32, 1 << 32);
        let assignment = MergeAssignment::uniform(m);
        let plain = insertion_ios(&g, &assignment, 300, m as u64 * 1024, 1024);
        let (small_cache, ptrs) =
            jump_insertion_ios(&g, &assignment, jump, 300, m as u64 * 1024).unwrap();
        let (big_cache, _) =
            jump_insertion_ios(&g, &assignment, jump, 300, 8 * m as u64 * 1024).unwrap();
        assert!(ptrs > 0, "multi-block lists must set pointers");
        // Jump maintenance adds I/O at tight cache sizes…
        assert!(small_cache.stats.total_ios() >= plain.stats.total_ios());
        // …and a larger cache absorbs (most of) it.
        assert!(big_cache.stats.total_ios() <= small_cache.stats.total_ios());
    }

    #[test]
    fn deterministic_replay() {
        let g = gen();
        let a = MergeAssignment::uniform(32);
        let r1 = insertion_ios(&g, &a, 200, 1 << 20, 8192);
        let r2 = insertion_ios(&g, &a, 200, 1 << 20, 8192);
        assert_eq!(r1, r2);
    }
}
