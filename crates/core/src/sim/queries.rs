//! Query-cost simulation helpers (Figures 4 and 8(c)).
//!
//! Figure 8(c) compares, by blocks read per conjunctive query:
//!
//! * zigzag joins over merged lists **with jump indexes** (B ∈ {2,32,64});
//! * sequential **scan-merge** joins over the same merged lists (no jump
//!   index) — the "no jump index" denominator of the speedup;
//! * the ideal **unmerged + per-term B+ tree** baseline.
//!
//! The first two run on a real [`SearchEngine`]; the baseline builds
//! actual [`AppendOnlyBPlusTree`]s for the queried terms.

use crate::engine::SearchError;
use crate::engine::{EngineConfig, SearchEngine};
use crate::zigzag::{zigzag_join_multi, BTreeCursor, DocCursor};
use std::collections::{HashMap, HashSet};
use tks_btree::{AppendOnlyBPlusTree, BTreeConfig};
use tks_corpus::DocumentGenerator;
use tks_postings::{DocId, TermId};

/// Ingest documents `0..num_docs` from the generator into a fresh engine
/// with the given configuration (document text is not stored).
pub fn build_engine(
    gen: &DocumentGenerator,
    num_docs: u64,
    mut config: EngineConfig,
) -> Result<SearchEngine, SearchError> {
    config.store_documents = false;
    let mut engine = SearchEngine::new(config)?;
    for doc in gen.docs(0..num_docs) {
        engine.add_document_terms(&doc.terms, doc.timestamp, None)?;
    }
    Ok(engine)
}

/// Blocks a sequential scan-merge join reads: every block of every
/// distinct merged list the query's terms map to.
pub fn scan_merge_blocks(engine: &SearchEngine, terms: &[TermId]) -> u64 {
    let mut lists: Vec<u32> = terms
        .iter()
        .map(|&t| engine.config().assignment.list_of(t).0)
        .collect();
    lists.sort_unstable();
    lists.dedup();
    lists
        .into_iter()
        .map(|l| {
            engine
                .list_store()
                .num_blocks(tks_postings::ListId(l))
                .unwrap_or(0)
        })
        .sum()
}

/// Build one append-only B+ tree per term in `needed`, from a single scan
/// of the corpus — the paper's ideal unmerged baseline.
pub fn build_term_btrees(
    gen: &DocumentGenerator,
    num_docs: u64,
    needed: &HashSet<TermId>,
    cfg: BTreeConfig,
) -> Result<HashMap<TermId, AppendOnlyBPlusTree>, SearchError> {
    let mut trees: HashMap<TermId, AppendOnlyBPlusTree> = needed
        .iter()
        .map(|&t| (t, AppendOnlyBPlusTree::new(cfg)))
        .collect();
    for doc in gen.docs(0..num_docs) {
        for &(t, _) in &doc.terms {
            if let Some(tree) = trees.get_mut(&t) {
                tree.insert(doc.id.0).map_err(|k| {
                    SearchError::Internal(format!(
                        "generator emitted non-increasing doc id {k} for {t}"
                    ))
                })?;
            }
        }
    }
    Ok(trees)
}

/// Conjunctive query over per-term B+ trees via zigzag join; returns the
/// matches and distinct blocks read, or `None` if a term has no tree.
pub fn btree_conjunctive_cost(
    trees: &HashMap<TermId, AppendOnlyBPlusTree>,
    terms: &[TermId],
) -> Option<(Vec<DocId>, u64)> {
    let mut cursors: Vec<Box<dyn DocCursor + '_>> = Vec::with_capacity(terms.len());
    for t in terms {
        cursors.push(Box::new(BTreeCursor::new(trees.get(t)?)));
    }
    Some(zigzag_join_multi(cursors))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge::MergeAssignment;
    use tks_corpus::CorpusConfig;
    use tks_jump::JumpConfig;

    fn gen() -> DocumentGenerator {
        DocumentGenerator::new(CorpusConfig {
            num_docs: 400,
            vocab_size: 800,
            mean_distinct_terms: 25,
            ..Default::default()
        })
    }

    fn reference_conjunction(
        gen: &DocumentGenerator,
        num_docs: u64,
        terms: &[TermId],
    ) -> Vec<DocId> {
        gen.docs(0..num_docs)
            .filter(|d| {
                terms
                    .iter()
                    .all(|t| d.terms.iter().any(|&(dt, _)| dt == *t))
            })
            .map(|d| d.id)
            .collect()
    }

    #[test]
    fn engine_paths_and_btree_baseline_agree() {
        let g = gen();
        let terms = vec![TermId(0), TermId(1), TermId(3)];
        let expect = reference_conjunction(&g, 400, &terms);
        assert!(!expect.is_empty(), "head terms must co-occur at this scale");

        let merged = MergeAssignment::uniform(16);
        let jump_cfg = JumpConfig::new(2048, 4, 1 << 32);
        let with_jump = build_engine(
            &g,
            400,
            EngineConfig {
                assignment: merged.clone(),
                jump: Some(jump_cfg),
                ..Default::default()
            },
        )
        .unwrap();
        let without = build_engine(
            &g,
            400,
            EngineConfig {
                assignment: merged,
                jump: None,
                ..Default::default()
            },
        )
        .unwrap();
        let (a, jump_blocks) = with_jump.conjunctive_terms(&terms).unwrap();
        let (b, scan_blocks) = without.conjunctive_terms(&terms).unwrap();
        assert_eq!(a, expect);
        assert_eq!(b, expect);
        assert_eq!(scan_blocks, scan_merge_blocks(&without, &terms));
        assert!(jump_blocks > 0 && scan_blocks > 0);

        let needed: HashSet<TermId> = terms.iter().copied().collect();
        let trees = build_term_btrees(&g, 400, &needed, BTreeConfig::tiny(32, 32)).unwrap();
        let (c, btree_blocks) = btree_conjunctive_cost(&trees, &terms).unwrap();
        assert_eq!(c, expect);
        assert!(btree_blocks > 0);
    }

    #[test]
    fn missing_term_tree_is_none() {
        let trees = HashMap::new();
        assert!(btree_conjunctive_cost(&trees, &[TermId(9)]).is_none());
    }
}
