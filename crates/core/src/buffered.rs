//! The *rejected* baseline: buffered index maintenance (paper §2.3).
//!
//! Classical inverted-index engines amortise random I/O by buffering new
//! postings in memory (or a disk log) and merging them into the on-disk
//! index in large batches — the in-place/re-build/re-merge strategies of
//! Cutting & Pedersen, Tomasic et al., Lester et al., and the paper's own
//! reference engine.  The paper's point is that **no amount of buffering
//! is compatible with trustworthy retention**:
//!
//! > "Buffering creates a time lag … between when a document is created
//! > and when the index on WORM is updated.  For trustworthy indexing, we
//! > cannot leave such a gap between document commit and index update —
//! > Mala can get rid of an index entry while it is still in the buffer,
//! > or crash the application and delete the recovery logs of uncommitted
//! > posting entries."
//!
//! [`BufferedIndex`] implements that baseline faithfully: postings
//! accumulate in volatile memory and reach WORM only on [`flush`]
//! (automatic every `flush_every` documents).  Its adversary interface
//! exposes exactly the §2.3 attacks — scrubbing a buffered entry, and
//! crashing before flush — and the tests demonstrate that both *silently
//! succeed* here while being impossible against [`SearchEngine`]
//! (whose index entries are on WORM before `add_document` returns).
//!
//! The insertion-I/O upside of buffering is real and measurable — the
//! `buffering_really_is_cheaper_per_insert` test below counts the random
//! I/Os saved, and `tks-bench`'s `buffered_vs_realtime` Criterion group
//! compares CPU time (where, absent real disks, buffering's extra sort
//! actually *loses*; its entire advantage is the amortised random I/O).
//! This module is the honest version of the tradeoff the paper refuses.
//!
//! [`flush`]: BufferedIndex::flush
//! [`SearchEngine`]: crate::engine::SearchEngine

use crate::merge::MergeAssignment;
use tks_postings::list::{ListError, ListStore};
use tks_postings::{DocId, TermId};
use tks_worm::StorageCache;

/// A buffered (and therefore untrustworthy) inverted index over the same
/// WORM posting-list store the real engine uses.
#[derive(Debug)]
pub struct BufferedIndex {
    assignment: MergeAssignment,
    store: ListStore,
    /// Volatile buffer: postings not yet on WORM.
    buffer: Vec<(TermId, DocId, u32)>,
    flush_every: u64,
    docs_since_flush: u64,
    next_doc: DocId,
}

impl BufferedIndex {
    /// Create a buffered index that flushes every `flush_every` documents
    /// (the paper cites systems needing >100,000 buffered documents to
    /// reach 2 docs/sec).
    pub fn new(
        assignment: MergeAssignment,
        block_size: usize,
        flush_every: u64,
    ) -> Result<Self, ListError> {
        assert!(flush_every >= 1);
        let num_lists = assignment.num_lists() as usize;
        Ok(Self {
            assignment,
            store: ListStore::new(block_size, num_lists)?,
            buffer: Vec::new(),
            flush_every,
            docs_since_flush: 0,
            next_doc: DocId(0),
        })
    }

    /// Add a document's postings.  Returns its ID.  The postings sit in
    /// volatile memory until the next flush — the vulnerability window.
    pub fn add_document_terms(
        &mut self,
        terms: &[(TermId, u32)],
        cache: Option<&mut StorageCache>,
    ) -> Result<DocId, ListError> {
        let doc = self.next_doc;
        self.next_doc = doc.next();
        for &(t, tf) in terms {
            self.buffer.push((t, doc, tf));
        }
        self.docs_since_flush += 1;
        if self.docs_since_flush >= self.flush_every {
            self.flush(cache)?;
        }
        Ok(doc)
    }

    /// Merge the buffer into the WORM store (batched, sorted by list then
    /// doc — the amortisation that makes buffering fast).
    pub fn flush(&mut self, mut cache: Option<&mut StorageCache>) -> Result<(), ListError> {
        let mut batch = std::mem::take(&mut self.buffer);
        batch.sort_by_key(|&(t, d, _)| (self.assignment.list_of(t), d));
        for (t, d, tf) in batch {
            let list = self.assignment.list_of(t);
            // This module IS the rejected baseline: buffered maintenance
            // has no commit points, so there is no chain to feed; its
            // whole purpose is to demonstrate the attacks that
            // discipline prevents.
            // audit:allow(chain-append-discipline)
            self.store.append(list, t, d, tf, cache.as_deref_mut())?;
        }
        self.docs_since_flush = 0;
        Ok(())
    }

    /// Postings currently exposed to the adversary (buffered, volatile).
    pub fn buffered_postings(&self) -> usize {
        self.buffer.len()
    }

    /// Documents whose IDs the index has handed out.
    pub fn num_docs(&self) -> u64 {
        self.next_doc.0
    }

    /// The durable store (for queries and audits).
    pub fn store(&self) -> &ListStore {
        &self.store
    }

    /// Documents for `term` visible to a searcher: durable postings plus
    /// whatever the (honest) process still holds in its buffer.
    pub fn search_term(&self, term: TermId) -> Result<Vec<DocId>, ListError> {
        let list = self.assignment.list_of(term);
        let mut docs: Vec<DocId> = self
            .store
            .postings_for_term(list, term)?
            .map(|p| p.doc)
            .collect();
        docs.extend(
            self.buffer
                .iter()
                .filter(|&&(t, ..)| t == term)
                .map(|&(_, d, _)| d),
        );
        docs.sort_unstable();
        docs.dedup();
        Ok(docs)
    }

    // ------------------------------------------------------------------
    // The §2.3 attacks.  Both are ordinary memory operations for a
    // superuser — no WORM semantics protect the buffer.
    // ------------------------------------------------------------------

    /// Mala scrubs every buffered posting of `victim` ("Mala can get rid
    /// of an index entry while it is still in the buffer").  Returns how
    /// many entries she removed.  *Silently succeeds.*
    pub fn adversary_scrub_buffered(&mut self, victim: DocId) -> usize {
        let before = self.buffer.len();
        self.buffer.retain(|&(_, d, _)| d != victim);
        before - self.buffer.len()
    }

    /// Mala crashes the application and deletes the recovery logs ("or
    /// crash the application and delete the recovery logs of uncommitted
    /// posting entries").  Everything buffered is gone; only the durable
    /// store survives.
    pub fn adversary_crash(self) -> ListStore {
        // The buffer is dropped here — that *is* the attack.
        self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tks_postings::ListId;
    use tks_worm::{CacheConfig, IoStats};

    fn doc(terms: &[u32]) -> Vec<(TermId, u32)> {
        terms.iter().map(|&t| (TermId(t), 1)).collect()
    }

    #[test]
    fn buffered_index_works_when_unattacked() {
        let mut idx = BufferedIndex::new(MergeAssignment::uniform(4), 64, 3).unwrap();
        let d0 = idx.add_document_terms(&doc(&[1, 2]), None).unwrap();
        let d1 = idx.add_document_terms(&doc(&[1]), None).unwrap();
        assert_eq!(idx.search_term(TermId(1)).unwrap(), vec![d0, d1]);
        // Third doc triggers the flush.
        let d2 = idx.add_document_terms(&doc(&[1]), None).unwrap();
        assert_eq!(idx.buffered_postings(), 0);
        assert_eq!(idx.search_term(TermId(1)).unwrap(), vec![d0, d1, d2]);
    }

    #[test]
    fn scrub_attack_silently_hides_a_buffered_document() {
        let mut idx = BufferedIndex::new(MergeAssignment::uniform(4), 64, 100).unwrap();
        let _other = idx.add_document_terms(&doc(&[1]), None).unwrap();
        let victim = idx.add_document_terms(&doc(&[1, 2, 3]), None).unwrap();
        assert!(idx.search_term(TermId(2)).unwrap().contains(&victim));
        // The attack: ordinary memory writes, no tamper evidence anywhere.
        let scrubbed = idx.adversary_scrub_buffered(victim);
        assert_eq!(scrubbed, 3);
        idx.flush(None).unwrap();
        assert!(!idx.search_term(TermId(2)).unwrap().contains(&victim));
        // Nothing in the durable store betrays the scrub.
        for l in 0..4u32 {
            assert_eq!(idx.store().audit_monotonic(ListId(l)).unwrap(), None);
        }
    }

    #[test]
    fn crash_attack_loses_every_buffered_posting() {
        let mut idx = BufferedIndex::new(MergeAssignment::uniform(4), 64, 1_000).unwrap();
        for i in 0..50u32 {
            idx.add_document_terms(&doc(&[i % 7]), None).unwrap();
        }
        assert_eq!(idx.buffered_postings(), 50);
        let store = idx.adversary_crash();
        // The durable store is empty and — crucially — *consistent*: no
        // audit can tell that 50 documents were ever indexed.
        for l in 0..4u32 {
            assert_eq!(store.len(ListId(l)).unwrap(), 0);
            assert_eq!(store.audit_monotonic(ListId(l)).unwrap(), None);
        }
    }

    #[test]
    fn buffering_really_is_cheaper_per_insert() {
        // The honest tradeoff: batched flushes cost fewer I/Os than
        // per-document real-time appends at the same (tiny) cache — the
        // performance carrot the paper declines for trust reasons.
        let assignment = MergeAssignment::unmerged(512);
        let run = |flush_every: u64| -> IoStats {
            let mut cache = StorageCache::new(CacheConfig::new(4 * 64, 64));
            let mut idx = BufferedIndex::new(assignment.clone(), 64, flush_every).unwrap();
            for i in 0..200u32 {
                let terms: Vec<u32> = (0..8).map(|j| (i * 13 + j * 29) % 500).collect();
                let mut t = doc(&terms);
                t.sort_unstable_by_key(|&(t, _)| t);
                t.dedup_by_key(|&mut (t, _)| t);
                idx.add_document_terms(&t, Some(&mut cache)).unwrap();
            }
            idx.flush(Some(&mut cache)).unwrap();
            cache.stats()
        };
        let realtime = run(1);
        let buffered = run(100);
        assert!(
            buffered.total_ios() < realtime.total_ios(),
            "buffered {} vs realtime {}",
            buffered.total_ios(),
            realtime.total_ios()
        );
    }

    #[test]
    fn flush_preserves_per_list_monotonicity() {
        // Batch-sorted flushes never violate the store's invariants.
        let mut idx = BufferedIndex::new(MergeAssignment::uniform(2), 64, 7).unwrap();
        for i in 0..40u32 {
            idx.add_document_terms(&doc(&[i % 5, 5 + i % 3]), None)
                .unwrap();
        }
        idx.flush(None).unwrap();
        for l in 0..2u32 {
            assert_eq!(idx.store().audit_monotonic(ListId(l)).unwrap(), None);
        }
    }
}
