//! The workspace error taxonomy.
//!
//! Every fallible operation in the production crates returns a typed
//! error, and every such error converts into [`TksError`] via `From`, so
//! callers at any layer can hold one error type without losing the
//! structure underneath.  The design follows the paper's stance on
//! invariant violations: a failed check during a compliance lookup is
//! *evidence* to report to the investigator, never a reason to abort —
//! a crash mid-query is indistinguishable from a hidden record, so the
//! production crates contain no `panic!`/`unwrap`/`expect` outside test
//! code (enforced by `cargo xtask audit`, rule `no-panic-in-prod`).
//!
//! Layering (each layer's error converts into the one above):
//!
//! ```text
//! TksError (this module)
//! ├── SearchError        — engine, service, epoch layers (tks-core)
//! │   ├── WormError      — device/file-system faults (tks-worm)
//! │   ├── ListError      — posting-list store (tks-postings)
//! │   ├── JumpError      — jump indexes (tks-jump)
//! │   ├── TamperEvidence — violated trust invariants (tks-jump)
//! │   └── ConfigError    — rejected engine configurations
//! ├── CodecError         — posting/tag encodings (tks-postings)
//! ├── PositionError      — positional sidecar (tks-core)
//! ├── PersistError       — serialized WORM images (tks-worm)
//! └── ChainError         — commit-chain records (tks-worm)
//! ```

use crate::engine::{ConfigError, SearchError};
use crate::positions::PositionError;
use tks_jump::{JumpError, TamperEvidence};
use tks_postings::list::ListError;
use tks_postings::CodecError;
use tks_worm::{ChainError, PersistError, WormError};

/// Top of the workspace error taxonomy: any error a trustworthy-search
/// deployment can surface.
///
/// All production-crate error types convert in via `From`, so `?` works
/// from any layer:
///
/// ```
/// use tks_core::{EngineConfig, SearchEngine, TksError};
///
/// fn build() -> Result<SearchEngine, TksError> {
///     Ok(SearchEngine::new(EngineConfig::default())?)
/// }
/// assert!(build().is_ok());
/// ```
#[derive(Debug)]
pub enum TksError {
    /// Engine/query-layer failure (itself a taxonomy over the storage
    /// layers — see [`SearchError`]).
    Search(SearchError),
    /// Posting or tag-code encoding failure.
    Codec(CodecError),
    /// Positional-sidecar failure.
    Position(PositionError),
    /// Serialized WORM image failure.
    Persist(PersistError),
    /// Commit-chain record failure (encoding, decoding, or a link that
    /// does not extend the chain).
    Chain(ChainError),
}

impl std::fmt::Display for TksError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TksError::Search(e) => write!(f, "{e}"),
            TksError::Codec(e) => write!(f, "{e}"),
            TksError::Position(e) => write!(f, "{e}"),
            TksError::Persist(e) => write!(f, "{e}"),
            TksError::Chain(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TksError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TksError::Search(e) => Some(e),
            TksError::Codec(e) => Some(e),
            TksError::Position(e) => Some(e),
            TksError::Persist(e) => Some(e),
            TksError::Chain(e) => Some(e),
        }
    }
}

impl From<SearchError> for TksError {
    fn from(e: SearchError) -> Self {
        TksError::Search(e)
    }
}
impl From<CodecError> for TksError {
    fn from(e: CodecError) -> Self {
        TksError::Codec(e)
    }
}
impl From<PositionError> for TksError {
    fn from(e: PositionError) -> Self {
        TksError::Position(e)
    }
}
impl From<PersistError> for TksError {
    fn from(e: PersistError) -> Self {
        TksError::Persist(e)
    }
}
impl From<ChainError> for TksError {
    fn from(e: ChainError) -> Self {
        TksError::Chain(e)
    }
}
impl From<WormError> for TksError {
    fn from(e: WormError) -> Self {
        TksError::Search(SearchError::Worm(e))
    }
}
impl From<ListError> for TksError {
    fn from(e: ListError) -> Self {
        TksError::Search(SearchError::List(e))
    }
}
impl From<JumpError> for TksError {
    fn from(e: JumpError) -> Self {
        TksError::Search(SearchError::Jump(e))
    }
}
impl From<TamperEvidence> for TksError {
    fn from(e: TamperEvidence) -> Self {
        TksError::Search(SearchError::Tamper(e))
    }
}
impl From<ConfigError> for TksError {
    fn from(e: ConfigError) -> Self {
        TksError::Search(SearchError::Config(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_layer_converts_in() {
        let worm: TksError = WormError::NoSuchBlock(tks_worm::BlockId(7)).into();
        assert!(matches!(worm, TksError::Search(SearchError::Worm(_))));

        let codec: TksError = CodecError::EmptyCodebook.into();
        assert!(matches!(codec, TksError::Codec(_)));

        let tamper: TksError = TamperEvidence {
            invariant: "t",
            detail: "d".into(),
        }
        .into();
        assert!(matches!(tamper, TksError::Search(SearchError::Tamper(_))));

        let persist: TksError = PersistError("short".into()).into();
        assert!(matches!(persist, TksError::Persist(_)));

        let chain: TksError = ChainError::BadRecordLength { len: 3 }.into();
        assert!(matches!(chain, TksError::Chain(_)));
    }

    #[test]
    fn display_and_source_chain() {
        let e: TksError = CodecError::TagOverflow { tag: 1 << 25 }.into();
        assert!(e.to_string().contains("24-bit"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
