//! Deterministic schedule-permutation exploration ("loom-lite").
//!
//! Concurrency bugs in the query service are ordering bugs: a watermark
//! published before its commit, a snapshot torn across a reset, a pinned
//! searcher observing writer progress.  Real-thread stress tests only
//! sample whatever interleavings the OS happens to produce, and they do it
//! differently on every run.  This module takes the opposite trade: it
//! runs **virtual threads** — each an explicit sequence of operations
//! against the real shared types — on a single OS thread, and lets a
//! seeded PRNG choose which virtual thread advances at every step.
//!
//! * Every interleaving is a deterministic function of the seed: a failing
//!   schedule is reproduced exactly by re-running with the printed seed.
//! * Sweeping seeds enumerates many distinct permutations cheaply
//!   (hundreds per test, versus a handful of lucky collisions under real
//!   threads).
//! * Because the operations run the real `AtomicIoStats`, `IndexWriter`
//!   and `Searcher` code paths, any invariant that can be broken by
//!   *op-granularity* reordering is caught and minimised for free.
//!
//! The granularity is the operation, not the machine instruction: this is
//! not a memory-model checker, it is a schedule-permutation harness.  See
//! `tests/race_schedules.rs` for the invariants the workspace pins down
//! with it.

use std::fmt;

/// A deterministic PRNG for schedule choices (SplitMix64).
///
/// SplitMix64 passes BigCrush, needs eight bytes of state, and — unlike
/// the vendored `rand` stub — is guaranteed never to change output between
/// toolchain updates, which keeps failing seeds reproducible forever.
#[derive(Debug, Clone)]
pub struct SchedRng {
    state: u64,
}

impl SchedRng {
    /// A generator whose whole output stream is determined by `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform choice in `0..n` (`0` when `n == 0`).
    pub fn pick(&mut self, n: usize) -> usize {
        if n == 0 {
            return 0;
        }
        // Multiply-shift range reduction; bias is < 2^-53 for the small
        // `n` used in schedules.
        (((self.next_u64() >> 11) as u128 * n as u128) >> 53) as usize
    }
}

/// One operation of a virtual thread: a closure over the shared state.
pub type Step<'a, S> = Box<dyn FnMut(&mut S) + 'a>;

/// Run every operation of every virtual thread exactly once, in an order
/// chosen by the seeded PRNG, and return the schedule (the thread index
/// advanced at each step).
///
/// Program order *within* each virtual thread is preserved — only the
/// interleaving *across* threads varies with the seed.  The same seed and
/// thread set always produce the same schedule.
pub fn interleave<S>(seed: u64, state: &mut S, threads: &mut [Vec<Step<'_, S>>]) -> Vec<usize> {
    let mut rng = SchedRng::new(seed);
    let mut cursors = vec![0usize; threads.len()];
    let mut trace = Vec::new();
    loop {
        let live: Vec<usize> = cursors
            .iter()
            .enumerate()
            .filter(|(i, &c)| threads.get(*i).is_some_and(|t| c < t.len()))
            .map(|(i, _)| i)
            .collect();
        if live.is_empty() {
            return trace;
        }
        let Some(&t) = live.get(rng.pick(live.len())) else {
            return trace;
        };
        let Some(cursor) = cursors.get_mut(t) else {
            return trace;
        };
        let at = *cursor;
        *cursor += 1;
        if let Some(op) = threads.get_mut(t).and_then(|ops| ops.get_mut(at)) {
            op(state);
        }
        trace.push(t);
    }
}

/// A schedule that violated an invariant, with the seed that reproduces
/// it.
#[derive(Debug, PartialEq, Eq)]
pub struct ScheduleFailure<E> {
    /// Seed of the failing interleaving — re-run with exactly this seed to
    /// reproduce the schedule.
    pub seed: u64,
    /// The violated invariant.
    pub error: E,
}

impl<E: fmt::Display> fmt::Display for ScheduleFailure<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "schedule seed {} violated an invariant: {} \
             (re-run `interleave` with this seed to reproduce)",
            self.seed, self.error
        )
    }
}

impl<E: fmt::Display + fmt::Debug> std::error::Error for ScheduleFailure<E> {}

/// Run `check` once per seed in `base_seed..base_seed + schedules`,
/// stopping at the first violated invariant.  Returns the number of clean
/// schedules on success, or the failing seed and error.
pub fn explore<E>(
    base_seed: u64,
    schedules: u64,
    mut check: impl FnMut(u64) -> Result<(), E>,
) -> Result<u64, ScheduleFailure<E>> {
    for i in 0..schedules {
        let seed = base_seed.wrapping_add(i);
        if let Err(error) = check(seed) {
            return Err(ScheduleFailure { seed, error });
        }
    }
    Ok(schedules)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace_of(seed: u64) -> (Vec<usize>, Vec<u32>) {
        let mut log: Vec<u32> = Vec::new();
        let mut threads: Vec<Vec<Step<'_, Vec<u32>>>> = (0..3u32)
            .map(|t| {
                (0..4u32)
                    .map(|i| {
                        let tag = t * 10 + i;
                        Box::new(move |log: &mut Vec<u32>| log.push(tag)) as Step<'_, Vec<u32>>
                    })
                    .collect()
            })
            .collect();
        let trace = interleave(seed, &mut log, &mut threads);
        (trace, log)
    }

    #[test]
    fn every_op_runs_exactly_once_in_program_order() {
        let (trace, log) = trace_of(42);
        assert_eq!(trace.len(), 12);
        assert_eq!(log.len(), 12);
        for t in 0..3u32 {
            let per_thread: Vec<u32> = log.iter().copied().filter(|v| v / 10 == t).collect();
            assert_eq!(
                per_thread,
                vec![t * 10, t * 10 + 1, t * 10 + 2, t * 10 + 3],
                "program order within thread {t} must be preserved"
            );
        }
    }

    #[test]
    fn same_seed_same_schedule() {
        assert_eq!(trace_of(7), trace_of(7));
    }

    #[test]
    fn seeds_reach_distinct_schedules() {
        let distinct: std::collections::BTreeSet<Vec<usize>> =
            (0..32).map(|s| trace_of(s).0).collect();
        assert!(
            distinct.len() >= 24,
            "32 seeds should produce mostly distinct interleavings, got {}",
            distinct.len()
        );
    }

    #[test]
    fn pick_is_in_bounds_and_covers_range() {
        let mut rng = SchedRng::new(99);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let p = rng.pick(5);
            assert!(p < 5);
            seen[p] = true;
        }
        assert!(seen.iter().all(|&s| s), "all branches should be reachable");
        assert_eq!(SchedRng::new(1).pick(0), 0);
    }

    #[test]
    fn explore_reports_the_failing_seed() {
        let failure = explore(
            100,
            50,
            |seed| {
                if seed == 123 {
                    Err("boom")
                } else {
                    Ok(())
                }
            },
        )
        .expect_err("seed 123 must fail");
        assert_eq!(failure.seed, 123);
        assert!(failure.to_string().contains("seed 123"));
        assert_eq!(explore::<()>(0, 10, |_| Ok(())), Ok(10));
    }
}
