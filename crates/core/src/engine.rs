//! The trustworthy search engine.
//!
//! [`SearchEngine`] assembles the paper's design into a usable system:
//!
//! * **documents on WORM** — record text is committed to an append-only
//!   WORM file system before the insert call returns;
//! * **real-time index update** (paper §2.3) — the posting-list appends
//!   for *every* keyword of a document happen inside the same insert call,
//!   before control returns to the application.  There is no buffer, no
//!   recovery log, no time window in which the adversary can suppress an
//!   index entry;
//! * **merged posting lists** (paper §3) — the configured
//!   [`MergeAssignment`] maps terms to physical lists so appends stay
//!   inside the storage cache; the engine reports every block touch to a
//!   [`StorageCache`] so experiments can read real I/O counts off a live
//!   engine (the paper's §3.5 validation);
//! * **jump indexes** (paper §4, optional) — per-list block jump indexes
//!   accelerate conjunctive queries via zigzag joins while preserving
//!   trustworthiness;
//! * **commit-time jump index** (paper §5) — a jump index over commit
//!   timestamps supports trustworthy time-range restriction ("Mala must
//!   not be able to retroactively insert email supposedly committed during
//!   an earlier period");
//! * **audits** — every invariant violation detectable from the WORM bytes
//!   is surfaced as tamper evidence.

use crate::merge::MergeAssignment;
use crate::query::{Query, QueryResponse, TermSelector};
use crate::ranking::{CollectionStats, RankingModel};
use crate::tokenizer;
use crate::zigzag::{zigzag_join_multi, DocCursor, JumpCursor};
use std::collections::HashMap;
use tks_jump::block::{BlockJumpIndex, JumpEntry, Touch};
use tks_jump::{JumpConfig, JumpError, TamperEvidence};
use tks_postings::list::{ListError, ListStore};
use tks_postings::{DocId, ListId, Posting, TermId, Timestamp};
use tks_worm::{
    AccessKind, BlockId, CacheConfig, ChainHead, ChainLink, CommitChain, IoStats, StorageCache,
    WormDevice, WormError, WormFs,
};

/// Engine configuration.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct EngineConfig {
    /// Disk block size in bytes (paper: 8 KB).
    pub block_size: usize,
    /// Storage-server non-volatile cache size in bytes.
    pub cache_bytes: u64,
    /// Term → physical-list mapping (paper §3).
    pub assignment: MergeAssignment,
    /// Enable per-list jump indexes for conjunctive queries (paper §4).
    pub jump: Option<JumpConfig>,
    /// Similarity measure for disjunctive ranking.
    pub ranking: RankingModel,
    /// Keep full document text on WORM (disable for corpus-scale
    /// simulations where only the index matters).
    pub store_documents: bool,
    /// Record per-posting token positions (a lockstep WORM sidecar per
    /// list), enabling exact phrase queries via
    /// [`Query::phrase`](crate::query::Query::phrase).
    #[serde(default)]
    pub positional: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            block_size: 8192,
            cache_bytes: 4 << 20,
            assignment: MergeAssignment::uniform(1024),
            jump: None,
            ranking: RankingModel::default(),
            store_documents: true,
            positional: false,
        }
    }
}

impl EngineConfig {
    /// Start building a validated configuration.  Unlike constructing the
    /// struct literally, [`EngineConfigBuilder::build`] rejects
    /// inconsistent settings up front instead of panicking deep inside
    /// [`SearchEngine::new`] or silently behaving like a different
    /// configuration.
    pub fn builder() -> EngineConfigBuilder {
        EngineConfigBuilder::default()
    }

    /// Check an already-constructed configuration (the struct's fields are
    /// public, so literals can bypass the builder).  [`SearchEngine::new`]
    /// runs this, so an adversarial configuration is rejected with a
    /// [`ConfigError`] instead of overflowing geometry arithmetic deep in
    /// a storage layer.
    pub fn validate(&self) -> Result<(), ConfigError> {
        EngineConfig::builder()
            .block_size(self.block_size)
            .cache_bytes(self.cache_bytes)
            .assignment(self.assignment.clone())
            .ranking(self.ranking)
            .store_documents(self.store_documents)
            .positional(self.positional)
            .maybe_jump(self.jump)
            .build()
            .map(|_| ())
    }
}

/// A rejected [`EngineConfigBuilder`] combination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError(String);

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid engine configuration: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

/// Validating builder for [`EngineConfig`] (see [`EngineConfig::builder`]).
///
/// ```
/// use tks_core::engine::EngineConfig;
/// use tks_core::merge::MergeAssignment;
///
/// let config = EngineConfig::builder()
///     .block_size(8192)
///     .cache_blocks(512)
///     .assignment(MergeAssignment::uniform(512))
///     .build()
///     .unwrap();
/// assert_eq!(config.cache_bytes, 512 * 8192);
///
/// // A cache smaller than one block cannot hold anything: rejected.
/// assert!(EngineConfig::builder().cache_bytes(100).build().is_err());
/// ```
#[derive(Debug, Clone, Default)]
pub struct EngineConfigBuilder {
    block_size: Option<usize>,
    cache_bytes: Option<u64>,
    cache_blocks: Option<u64>,
    assignment: Option<MergeAssignment>,
    jump: Option<JumpConfig>,
    ranking: Option<RankingModel>,
    store_documents: Option<bool>,
    positional: Option<bool>,
}

impl EngineConfigBuilder {
    /// Disk block size in bytes (default 8192).
    pub fn block_size(mut self, bytes: usize) -> Self {
        self.block_size = Some(bytes);
        self
    }

    /// Storage-cache size in bytes (default 4 MB).  `0` explicitly models
    /// an uncached device.  Mutually exclusive with
    /// [`cache_blocks`](Self::cache_blocks).
    pub fn cache_bytes(mut self, bytes: u64) -> Self {
        self.cache_bytes = Some(bytes);
        self
    }

    /// Storage-cache size in whole blocks (the paper's natural unit —
    /// `M` lists want `M` cache blocks).  Mutually exclusive with
    /// [`cache_bytes`](Self::cache_bytes).
    pub fn cache_blocks(mut self, blocks: u64) -> Self {
        self.cache_blocks = Some(blocks);
        self
    }

    /// Term → physical-list merge assignment (default: uniform over 1024
    /// lists).
    pub fn assignment(mut self, assignment: MergeAssignment) -> Self {
        self.assignment = Some(assignment);
        self
    }

    /// Enable per-list jump indexes with this configuration.
    pub fn jump(mut self, jump: JumpConfig) -> Self {
        self.jump = Some(jump);
        self
    }

    /// Set or clear the jump-index configuration (re-validation path).
    pub fn maybe_jump(mut self, jump: Option<JumpConfig>) -> Self {
        self.jump = jump;
        self
    }

    /// Ranking model for disjunctive queries.
    pub fn ranking(mut self, ranking: RankingModel) -> Self {
        self.ranking = Some(ranking);
        self
    }

    /// Keep full document text on WORM (default true).
    pub fn store_documents(mut self, yes: bool) -> Self {
        self.store_documents = Some(yes);
        self
    }

    /// Record per-posting token positions, enabling phrase queries
    /// (default false).
    pub fn positional(mut self, yes: bool) -> Self {
        self.positional = Some(yes);
        self
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> Result<EngineConfig, ConfigError> {
        let defaults = EngineConfig::default();
        let block_size = self.block_size.unwrap_or(defaults.block_size);
        if block_size < 64 {
            return Err(ConfigError(format!(
                "block size {block_size} is below the 64-byte minimum"
            )));
        }
        if !block_size.is_multiple_of(tks_postings::POSTING_SIZE) {
            return Err(ConfigError(format!(
                "block size {block_size} is not a multiple of the {}-byte posting",
                tks_postings::POSTING_SIZE
            )));
        }
        let cache_bytes = match (self.cache_bytes, self.cache_blocks) {
            (Some(_), Some(_)) => {
                return Err(ConfigError(
                    "cache_bytes and cache_blocks are mutually exclusive".to_string(),
                ))
            }
            (Some(bytes), None) => bytes,
            (None, Some(blocks)) => blocks.checked_mul(block_size as u64).ok_or_else(|| {
                ConfigError(format!(
                    "cache of {blocks} blocks of {block_size} bytes overflows u64"
                ))
            })?,
            (None, None) => defaults.cache_bytes,
        };
        if cache_bytes > 0 && cache_bytes < block_size as u64 {
            return Err(ConfigError(format!(
                "cache of {cache_bytes} bytes cannot hold even one {block_size}-byte \
                 block (use 0 for an explicitly uncached device)"
            )));
        }
        let assignment = self.assignment.unwrap_or(defaults.assignment);
        if assignment.num_lists() == 0 {
            return Err(ConfigError(
                "merge assignment maps terms to zero lists (M = 0)".to_string(),
            ));
        }
        if let Some(jump) = &self.jump {
            // JumpConfig::new panics on these; a builder reports instead.
            if jump.branching < 2 {
                return Err(ConfigError(format!(
                    "jump branching factor {} is below the minimum of 2",
                    jump.branching
                )));
            }
            if jump.max_key < 2 {
                return Err(ConfigError(format!(
                    "jump key space {} is below the minimum of 2",
                    jump.max_key
                )));
            }
            if jump.entries_per_block() < 1 {
                return Err(ConfigError(format!(
                    "jump block size {} cannot hold one entry beside its \
                     pointer region",
                    jump.block_size
                )));
            }
        }
        Ok(EngineConfig {
            block_size,
            cache_bytes,
            assignment,
            jump: self.jump,
            ranking: self.ranking.unwrap_or(defaults.ranking),
            store_documents: self.store_documents.unwrap_or(defaults.store_documents),
            positional: self.positional.unwrap_or(defaults.positional),
        })
    }
}

/// Errors surfaced by engine operations.
#[derive(Debug)]
pub enum SearchError {
    /// WORM device/file-system failure.
    Worm(WormError),
    /// Posting-list failure (including monotonicity violations).
    List(ListError),
    /// Jump-index failure (including tamper evidence).
    Jump(JumpError),
    /// Tamper evidence detected at query time.
    Tamper(TamperEvidence),
    /// A term falls outside the configured assignment's vocabulary.
    VocabOverflow {
        /// The term that did not fit.
        term: TermId,
    },
    /// Phrase queries need a positional engine
    /// ([`EngineConfig::positional`]).
    NotPositional,
    /// Commit timestamps must be non-decreasing.
    NonMonotonicTimestamp {
        /// Last committed timestamp.
        last: Timestamp,
        /// The offending timestamp.
        attempted: Timestamp,
    },
    /// A commit collided with quarantined crash residue: a torn commit's
    /// orphan document text already occupies the next document's WORM
    /// file.  WORM cannot truncate, and the engine refuses to guess
    /// whether the residue happens to equal the new document's text, so
    /// ingest must resume on a fresh device.
    QuarantinedResidue {
        /// The WORM file occupied by crash residue.
        file: String,
        /// Residue bytes in the way.
        bytes: u64,
    },
    /// A token is too long for the term dictionary's length-prefixed
    /// record format (`u16` length prefix).  Rejected up front: the
    /// legacy behaviour silently truncated the length with `as u16`,
    /// corrupting every subsequent dictionary record.
    TokenTooLong {
        /// Byte length of the offending token.
        len: usize,
    },
    /// The engine configuration was rejected (see [`EngineConfig::builder`]).
    Config(ConfigError),
    /// An internal invariant failed in a way that is neither tamper
    /// evidence nor caller error — reported instead of aborting, because a
    /// crash during a compliance lookup is indistinguishable from a hidden
    /// record.
    Internal(String),
}

impl std::fmt::Display for SearchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SearchError::Worm(e) => write!(f, "{e}"),
            SearchError::List(e) => write!(f, "{e}"),
            SearchError::Jump(e) => write!(f, "{e}"),
            SearchError::Tamper(t) => write!(f, "{t}"),
            SearchError::VocabOverflow { term } => {
                write!(f, "{term} exceeds the merge assignment's vocabulary")
            }
            SearchError::NotPositional => {
                write!(
                    f,
                    "phrase queries require a positional engine (EngineConfig::positional)"
                )
            }
            SearchError::NonMonotonicTimestamp { last, attempted } => {
                write!(f, "commit time {attempted} precedes committed {last}")
            }
            SearchError::QuarantinedResidue { file, bytes } => {
                write!(
                    f,
                    "commit collides with {bytes} byte(s) of quarantined crash residue at {file}"
                )
            }
            SearchError::TokenTooLong { len } => {
                write!(
                    f,
                    "token of {len} bytes exceeds the term dictionary's {} byte limit",
                    u16::MAX
                )
            }
            SearchError::Config(e) => write!(f, "{e}"),
            SearchError::Internal(msg) => write!(f, "internal invariant failure: {msg}"),
        }
    }
}

impl std::error::Error for SearchError {}

impl From<WormError> for SearchError {
    fn from(e: WormError) -> Self {
        SearchError::Worm(e)
    }
}
impl From<ListError> for SearchError {
    fn from(e: ListError) -> Self {
        SearchError::List(e)
    }
}
impl From<JumpError> for SearchError {
    fn from(e: JumpError) -> Self {
        SearchError::Jump(e)
    }
}
impl From<crate::positions::PositionError> for SearchError {
    fn from(e: crate::positions::PositionError) -> Self {
        SearchError::Internal(format!("positional sidecar: {e}"))
    }
}
impl From<TamperEvidence> for SearchError {
    fn from(e: TamperEvidence) -> Self {
        SearchError::Tamper(e)
    }
}
impl From<ConfigError> for SearchError {
    fn from(e: ConfigError) -> Self {
        SearchError::Config(e)
    }
}

/// A ranked disjunctive-query result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchHit {
    /// The matching document.
    pub doc: DocId,
    /// Similarity score (higher is better).
    pub score: f64,
}

/// Commit-time index entry: timestamp (key) + document ID (payload),
/// packed into the standard 8-byte entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TimeEntry(u64);

impl TimeEntry {
    fn new(ts: Timestamp, doc: DocId) -> Self {
        debug_assert!(ts.0 < (1 << 32), "timestamps are 32-bit seconds");
        debug_assert!(doc.0 < (1 << 32));
        Self((ts.0 << 32) | doc.0)
    }
    fn doc(self) -> DocId {
        DocId(self.0 & 0xFFFF_FFFF)
    }
}

impl JumpEntry for TimeEntry {
    fn jump_key(&self) -> u64 {
        self.0 >> 32
    }
    fn to_bytes(&self) -> [u8; 8] {
        self.0.to_le_bytes()
    }
    fn from_bytes(bytes: [u8; 8]) -> Self {
        Self(u64::from_le_bytes(bytes))
    }
}

#[derive(Debug, Clone)]
struct DocMeta {
    timestamp: Timestamp,
    /// Length in tokens (Σ tf), for ranking.
    len: u64,
}

/// Engine-wide audit findings (see [`SearchEngine::audit`]).
#[derive(Debug, Default, Clone)]
pub struct AuditReport {
    /// Lists whose raw WORM bytes violate doc-ID monotonicity, with the
    /// position of the first bad posting.
    pub list_violations: Vec<(ListId, u64)>,
    /// Lists whose raw file length differs from the engine's logical
    /// posting count × 8 — the signature of raw adversarial appends,
    /// including misaligned garbage that would otherwise shift every
    /// later decode (found by the adversary fuzz test).  Entries are
    /// `(list, logical bytes, raw bytes)`.
    pub length_mismatches: Vec<(ListId, u64, u64)>,
    /// Jump indexes whose structure fails the full audit.
    pub jump_violations: Vec<(ListId, String)>,
    /// Lists whose positional sidecar lost lockstep with the postings.
    pub position_lockstep_violations: Vec<ListId>,
    /// Rejected overwrites / early deletes recorded by the WORM devices.
    pub device_tamper_attempts: usize,
    /// Whether the commit-time index passes its audit.
    pub commit_time_ok: bool,
}

impl AuditReport {
    /// True when nothing suspicious was found.
    pub fn is_clean(&self) -> bool {
        self.list_violations.is_empty()
            && self.length_mismatches.is_empty()
            && self.jump_violations.is_empty()
            && self.position_lockstep_violations.is_empty()
            && self.device_tamper_attempts == 0
            && self.commit_time_ok
    }
}

/// What [`SearchEngine::recover`] quarantined: torn-commit residue left
/// by a crash mid-document.
///
/// The DOCMETA record is the commit point — it is the *last* WORM append
/// of a document, so everything on the devices past the last whole
/// DOCMETA record belongs to a document that never committed.  WORM
/// media cannot be truncated, so recovery walls the residue off
/// (quarantines it) and reports the byte counts here as evidence.
/// Anomalies a single torn append cannot produce — interior garbage,
/// out-of-order postings, postings referencing documents beyond the next
/// one — still fail recovery with a typed error.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Per-list quarantined posting-store bytes: a torn partial posting
    /// and/or whole postings of the uncommitted document.
    pub list_bytes: Vec<(ListId, u64)>,
    /// Partial tag-dictionary record bytes in the posting store.
    pub dict_tail_bytes: u64,
    /// Partial term-dictionary record bytes on the document device.
    pub terms_tail_bytes: u64,
    /// Partial DOCMETA record bytes on the document device.
    pub docmeta_tail_bytes: u64,
    /// Per-list quarantined positional-sidecar bytes.
    pub position_bytes: Vec<(u32, u64)>,
    /// Bytes of stored record text belonging to documents whose DOCMETA
    /// record never committed (the text reaches WORM first, so a crash
    /// can orphan a whole text file).
    pub doc_text_bytes: u64,
    /// Quarantined commit-chain bytes: a partial link record torn
    /// mid-append, and/or one whole link sealed for the document whose
    /// DOCMETA never committed (the link reaches WORM just before the
    /// commit point).
    pub chain_tail_bytes: u64,
    /// The commit-chain head recomputed over the surviving committed
    /// documents (genesis for an empty archive).
    pub chain_head: ChainHead,
    /// `Some(detail)` when the persisted chain links diverge from the
    /// chain recomputed over the surviving bytes — tamper evidence a
    /// single torn append cannot produce.  Taints every response's
    /// `trusted` flag (see [`QueryResponse::trusted`]).
    pub chain_mismatch: Option<String>,
}

impl RecoveryReport {
    /// Total quarantined bytes across every device and file.
    pub fn total_quarantined_bytes(&self) -> u64 {
        self.list_bytes.iter().map(|&(_, b)| b).sum::<u64>()
            + self.dict_tail_bytes
            + self.terms_tail_bytes
            + self.docmeta_tail_bytes
            + self.position_bytes.iter().map(|&(_, b)| b).sum::<u64>()
            + self.doc_text_bytes
            + self.chain_tail_bytes
    }

    /// `true` when recovery found no torn-commit residue.
    pub fn is_clean(&self) -> bool {
        self.total_quarantined_bytes() == 0
    }
}

/// The trustworthy keyword-search engine (see module docs).
///
/// # Example
///
/// ```
/// use tks_core::engine::{EngineConfig, SearchEngine};
/// use tks_core::Query;
/// use tks_postings::Timestamp;
///
/// let mut engine = SearchEngine::new(EngineConfig::default()).unwrap();
/// let d0 = engine.add_document("quarterly earnings restatement draft", Timestamp(100)).unwrap();
/// let _d1 = engine.add_document("lunch menu for the cafeteria", Timestamp(101)).unwrap();
/// let hits = engine.execute(&Query::disjunctive("earnings restatement", 10)).unwrap().hits;
/// assert_eq!(hits[0].doc, d0);
/// ```
#[derive(Debug)]
pub struct SearchEngine {
    config: EngineConfig,
    dict: HashMap<String, TermId>,
    term_names: Vec<String>,
    store: ListStore,
    cache: StorageCache,
    /// Per-list jump indexes (empty when disabled).
    jump: Vec<BlockJumpIndex<Posting>>,
    doc_fs: WormFs,
    docs: Vec<DocMeta>,
    doc_freq: Vec<u64>,
    commit_times: BlockJumpIndex<TimeEntry>,
    total_tokens: u64,
    /// Smallest committed document length ≥ 1 token (`u64::MAX` before
    /// any such document).  Feeds the block-level score upper bound: both
    /// ranking models are non-increasing in document length, so scoring a
    /// block's `max_tf` at this length bounds every posting in it.
    /// Zero-length documents are excluded — they contribute no scoring
    /// postings, and including them would only loosen nothing (the bound
    /// clamps at 1) while a stray empty document would pin the clamp.
    min_doc_len: u64,
    /// Lockstep positional sidecar (present iff `config.positional`).
    positions: Option<crate::positions::PositionStore>,
    /// What the last recovery quarantined (all-zero for a fresh engine).
    recovery: RecoveryReport,
    /// Bytes that reached WORM during commits that then failed on this
    /// live engine: dead weight behind the commit point, counted so trust
    /// metadata stays truthful without waiting for a restart.
    torn_tail_bytes: u64,
    /// The running SHA-256 commit chain.  One head per committed
    /// watermark; each commit absorbs its canonical bytes into the
    /// in-flight digest and seals a [`ChainLink`] persisted to
    /// [`CHAIN_FILE`] just before the DOCMETA commit point.
    chain: CommitChain,
}

fn recovery_err(msg: &str) -> SearchError {
    SearchError::List(tks_postings::list::ListError::Recovery(msg.to_string()))
}

/// One query term's evaluation plan for the disjunctive evaluators: the
/// resolved physical list and tag, the ranking inputs, and the list-level
/// score upper bound (see
/// [`SearchEngine::disjunctive_plans`](SearchEngine)).
struct TermPlan {
    term: TermId,
    tag: u32,
    list: ListId,
    df: u64,
    blocks: u64,
    /// The term's own largest saturated tf on its list (not the merged
    /// list's overall maximum — neighbour terms' frequencies are
    /// irrelevant to this term's score ceiling).
    max_tf: u8,
    ub: f64,
}

/// Sorted-deduplicated view of a caller-supplied term-ID list.  Strictly
/// increasing input — the common case, since generated workloads emit
/// canonical queries — is borrowed without cloning; anything else is
/// normalised into an owned copy.
fn normalized_ids(ids: &[TermId]) -> std::borrow::Cow<'_, [TermId]> {
    if ids.is_sorted_by(|a, b| a < b) {
        std::borrow::Cow::Borrowed(ids)
    } else {
        let mut owned = ids.to_vec();
        owned.sort_unstable();
        owned.dedup();
        std::borrow::Cow::Owned(owned)
    }
}

/// Boolean query shapes report hits with a zero score.
fn unranked_hits(docs: Vec<DocId>) -> Vec<SearchHit> {
    docs.into_iter()
        .map(|doc| SearchHit { doc, score: 0.0 })
        .collect()
}

/// Synthetic block-ID namespace for jump-index touches, disjoint from the
/// list store's device blocks.
fn jump_block_id(list: ListId, chain_block: u32) -> BlockId {
    BlockId((1 << 63) | ((list.0 as u64) << 32) | chain_block as u64)
}

/// Namespace for the commit-time index's blocks.
fn time_block_id(chain_block: u32) -> BlockId {
    BlockId((1 << 62) | chain_block as u64)
}

/// Engine metadata files kept on the document WORM device so the whole
/// engine is recoverable from raw bytes.
const TERMS_FILE: &str = "engine/terms";
const DOCMETA_FILE: &str = "engine/docmeta";
const DOCMETA_RECORD: usize = 16;
/// Persisted commit-chain links, one fixed-width record per commit,
/// appended immediately *before* the DOCMETA commit point.
const CHAIN_FILE: &str = "engine/chain";
const CHAIN_RECORD: usize = ChainLink::ENCODED;

/// The WORM file systems surviving an engine shutdown; everything a
/// [`SearchEngine::recover`] needs.
#[derive(Debug)]
pub struct EngineParts {
    /// The posting-list store's device (lists, tag dictionary, header).
    pub store_fs: WormFs,
    /// The document device (record text, term dictionary, doc metadata).
    pub doc_fs: WormFs,
    /// The positional sidecar device, when the engine was positional.
    pub pos_fs: Option<WormFs>,
}

impl SearchEngine {
    /// Create an empty engine.
    ///
    /// The configuration is re-validated (see [`EngineConfig::validate`]);
    /// a rejected configuration surfaces as [`SearchError::Config`] here
    /// instead of panicking inside a storage layer.
    pub fn new(config: EngineConfig) -> Result<Self, SearchError> {
        config.validate().map_err(SearchError::Config)?;
        let num_lists = config.assignment.num_lists() as usize;
        let jump = match &config.jump {
            Some(cfg) => (0..num_lists).map(|_| BlockJumpIndex::new(*cfg)).collect(),
            None => Vec::new(),
        };
        // The commit-time index needs room for its pointer region (B = 32
        // over 32-bit timestamps needs 868 bytes), so floor its block size.
        let time_cfg = JumpConfig::try_new(config.block_size.max(2048), 32, 1 << 32)?;
        let mut doc_fs = WormFs::new(WormDevice::new(config.block_size.max(64)));
        doc_fs.create(TERMS_FILE, u64::MAX)?;
        doc_fs.create(DOCMETA_FILE, u64::MAX)?;
        doc_fs.create(CHAIN_FILE, u64::MAX)?;
        Ok(Self {
            cache: StorageCache::new(CacheConfig::new(
                config.cache_bytes,
                config.block_size as u32,
            )),
            store: ListStore::new(config.block_size, num_lists)?,
            jump,
            doc_fs,
            docs: Vec::new(),
            doc_freq: Vec::new(),
            commit_times: BlockJumpIndex::new(time_cfg),
            total_tokens: 0,
            min_doc_len: u64::MAX,
            dict: HashMap::new(),
            term_names: Vec::new(),
            positions: if config.positional {
                Some(crate::positions::PositionStore::new(
                    config.block_size,
                    num_lists,
                )?)
            } else {
                None
            },
            recovery: RecoveryReport::default(),
            torn_tail_bytes: 0,
            chain: CommitChain::new(),
            config,
        })
    }

    /// Shut the engine down, keeping only what a real deployment keeps:
    /// the WORM devices.
    pub fn into_parts(self) -> EngineParts {
        EngineParts {
            store_fs: self.store.into_fs(),
            doc_fs: self.doc_fs,
            pos_fs: self.positions.map(|p| p.into_fs()),
        }
    }

    /// Rebuild an engine from raw WORM bytes, re-verifying every
    /// structural invariant on the way (paper §2.3: recovery cannot trust
    /// logs or end-of-log markers, only the committed structures).
    ///
    /// `config` must describe the engine that wrote the devices (the merge
    /// assignment in particular); mismatches are detected where possible.
    ///
    /// Recovery is **torn-tail tolerant**: the DOCMETA record is the last
    /// WORM append of a document (the commit point), so a crash mid-commit
    /// leaves at most one partial record per file plus whole index entries
    /// for the document whose DOCMETA never landed.  That residue is
    /// quarantined and reported (see [`SearchEngine::recovery_report`]),
    /// and the engine converges to the last fully committed document.
    /// Interior anomalies — which a single torn append cannot produce —
    /// still fail with a typed error.
    pub fn recover(parts: EngineParts, config: EngineConfig) -> Result<Self, SearchError> {
        let mut report = RecoveryReport::default();
        let (mut store, store_rec) = ListStore::recover_with_report(parts.store_fs)?;
        report.dict_tail_bytes = store_rec.dict_tail_bytes;
        let mut list_bytes: HashMap<u32, u64> = store_rec.torn_lists.iter().copied().collect();
        if store.num_lists() != config.assignment.num_lists() as usize {
            return Err(SearchError::List(tks_postings::list::ListError::Recovery(
                format!(
                    "store has {} lists but the assignment expects {}",
                    store.num_lists(),
                    config.assignment.num_lists()
                ),
            )));
        }
        let doc_fs = parts.doc_fs;

        // Rebuild the token dictionary.
        let mut dict = HashMap::new();
        let mut term_names = Vec::new();
        let terms_file = doc_fs
            .open(TERMS_FILE)
            .map_err(|_| recovery_err("missing term dictionary file"))?;
        let terms_len = doc_fs.len(terms_file);
        let mut off = 0u64;
        while off < terms_len {
            // A length prefix or entry body running past EOF is the torn
            // tail of an intern killed mid-append: quarantine the
            // remainder and stop replaying.  Whole entries that decode
            // but violate invariants (non-UTF-8, duplicates) cannot come
            // from a torn append and still fail hard.
            if off + 2 > terms_len {
                report.terms_tail_bytes = terms_len - off;
                break;
            }
            // Length-prefixed dictionary replay, once per recovery.
            // audit:allow(hot-path-io)
            let len_bytes = doc_fs.read(terms_file, off, 2)?;
            let len = u16::from_le_bytes(
                <[u8; 2]>::try_from(&len_bytes[..])
                    .map_err(|_| recovery_err("short term dictionary length"))?,
            ) as u64;
            if off + 2 + len > terms_len {
                report.terms_tail_bytes = terms_len - off;
                break;
            }
            off += 2;
            let name = String::from_utf8(doc_fs.read(terms_file, off, len as usize)?)
                .map_err(|_| recovery_err("term dictionary entry is not UTF-8"))?;
            off += len;
            let id = TermId(term_names.len() as u32);
            if dict.insert(name.clone(), id).is_some() {
                return Err(recovery_err("duplicate term in dictionary"));
            }
            term_names.push(name);
        }

        // Rebuild document metadata and the commit-time index.
        let docmeta_file = doc_fs
            .open(DOCMETA_FILE)
            .map_err(|_| recovery_err("missing document metadata file"))?;
        let meta_len = doc_fs.len(docmeta_file);
        // DOCMETA is an append-only stream of fixed-width records, so a
        // non-multiple length can only be a record torn mid-append — the
        // crash signature at the commit point itself.  The partial record
        // is quarantined; whole records before it are the committed
        // document set.
        report.docmeta_tail_bytes = meta_len % DOCMETA_RECORD as u64;
        let time_cfg = JumpConfig::try_new(config.block_size.max(2048), 32, 1 << 32)?;
        let mut commit_times = BlockJumpIndex::new(time_cfg);
        let mut docs = Vec::new();
        let mut total_tokens = 0u64;
        let mut min_doc_len = u64::MAX;
        for i in 0..(meta_len / DOCMETA_RECORD as u64) {
            // Fixed-width metadata replay, once per recovery.
            // audit:allow(hot-path-io)
            let rec = doc_fs.read(docmeta_file, i * DOCMETA_RECORD as u64, DOCMETA_RECORD)?;
            let ts = Timestamp(u64::from_le_bytes(
                <[u8; 8]>::try_from(&rec[0..8])
                    .map_err(|_| recovery_err("short document metadata record"))?,
            ));
            let len = u64::from_le_bytes(
                <[u8; 8]>::try_from(&rec[8..16])
                    .map_err(|_| recovery_err("short document metadata record"))?,
            );
            if let Some(last) = docs.last() {
                let last: &DocMeta = last;
                if ts < last.timestamp {
                    return Err(recovery_err("document metadata timestamps decrease"));
                }
            }
            commit_times.insert(TimeEntry::new(ts, DocId(i)))?;
            total_tokens += len;
            if len >= 1 {
                min_doc_len = min_doc_len.min(len);
            }
            docs.push(DocMeta { timestamp: ts, len });
        }

        // Quarantine index entries of the uncommitted document.  DOCMETA
        // is the commit point (the last WORM append of a document), so a
        // crash can leave whole postings for exactly the *next* document
        // id, and doc-ID monotonicity (verified by the store recovery
        // audit) puts them at each list's tail.  Postings beyond the next
        // document, or phantom postings not at the tail, cannot come from
        // a single crash — those remain hard tamper evidence.
        let committed = docs.len() as u64;
        for l in 0..store.num_lists() as u32 {
            let list = ListId(l);
            let mut phantom = 0u64;
            for p in store.postings(list)? {
                if p.doc.0 > committed {
                    return Err(recovery_err(
                        "posting references a document with no metadata record",
                    ));
                }
                if p.doc.0 == committed {
                    phantom += 1;
                } else if phantom > 0 {
                    return Err(recovery_err(
                        "posting for an uncommitted document is not at the list tail",
                    ));
                }
            }
            if phantom > 0 {
                store.quarantine_tail(list, phantom)?;
                *list_bytes.entry(l).or_insert(0) += phantom * 8;
            }
        }
        report.list_bytes = {
            let mut v: Vec<(ListId, u64)> = list_bytes
                .into_iter()
                .map(|(l, b)| (ListId(l), b))
                .collect();
            v.sort_unstable_by_key(|&(l, _)| l.0);
            v
        };

        // Record text reaches WORM before DOCMETA, so a crash can orphan
        // whole text files of the uncommitted document.  Count them as
        // quarantined residue (they are unreachable: document_text only
        // serves ids below the committed count).
        report.doc_text_bytes = doc_fs
            .file_names()
            .filter_map(|name| {
                let n: u64 = name.strip_prefix("docs/")?.parse().ok()?;
                (n >= committed).then_some(name)
            })
            .filter_map(|name| doc_fs.open(name).ok())
            .map(|f| doc_fs.len(f))
            .sum();

        // Recompute document frequencies from the recovered (post-
        // quarantine) lists, and cross-check tags and list assignment.
        // The same pass collects each committed document's (term, tf)
        // postings so the commit chain can be recomputed below.
        let mut doc_freq = vec![0u64; term_names.len()];
        let mut doc_terms: Vec<Vec<(TermId, u8)>> = vec![Vec::new(); docs.len()];
        for l in 0..store.num_lists() as u32 {
            let list = ListId(l);
            for p in store.postings(list)? {
                let term = store
                    .term_of_tag(list, p.term_tag)?
                    .ok_or_else(|| recovery_err("posting tag has no dictionary entry"))?;
                if config.assignment.list_of(term) != list {
                    return Err(recovery_err(
                        "posting stored in a list its term does not map to",
                    ));
                }
                let slot = term.0 as usize;
                if slot >= doc_freq.len() {
                    doc_freq.resize(slot + 1, 0);
                }
                doc_freq[slot] += 1;
                if let Some(entry) = doc_terms.get_mut(p.doc.0 as usize) {
                    entry.push((term, p.tf));
                }
            }
        }

        // Recompute the commit chain over the surviving committed
        // documents and check it against the persisted links.  Commits
        // absorb their postings in ascending term-ID order, so sorting
        // the recovered postings reproduces the canonical frame.
        let mut chain = CommitChain::new();
        for (i, (meta, terms)) in docs.iter().zip(doc_terms.iter_mut()).enumerate() {
            terms.sort_unstable_by_key(|&(t, _)| t);
            chain.absorb_commit_header(i as u64, meta.timestamp.0, meta.len);
            let text = doc_fs
                .open(&format!("docs/{i}"))
                .ok()
                .and_then(|f| doc_fs.read(f, 0, doc_fs.len(f) as usize).ok());
            chain.absorb_text(text.as_deref());
            for &(term, tf) in terms.iter() {
                let name = term_names.get(term.0 as usize).map(|s| s.as_str());
                chain.absorb_term(term.0, name, tf);
            }
            let link = chain.seal(i as u64 + 1);
            chain
                .advance(&link)
                .map_err(|e| recovery_err(&format!("chain recompute: {e}")))?;
        }
        report.chain_head = chain.head();

        // Replay the persisted links.  A torn link record, or one whole
        // link for the document whose DOCMETA never committed, is crash
        // residue; anything else that diverges from the recomputed chain
        // is tamper evidence a single torn append cannot produce.
        let chain_file = doc_fs
            .open(CHAIN_FILE)
            .map_err(|_| recovery_err("missing commit chain file"))?;
        let chain_len = doc_fs.len(chain_file);
        report.chain_tail_bytes = chain_len % CHAIN_RECORD as u64;
        let whole_links = chain_len / CHAIN_RECORD as u64;
        if whole_links > committed + 1 {
            return Err(recovery_err(
                "commit chain has more than one link beyond the committed documents",
            ));
        }
        if whole_links == committed + 1 {
            // The sealed link of the uncommitted document: quarantined
            // residue, like its postings and text.
            report.chain_tail_bytes += CHAIN_RECORD as u64;
        }
        if whole_links < committed {
            report.chain_mismatch = Some(format!(
                "commit chain holds {whole_links} link(s) for {committed} committed document(s)"
            ));
        }
        for i in 0..whole_links.min(committed) {
            // Fixed-width chain replay, once per recovery.
            // audit:allow(hot-path-io)
            let rec = doc_fs.read(chain_file, i * CHAIN_RECORD as u64, CHAIN_RECORD)?;
            let persisted = ChainLink::decode(&rec)
                .map_err(|e| recovery_err(&format!("chain link {i}: {e}")))?;
            // The link head hashes prev_head ‖ commit_digest ‖ watermark,
            // so one comparison binds all three fields.
            let recomputed_head = chain
                .head_at(i + 1)
                .ok_or_else(|| recovery_err("chain head watermark out of range"))?;
            if persisted.head() != recomputed_head {
                report.chain_mismatch = Some(format!(
                    "chain link {i} diverges: persisted head {}, recomputed {recomputed_head}",
                    persisted.head()
                ));
                break;
            }
        }

        // Rebuild jump indexes by replaying the recovered lists (entries
        // are already in key order).
        let jump = match &config.jump {
            Some(cfg) => {
                let mut idxs: Vec<BlockJumpIndex<Posting>> = (0..store.num_lists())
                    .map(|_| BlockJumpIndex::new(*cfg))
                    .collect();
                for l in 0..store.num_lists() as u32 {
                    for p in store.postings(ListId(l))? {
                        idxs[l as usize].insert(p)?;
                    }
                }
                idxs
            }
            None => Vec::new(),
        };

        // Rebuild the positional sidecar, verifying lockstep with the
        // recovered posting counts.
        let positions = if config.positional {
            let pos_fs = parts
                .pos_fs
                .ok_or_else(|| recovery_err("positional engine but no position device"))?;
            let counts: Vec<u64> = (0..store.num_lists() as u32)
                .map(|l| store.len(ListId(l)).unwrap_or(0))
                .collect();
            let (ps, quarantined) =
                crate::positions::PositionStore::recover_with_report(pos_fs, &counts)
                    .map_err(|e| recovery_err(&e.to_string()))?;
            report.position_bytes = quarantined;
            Some(ps)
        } else {
            None
        };

        Ok(Self {
            cache: StorageCache::new(CacheConfig::new(
                config.cache_bytes,
                config.block_size as u32,
            )),
            store,
            jump,
            doc_fs,
            docs,
            doc_freq,
            commit_times,
            total_tokens,
            min_doc_len,
            dict,
            term_names,
            positions,
            recovery: report,
            torn_tail_bytes: 0,
            chain,
            config,
        })
    }

    /// What the recovery that built this engine quarantined (all-zero
    /// for an engine created with [`SearchEngine::new`]).
    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// The commit chain's current head (after the last committed
    /// document; genesis for an empty engine).
    pub fn chain_head(&self) -> ChainHead {
        self.chain.head()
    }

    /// The chain head at a historical watermark, if that many documents
    /// have committed.  Pinned-snapshot readers report the head their
    /// watermark was sealed under, so a response's head is stable for
    /// the lifetime of the pin regardless of writer progress.
    pub fn chain_head_at(&self, watermark: u64) -> Option<ChainHead> {
        self.chain.head_at(watermark)
    }

    /// `Some(detail)` when the last recovery found the persisted chain
    /// links diverging from the chain recomputed over surviving bytes.
    /// A mismatch taints every response's `trusted` flag.
    pub fn chain_mismatch(&self) -> Option<&str> {
        self.recovery.chain_mismatch.as_deref()
    }

    /// Total torn-commit residue behind the commit point, in bytes:
    /// what recovery quarantined plus residue of commits that failed on
    /// this live engine.  Surfaced on every
    /// [`QueryResponse`](crate::query::QueryResponse).
    pub fn quarantined_bytes(&self) -> u64 {
        self.recovery.total_quarantined_bytes() + self.torn_tail_bytes
    }

    /// The configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Number of committed documents.
    pub fn num_docs(&self) -> u64 {
        self.docs.len() as u64
    }

    /// Number of distinct terms interned from text.
    pub fn vocab_size(&self) -> u32 {
        self.term_names.len() as u32
    }

    /// Cumulative storage-cache I/O counters.
    pub fn io_stats(&self) -> IoStats {
        self.cache.stats()
    }

    /// Counters of the decoded-block LRU shared by this engine's readers
    /// (the level *above* the storage cache in the two-level read path).
    pub fn decoded_cache_stats(&self) -> tks_postings::DecodedCacheStats {
        self.store.decoded_cache_stats()
    }

    /// The posting-list store (audits, attack harnesses).
    pub fn list_store(&self) -> &ListStore {
        &self.store
    }

    /// Raw mutable access to the posting-list store — the adversary's
    /// entry point in attack simulations.
    pub fn list_store_mut(&mut self) -> &mut ListStore {
        &mut self.store
    }

    /// The document WORM file system (records, term dictionary, document
    /// metadata) — for audits, persistence and attack harnesses.
    pub fn doc_fs(&self) -> &WormFs {
        &self.doc_fs
    }

    /// Raw mutable access to the document file system — for attack and
    /// fault-injection harnesses (e.g. arming a
    /// [`FaultPolicy`](tks_worm::FaultPolicy) on the device).
    pub fn doc_fs_mut(&mut self) -> &mut WormFs {
        &mut self.doc_fs
    }

    /// The positional sidecar's file system, when the engine is positional.
    pub fn positions_fs(&self) -> Option<&WormFs> {
        self.positions.as_ref().map(|p| p.fs())
    }

    /// Mutable positional file system — fault-injection harnesses.
    pub fn positions_fs_mut(&mut self) -> Option<&mut WormFs> {
        self.positions.as_mut().map(|p| p.fs_mut())
    }

    /// Document frequency of a term (postings in its list).
    pub fn doc_freq(&self, term: TermId) -> u64 {
        self.doc_freq.get(term.0 as usize).copied().unwrap_or(0)
    }

    /// Intern a token, assigning the next dense [`TermId`] and persisting
    /// the assignment to the WORM term dictionary.
    ///
    /// Fails only on a WORM fault while appending the dictionary record
    /// (the dictionary file is created at engine construction).
    pub fn intern(&mut self, token: &str) -> Result<TermId, SearchError> {
        if let Some(&t) = self.dict.get(token) {
            return Ok(t);
        }
        let bytes = token.as_bytes();
        // The dictionary record is length-prefixed with a u16; a longer
        // token must be rejected *before* anything reaches WORM — the
        // legacy `as u16` cast silently truncated the length, making
        // every subsequent dictionary record unparseable.
        let len = u16::try_from(bytes.len())
            .map_err(|_| SearchError::TokenTooLong { len: bytes.len() })?;
        let t = TermId(self.term_names.len() as u32);
        let file = self.doc_fs.open(TERMS_FILE)?;
        let mut rec = Vec::with_capacity(2 + bytes.len());
        rec.extend_from_slice(&len.to_le_bytes());
        rec.extend_from_slice(bytes);
        // The dictionary bytes are bound transitively: every commit
        // absorbs each posting's term *name* into the chain, so a
        // tampered dictionary record changes the recomputed digest of
        // the first commit that uses the term.
        // audit:allow(chain-append-discipline)
        self.doc_fs.append(file, &rec)?;
        self.term_names.push(token.to_string());
        self.dict.insert(token.to_string(), t);
        Ok(t)
    }

    /// Look up a token without interning.
    pub fn term_of(&self, token: &str) -> Option<TermId> {
        self.dict.get(token).copied()
    }

    /// Commit a text document with the given (non-decreasing) timestamp.
    /// The document and all of its index entries are durably on WORM when
    /// this returns — the real-time property of §2.3.
    pub fn add_document(&mut self, text: &str, ts: Timestamp) -> Result<DocId, SearchError> {
        let with_positions = tokenizer::term_positions(text);
        let mut entries: Vec<(TermId, Vec<u32>)> = Vec::with_capacity(with_positions.len());
        for (tok, ps) in with_positions {
            entries.push((self.intern(&tok)?, ps));
        }
        entries.sort_unstable_by_key(|&(t, _)| t);
        let terms: Vec<(TermId, u32)> = entries
            .iter()
            .map(|(t, ps)| (*t, ps.len() as u32))
            .collect();
        let positions: Vec<Vec<u32>> = entries.into_iter().map(|(_, ps)| ps).collect();
        self.add_document_impl(&terms, ts, Some(text), Some(&positions))
    }

    /// Commit a pre-tokenised document (the synthetic-corpus path).
    /// `terms` must be sorted by term ID and duplicate-free.  On a
    /// positional engine, empty position records keep the sidecar in
    /// lockstep (such documents never match phrases).
    pub fn add_document_terms(
        &mut self,
        terms: &[(TermId, u32)],
        ts: Timestamp,
        raw_text: Option<&str>,
    ) -> Result<DocId, SearchError> {
        self.add_document_impl(terms, ts, raw_text, None)
    }

    fn add_document_impl(
        &mut self,
        terms: &[(TermId, u32)],
        ts: Timestamp,
        raw_text: Option<&str>,
        positions: Option<&[Vec<u32>]>,
    ) -> Result<DocId, SearchError> {
        let before = self.device_bytes_committed();
        let result = self.add_document_inner(terms, ts, raw_text, positions);
        if result.is_err() {
            // WORM bytes cannot be taken back: whatever the failed commit
            // managed to append sits behind the commit point forever.
            // Count it so live trust metadata matches what a recovery of
            // these devices would quarantine.
            self.torn_tail_bytes += self.device_bytes_committed() - before;
            // The failed commit's partial content must not leak into the
            // next commit's digest.
            self.chain.abort();
        }
        result
    }

    /// Total bytes committed across all of the engine's WORM devices.
    fn device_bytes_committed(&self) -> u64 {
        self.store.fs().device().bytes_committed()
            + self.doc_fs.device().bytes_committed()
            + self
                .positions
                .as_ref()
                .map_or(0, |p| p.fs().device().bytes_committed())
    }

    fn add_document_inner(
        &mut self,
        terms: &[(TermId, u32)],
        ts: Timestamp,
        raw_text: Option<&str>,
        positions: Option<&[Vec<u32>]>,
    ) -> Result<DocId, SearchError> {
        if let Some(last) = self.docs.last() {
            if ts < last.timestamp {
                return Err(SearchError::NonMonotonicTimestamp {
                    last: last.timestamp,
                    attempted: ts,
                });
            }
        }
        // Validate the whole document against the assignment up front so a
        // failed insert leaves no partial state.
        for &(t, _) in terms {
            let covered = match &self.config.assignment {
                MergeAssignment::Unmerged { vocab_size } => t.0 < *vocab_size,
                MergeAssignment::Uniform { .. } => true,
                MergeAssignment::Table { list_of, .. } => (t.0 as usize) < list_of.len(),
            };
            if !covered {
                return Err(SearchError::VocabOverflow { term: t });
            }
        }

        let doc = DocId(self.docs.len() as u64);
        let len: u64 = terms.iter().map(|&(_, tf)| tf as u64).sum();
        // Every byte this commit writes is absorbed into the in-flight
        // chain digest in canonical order; the sealed link lands on WORM
        // just before the DOCMETA commit point (step 4).
        self.chain.absorb_commit_header(doc.0, ts.0, len);
        // 1. The record itself reaches WORM first (we trust the insertion
        //    application at commit time; see paper §2.1).  Its DOCMETA
        //    record is deliberately *not* written yet: DOCMETA is the
        //    commit point, appended last (step 4), so a crash anywhere in
        //    this function leaves index entries that recovery can
        //    recognise as uncommitted and quarantine.
        let mut stored_text = None;
        if self.config.store_documents {
            if let Some(text) = raw_text {
                let name = format!("docs/{}", doc.0);
                // The engine never creates the same doc file twice, so a
                // collision here means orphan text from a torn commit
                // already occupies this document's slot — quarantined
                // residue, not a generic file-system error.
                let f = match self.doc_fs.create(&name, u64::MAX) {
                    Ok(f) => f,
                    Err(WormError::FileExists(_)) => {
                        let bytes = self
                            .doc_fs
                            .open(&name)
                            .map(|f| self.doc_fs.len(f))
                            .unwrap_or(0);
                        return Err(SearchError::QuarantinedResidue { file: name, bytes });
                    }
                    Err(e) => return Err(e.into()),
                };
                self.doc_fs.append(f, text.as_bytes())?;
                stored_text = Some(text.as_bytes());
            }
        }
        // The frame records text absence too, so "no stored text" and
        // "empty stored text" hash differently.
        self.chain.absorb_text(stored_text);

        // 2. Index entries, one per distinct keyword, before returning.
        let jump_enabled = !self.jump.is_empty();
        for (i, &(term, tf)) in terms.iter().enumerate() {
            let list = self.config.assignment.list_of(term);
            // When jump indexes are enabled the jump blocks *are* the
            // posting blocks (paper §4.4), so cache accounting comes from
            // the jump touches; otherwise from the plain list append.
            let cache = if jump_enabled {
                None
            } else {
                Some(&mut self.cache)
            };
            self.store.append(list, term, doc, tf, cache)?;
            if jump_enabled {
                let tag = self.store.tag_of(list, term)?.ok_or_else(|| {
                    SearchError::Internal(format!("tag for {term} in {list} missing after append"))
                })?;
                let posting = Posting::new(doc, tag, tf);
                let cache = &mut self.cache;
                self.jump[list.0 as usize].insert_with(posting, |t| match t {
                    Touch::Append {
                        block,
                        was_empty,
                        fills,
                    } => {
                        cache.access(
                            jump_block_id(list, block),
                            AccessKind::Append { was_empty, fills },
                        );
                    }
                    Touch::PointerSet { block, .. } => {
                        cache.access(jump_block_id(list, block), AccessKind::Update);
                    }
                })?;
            }
            if let Some(ps) = &mut self.positions {
                // Lockstep sidecar: one record per appended posting.
                static EMPTY: &[u32] = &[];
                let record = positions
                    .and_then(|p| p.get(i))
                    .map(|v| &v[..])
                    .unwrap_or(EMPTY);
                ps.append(list.0, record)
                    .map_err(|e| recovery_err(&e.to_string()))?;
            }
            // Absorb the posting as stored: the saturated tf is what a
            // recovery sees when it recomputes the chain from postings.
            let name = self.term_names.get(term.0 as usize).map(|s| s.as_str());
            self.chain.absorb_term(term.0, name, tf.min(255) as u8);
            let slot = term.0 as usize;
            if slot >= self.doc_freq.len() {
                self.doc_freq.resize(slot + 1, 0);
            }
            self.doc_freq[slot] += 1;
        }

        // 3. Commit-time index (paper §5): trustworthy time-range queries.
        let cache = &mut self.cache;
        self.commit_times
            .insert_with(TimeEntry::new(ts, doc), |t| match t {
                Touch::Append {
                    block,
                    was_empty,
                    fills,
                } => {
                    cache.access(
                        time_block_id(block),
                        AccessKind::Append { was_empty, fills },
                    );
                }
                Touch::PointerSet { block, .. } => {
                    cache.access(time_block_id(block), AccessKind::Update);
                }
            })?;

        // 4. Seal and persist the chain link, then the commit point.
        //    The link reaches WORM first so DOCMETA stays the LAST append
        //    of the document: a crash between the two leaves one whole
        //    link for an uncommitted document, which recovery quarantines
        //    like the document's other residue.  Until DOCMETA is durably
        //    whole, every byte written above is quarantinable residue; a
        //    failure here (or anywhere above) leaves the document
        //    uncommitted and the in-memory shadow state invisible behind
        //    the `docs.len()` watermark.
        let link = self.chain.seal(doc.0 + 1);
        {
            let f = self.doc_fs.open(CHAIN_FILE)?;
            self.doc_fs.append(f, &link.encode())?;
        }
        {
            let f = self.doc_fs.open(DOCMETA_FILE)?;
            let mut rec = [0u8; DOCMETA_RECORD];
            rec[0..8].copy_from_slice(&ts.0.to_le_bytes());
            rec[8..16].copy_from_slice(&len.to_le_bytes());
            self.doc_fs.append(f, &rec)?;
        }
        // The in-memory chain only advances once the commit point has
        // landed, mirroring the `docs.len()` watermark.
        self.chain
            .advance(&link)
            .map_err(|e| SearchError::Internal(format!("commit chain: {e}")))?;

        self.total_tokens += len;
        if len >= 1 {
            self.min_doc_len = self.min_doc_len.min(len);
        }
        self.docs.push(DocMeta { timestamp: ts, len });
        Ok(doc)
    }

    /// Retrieve a committed document's text.
    pub fn document_text(&self, doc: DocId) -> Option<String> {
        let f = self.doc_fs.open(&format!("docs/{}", doc.0)).ok()?;
        let bytes = self.doc_fs.read(f, 0, self.doc_fs.len(f) as usize).ok()?;
        String::from_utf8(bytes).ok()
    }

    /// Commit timestamp of a document.
    pub fn document_timestamp(&self, doc: DocId) -> Option<Timestamp> {
        self.docs.get(doc.0 as usize).map(|m| m.timestamp)
    }

    fn collection_stats(&self) -> CollectionStats {
        let n = self.docs.len() as u64;
        CollectionStats {
            num_docs: n,
            avg_doc_len: if n == 0 {
                0.0
            } else {
                self.total_tokens as f64 / n as f64
            },
        }
    }

    /// Execute a [`Query`] against the full committed state.
    ///
    /// This is the single read entry point: every query shape — ranked
    /// disjunctive, conjunctive (optionally time-restricted), phrase, and
    /// commit-time range — is implemented exactly once behind it.  The
    /// response carries per-query I/O cost and trust metadata alongside
    /// the hits.
    pub fn execute(&self, query: &Query) -> Result<QueryResponse, SearchError> {
        self.execute_bounded(query, self.num_docs())
    }

    /// Execute a [`Query`] against a snapshot: only documents with
    /// `doc.0 < visible` can appear in the results.  Concurrent services
    /// ([`Searcher`](crate::service::Searcher)) pass a published
    /// watermark here so readers see a stable prefix of the commit
    /// sequence regardless of writer progress.
    ///
    /// Ranking statistics (document frequencies, collection averages)
    /// reflect the live collection; the result *set* respects the
    /// watermark.
    pub fn execute_bounded(
        &self,
        query: &Query,
        visible: u64,
    ) -> Result<QueryResponse, SearchError> {
        let visible = visible.min(self.num_docs());
        let (hits, blocks, skipped) = match query {
            Query::Disjunctive { terms, top_k } => {
                let ids = self.resolve_any(terms);
                self.disjunctive_ranked(&ids, *top_k, visible)
            }
            Query::Conjunctive { terms, range } => match self.resolve_all(terms) {
                None => (Vec::new(), 0, 0),
                Some(ids) => {
                    let (mut docs, blocks) = self.conjunctive_terms(&ids)?;
                    docs.retain(|d| d.0 < visible);
                    if let Some(r) = range {
                        let set: std::collections::HashSet<DocId> =
                            self.docs_in_time_range(r.from, r.to)?.into_iter().collect();
                        docs.retain(|d| set.contains(d));
                    }
                    (unranked_hits(docs), blocks, 0)
                }
            },
            Query::Phrase { text } => {
                let (docs, blocks) = self.phrase_docs(text, visible)?;
                (unranked_hits(docs), blocks, 0)
            }
            Query::TimeRange(r) => {
                let mut docs = self.docs_in_time_range(r.from, r.to)?;
                docs.retain(|d| d.0 < visible);
                // Entries sit contiguously in the commit-time index.
                let per_block = self.commit_times.config().entries_per_block() as u64;
                let blocks = (docs.len() as u64).div_ceil(per_block.max(1));
                (unranked_hits(docs), blocks, 0)
            }
        };
        Ok(QueryResponse {
            hits,
            blocks_read: blocks,
            blocks_skipped: skipped,
            io: IoStats {
                read_ios: blocks,
                misses: blocks,
                ..IoStats::default()
            },
            visible_docs: visible,
            trusted: self.tamper_logs_clean() && self.recovery.chain_mismatch.is_none(),
            quarantined_bytes: self.quarantined_bytes(),
            chain_head: self
                .chain
                .head_at(visible)
                .unwrap_or_else(|| self.chain.head()),
        })
    }

    /// Resolve a disjunctive selector: unknown text tokens are dropped.
    /// Pre-resolved ID lists that are already strictly increasing — the
    /// common case for generated workloads, which emit canonical queries —
    /// are borrowed as-is instead of being cloned and re-sorted per query.
    fn resolve_any<'a>(&self, terms: &'a TermSelector) -> std::borrow::Cow<'a, [TermId]> {
        match terms {
            TermSelector::Text(text) => {
                let mut ids: Vec<TermId> = tokenizer::tokenize(text)
                    .iter()
                    .filter_map(|t| self.term_of(t))
                    .collect();
                ids.sort_unstable();
                ids.dedup();
                std::borrow::Cow::Owned(ids)
            }
            TermSelector::Ids(ids) => normalized_ids(ids),
        }
    }

    /// Resolve a conjunctive selector: `None` when a text token is
    /// unknown (no document can contain it, so the result is empty).
    fn resolve_all<'a>(&self, terms: &'a TermSelector) -> Option<std::borrow::Cow<'a, [TermId]>> {
        match terms {
            TermSelector::Text(text) => {
                let toks = tokenizer::tokenize(text);
                let mut ids = Vec::with_capacity(toks.len());
                for t in &toks {
                    ids.push(self.term_of(t)?);
                }
                ids.sort_unstable();
                ids.dedup();
                Some(std::borrow::Cow::Owned(ids))
            }
            TermSelector::Ids(ids) => Some(normalized_ids(ids)),
        }
    }

    /// Build the per-term evaluation plans shared by both disjunctive
    /// evaluators: resolved tag/list/df, the list's block count, and the
    /// term's list-level score upper bound — sorted by descending bound.
    ///
    /// The sort is stable and the order is **canonical**: both the
    /// block-max evaluator and the exhaustive reference accumulate each
    /// document's per-term contributions in exactly this sequence, so
    /// their floating-point sums (and therefore hits, scores, and
    /// tie-break order) are bit-identical.  Terms never indexed are
    /// dropped — they have no postings and contribute nothing.
    fn disjunctive_plans(&self, terms: &[TermId], stats: CollectionStats) -> Vec<TermPlan> {
        let mut plans: Vec<TermPlan> = Vec::with_capacity(terms.len());
        for &term in terms {
            let list = self.config.assignment.list_of(term);
            let Ok(Some(tag)) = self.store.tag_of(list, term) else {
                continue;
            };
            let df = self.doc_freq(term);
            let blocks = self.store.num_blocks(list).unwrap_or(0);
            let max_tf = self.store.max_tf_for_tag(list, tag).unwrap_or(u8::MAX);
            // Clamped at 0 so the pruning reach in the evaluator is never
            // negative (scores only go negative under out-of-range BM25
            // parameters; 0 still bounds them from above).
            let ub = self
                .config
                .ranking
                .score_bound(max_tf as u32, self.min_doc_len, df, stats)
                .max(0.0);
            plans.push(TermPlan {
                term,
                tag,
                list,
                df,
                blocks,
                max_tf,
                ub,
            });
        }
        // Highest upper bound first: the terms most able to produce large
        // scores fill the threshold before the low-impact tails are even
        // looked at.  Stable, so bound ties keep the callers' canonical
        // (ascending term id) order.
        plans.sort_by(|a, b| b.ub.total_cmp(&a.ub));
        plans
    }

    /// Ranked disjunctive search: block-max top-k with early termination.
    ///
    /// Terms are evaluated term-at-a-time in descending order of their
    /// list-level score upper bound ([`RankingModel::score_bound`] at the
    /// term's own largest tf and the collection's minimum document
    /// length), so
    /// the highest-impact terms establish the pruning threshold first.
    /// θ — the k-th best *partial* score accumulated so far — only ever
    /// grows, and every final score is at least its partial, so θ is a
    /// sound lower bound on the final k-th score throughout the run.
    ///
    /// A block is skipped, without I/O, when its cache-resident
    /// [`BlockSummary`](tks_postings::BlockSummary) proves one of:
    ///
    /// * **watermark** — `min_doc ≥ visible`: the block (and, doc IDs
    ///   being non-decreasing, every later block of the list) holds only
    ///   documents beyond the snapshot;
    /// * **score bound** — the block's bound plus the bounds of all
    ///   remaining terms cannot lift any document past θ (strictly), *and*
    ///   no currently tracked contender lies in the block's doc range (a
    ///   contender's partial score must stay exact, so its blocks are
    ///   scanned regardless).
    ///
    /// Both rules are strict, so the result — hits, scores, tie-break
    /// order — is bit-identical to
    /// [`disjunctive_ranked_exhaustive`](Self::disjunctive_ranked_exhaustive)
    /// (property-tested in `tests/blockmax_equivalence.rs`).  A block with
    /// no resident summary is simply scanned — which summarises it as a
    /// decode by-product for every later query.
    ///
    /// Returns `(hits, blocks_scanned, blocks_skipped)`.  Only *scanned*
    /// blocks are charged to the Figure 8(c) cost; a skip touches nothing
    /// but an in-memory summary.
    fn disjunctive_ranked(
        &self,
        terms: &[TermId],
        top_k: usize,
        visible: u64,
    ) -> (Vec<SearchHit>, u64, u64) {
        /// `f64` ordered by `total_cmp` so partial scores can live in the
        /// top-k min-heap.
        #[derive(PartialEq)]
        struct OrdScore(f64);
        impl Eq for OrdScore {}
        impl PartialOrd for OrdScore {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for OrdScore {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.0.total_cmp(&other.0)
            }
        }

        let stats = self.collection_stats();
        let plans = self.disjunctive_plans(terms, stats);
        if top_k == 0 || visible == 0 {
            // Nothing can be returned, so nothing needs scanning: every
            // block of every selected list is skipped outright.
            let mut lists: Vec<(u32, u64)> = plans.iter().map(|p| (p.list.0, p.blocks)).collect();
            lists.sort_unstable();
            lists.dedup();
            let skipped = lists.iter().map(|&(_, b)| b).sum();
            return (Vec::new(), 0, skipped);
        }
        // tail_ub[i] = Σ ub of plans i.. — what terms i.. can still add.
        let mut tail_ub = vec![0.0f64; plans.len() + 1];
        let mut running_ub = 0.0f64;
        for (slot, plan) in tail_ub.iter_mut().rev().skip(1).zip(plans.iter().rev()) {
            running_ub += plan.ub;
            *slot = running_ub;
        }

        let mut acc: HashMap<DocId, f64> = HashMap::new();
        let mut scanned: Vec<(u32, u64)> = Vec::new();
        let mut skipped = 0u64;
        let mut theta = f64::NEG_INFINITY;
        // Capacity is a hint only: `top_k` is caller-controlled and may
        // be absurd (usize::MAX in the fuzz suite), but the heap can
        // never hold more than the visible documents.
        let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<OrdScore>> =
            std::collections::BinaryHeap::with_capacity(
                top_k
                    .saturating_add(1)
                    .min((visible as usize).saturating_add(1)),
            );
        let mut contenders: Vec<u64> = Vec::new();

        for (i, plan) in plans.iter().enumerate() {
            let tail = tail_ub.get(i + 1).copied().unwrap_or(0.0);
            if i > 0 {
                // Freeze θ for this term: the k-th best accumulated
                // partial.  Partials only grow, so θ never decreases.
                if acc.len() >= top_k {
                    let mut vals: Vec<f64> = acc.values().copied().collect();
                    let (_, kth, _) = vals.select_nth_unstable_by(top_k - 1, |a, b| b.total_cmp(a));
                    theta = theta.max(*kth);
                }
                if theta > f64::NEG_INFINITY {
                    // Prune documents that provably cannot reach θ even
                    // with a maximal contribution from every remaining
                    // term.  (A pruned document that resurfaces in a later
                    // scanned block re-enters with an underestimated
                    // partial — harmless, since its true total is already
                    // known to fall below the final k-th score.)
                    let reach = plan.ub + tail;
                    acc.retain(|_, v| *v + reach >= theta);
                }
                // The survivors are this term's *contenders*: documents
                // whose partial score must stay exact, so blocks holding
                // them are scanned regardless of the score bound.
                contenders.clear();
                contenders.extend(acc.keys().map(|d| d.0));
                contenders.sort_unstable();
            }
            let mut b = 0u64;
            'blocks: while b < plan.blocks {
                if let Ok(Some(summary)) = self.store.cached_block_summary(plan.list, b) {
                    if summary.min_doc.0 >= visible {
                        // Docs are non-decreasing along the list: every
                        // later block is beyond the watermark too.
                        skipped += plan.blocks - b;
                        break 'blocks;
                    }
                    // For the first term θ lives in the heap; afterwards it
                    // is frozen per term (the heap would go stale once
                    // documents accumulate across terms).
                    let th = if i == 0 {
                        if heap.len() == top_k {
                            heap.peek().map(|r| r.0 .0).unwrap_or(f64::NEG_INFINITY)
                        } else {
                            f64::NEG_INFINITY
                        }
                    } else {
                        theta
                    };
                    if th > f64::NEG_INFINITY {
                        // The block cannot hold a posting of this term
                        // with tf above either the block-wide or the
                        // term-wide maximum, so the tighter of the two
                        // bounds its contribution.
                        let bound = self.config.ranking.score_bound(
                            summary.max_tf.min(plan.max_tf) as u32,
                            self.min_doc_len,
                            plan.df,
                            stats,
                        ) + tail;
                        // First term: nothing is tracked beyond this list's
                        // own scanned prefix, and a term's docs strictly
                        // increase, so no tracked document can reappear —
                        // no overlap check needed.  Later terms: a tracked
                        // contender inside the block forces a scan.
                        let overlap = i > 0 && {
                            let at = contenders.partition_point(|&d| d < summary.min_doc.0);
                            contenders.get(at).is_some_and(|&d| d <= summary.max_doc.0)
                        };
                        if bound < th && !overlap {
                            skipped += 1;
                            b += 1;
                            continue 'blocks;
                        }
                    }
                }
                // Scan (and, as a decode by-product, summarise) the block.
                let Ok(block) = self.store.decoded_block(plan.list, b) else {
                    break 'blocks;
                };
                scanned.push((plan.list.0, b));
                for p in block.iter() {
                    if p.doc.0 >= visible {
                        // Everything after this posting is ≥ visible too.
                        skipped += plan.blocks - b - 1;
                        break 'blocks;
                    }
                    if p.term_tag != plan.tag {
                        continue;
                    }
                    let doc_len = self.docs.get(p.doc.0 as usize).map(|m| m.len).unwrap_or(1);
                    let s = self
                        .config
                        .ranking
                        .score_term(p.tf as u32, doc_len, plan.df, stats);
                    if i == 0 {
                        // Each document appears at most once per term, so
                        // the heap never holds a stale duplicate.
                        acc.insert(p.doc, s);
                        if heap.len() < top_k {
                            heap.push(std::cmp::Reverse(OrdScore(s)));
                        } else if heap.peek().is_some_and(|r| s > r.0 .0) {
                            heap.pop();
                            heap.push(std::cmp::Reverse(OrdScore(s)));
                        }
                    } else {
                        match acc.entry(p.doc) {
                            std::collections::hash_map::Entry::Occupied(e) => {
                                *e.into_mut() += s;
                            }
                            std::collections::hash_map::Entry::Vacant(slot) => {
                                // A document first seen here tops out at
                                // `s` plus every remaining term's bound;
                                // strictly below θ it can never reach the
                                // final top-k (the block-skip argument,
                                // applied per posting), so tracking it
                                // would only bloat the accumulator and
                                // the contender set.
                                if theta == f64::NEG_INFINITY || s + tail >= theta {
                                    slot.insert(s);
                                }
                            }
                        }
                    }
                }
                b += 1;
            }
        }
        // Figure 8(c) charges *distinct* blocks: terms sharing a merged
        // list read each block once (the decoded-block LRU makes repeat
        // visits cache hits).
        scanned.sort_unstable();
        scanned.dedup();
        let mut hits: Vec<SearchHit> = acc
            .into_iter()
            .map(|(doc, score)| SearchHit { doc, score })
            .collect();
        hits.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.doc.cmp(&b.doc))
        });
        hits.truncate(top_k);
        (hits, scanned.len() as u64, skipped)
    }

    /// The reference disjunctive evaluator: scores *every* posting of
    /// every selected list and charges every block — the paper's original
    /// full-scan cost model.  Kept public as the correctness oracle for
    /// the block-max evaluator (the equivalence property tests assert
    /// bit-identical results against it) and as the baseline the
    /// `at_scale` bench compares against.  `terms` must be sorted and
    /// deduplicated (as [`Query`] execution always provides them);
    /// duplicates would double-score.
    ///
    /// Terms are processed in the same canonical bound-descending order as
    /// the block-max evaluator, so per-document floating-point sums are
    /// accumulated in an identical sequence and the two evaluators'
    /// results can be compared for bit-equality.
    ///
    /// Returns the hits and the total posting-list blocks of the scanned
    /// lists.
    pub fn disjunctive_ranked_exhaustive(
        &self,
        terms: &[TermId],
        top_k: usize,
        visible: u64,
    ) -> (Vec<SearchHit>, u64) {
        let stats = self.collection_stats();
        let mut scores: HashMap<DocId, f64> = HashMap::new();
        let mut lists: Vec<u32> = terms
            .iter()
            .map(|&t| self.config.assignment.list_of(t).0)
            .collect();
        lists.sort_unstable();
        lists.dedup();
        let blocks: u64 = lists
            .iter()
            .map(|&l| self.store.num_blocks(ListId(l)).unwrap_or(0))
            .sum();
        for plan in self.disjunctive_plans(terms, stats) {
            let (list, term, df) = (plan.list, plan.term, plan.df);
            let Ok(postings) = self.store.postings_for_term(list, term) else {
                continue;
            };
            for p in postings {
                if p.doc.0 >= visible {
                    continue;
                }
                let doc_len = self.docs.get(p.doc.0 as usize).map(|m| m.len).unwrap_or(1);
                let s = self
                    .config
                    .ranking
                    .score_term(p.tf as u32, doc_len, df, stats);
                *scores.entry(p.doc).or_insert(0.0) += s;
            }
        }
        let mut hits: Vec<SearchHit> = scores
            .into_iter()
            .map(|(doc, score)| SearchHit { doc, score })
            .collect();
        hits.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.doc.cmp(&b.doc))
        });
        hits.truncate(top_k);
        (hits, blocks)
    }

    /// Whether every WORM device's tamper log is empty.  One of the two
    /// conjuncts behind a response's `trusted` flag (the other is a
    /// clean commit-chain recheck); public so audit tooling like
    /// `tks archive verify` can report it separately.
    pub fn tamper_logs_clean(&self) -> bool {
        self.store.fs().device().tamper_log().is_empty()
            && self.doc_fs.device().tamper_log().is_empty()
            && self
                .positions
                .as_ref()
                .is_none_or(|p| p.fs().device().tamper_log().is_empty())
    }

    /// Conjunctive search over term IDs, returning the matching documents
    /// and the distinct index blocks read (the Figure 8(c) cost unit).
    /// Uses zigzag joins over jump indexes when enabled, else scan-merge.
    pub fn conjunctive_terms(&self, terms: &[TermId]) -> Result<(Vec<DocId>, u64), SearchError> {
        if terms.is_empty() {
            return Ok((Vec::new(), 0));
        }
        if !self.jump.is_empty() {
            let mut cursors: Vec<Box<dyn DocCursor + '_>> = Vec::with_capacity(terms.len());
            for &term in terms {
                let list = self.config.assignment.list_of(term);
                let tag = self.store.tag_of(list, term)?;
                let Some(tag) = tag else {
                    return Ok((Vec::new(), 0));
                };
                cursors.push(Box::new(JumpCursor::new(
                    &self.jump[list.0 as usize],
                    Some(tag),
                    self.doc_freq(term),
                )));
            }
            return Ok(zigzag_join_multi(cursors));
        }
        // Scan-merge fallback.  The cost is whole merged lists, charged up
        // front for every distinct list exactly as materialising scans
        // would (Figure 8(c) accounting is unchanged by the streaming
        // rewrite below).
        let mut lists: Vec<u32> = terms
            .iter()
            .map(|&t| self.config.assignment.list_of(t).0)
            .collect();
        lists.sort_unstable();
        lists.dedup();
        let mut blocks = 0u64;
        for &l in &lists {
            blocks += self.store.num_blocks(ListId(l))?;
        }
        // Seed the accumulator from the rarest term, then intersect the
        // remaining terms' lists into it one decoded block at a time —
        // never materialising another term's full doc vector.  Each term's
        // docs are strictly increasing, so this is a sorted-set
        // intersection and the result is independent of term order.
        let mut order: Vec<TermId> = terms.to_vec();
        order.sort_by_key(|&t| self.doc_freq(t));
        let Some((&rarest, rest)) = order.split_first() else {
            return Ok((Vec::new(), blocks));
        };
        let rarest_list = self.config.assignment.list_of(rarest);
        let mut acc: Vec<DocId> = self
            .store
            .postings_for_term(rarest_list, rarest)?
            .map(|p| p.doc)
            .collect();
        for &term in rest {
            if acc.is_empty() {
                break;
            }
            let list = self.config.assignment.list_of(term);
            let Some(tag) = self.store.tag_of(list, term)? else {
                return Ok((Vec::new(), blocks));
            };
            let mut next: Vec<DocId> = Vec::with_capacity(acc.len());
            let mut ai = 0usize;
            'scan: for block in self.store.block_reader(list)? {
                for p in block.iter().filter(|p| p.term_tag == tag) {
                    // Gallop the (short) accumulator forward to this doc.
                    ai += acc
                        .get(ai..)
                        .map(|rest| rest.partition_point(|&d| d < p.doc))
                        .unwrap_or(0);
                    match acc.get(ai) {
                        Some(&d) if d == p.doc => {
                            next.push(d);
                            ai += 1;
                        }
                        Some(_) => {}
                        None => break 'scan,
                    }
                }
            }
            acc = next;
        }
        Ok((acc, blocks))
    }

    /// Documents committed in `[from, to]`, answered from the trustworthy
    /// commit-time jump index (paper §5).
    pub fn docs_in_time_range(
        &self,
        from: Timestamp,
        to: Timestamp,
    ) -> Result<Vec<DocId>, SearchError> {
        if from > to {
            return Ok(Vec::new());
        }
        let mut out = Vec::new();
        if let Some(pos) = self.commit_times.find_geq(from.0)? {
            for e in self.commit_times.iter_from(pos) {
                if e.jump_key() > to.0 {
                    break;
                }
                out.push(e.doc());
            }
        }
        Ok(out)
    }

    /// The one implementation of phrase matching.  Returns the matching
    /// documents (ascending) and the blocks read: the conjunctive
    /// candidate join's blocks plus one read per position record fetched.
    ///
    /// Completeness note: candidates come from the trustworthy conjunctive
    /// join, so a committed phrase occurrence can only be missed if the
    /// positional sidecar is tampered with — which the position reader and
    /// the lockstep audit surface as evidence.
    fn phrase_docs(&self, phrase: &str, visible: u64) -> Result<(Vec<DocId>, u64), SearchError> {
        let Some(positions) = &self.positions else {
            return Err(SearchError::NotPositional);
        };
        let tokens = tokenizer::tokenize(phrase);
        if tokens.is_empty() {
            return Ok((Vec::new(), 0));
        }
        let mut terms = Vec::with_capacity(tokens.len());
        for t in &tokens {
            match self.term_of(t) {
                Some(id) => terms.push(id),
                None => return Ok((Vec::new(), 0)),
            }
        }
        let mut distinct = terms.clone();
        distinct.sort_unstable();
        distinct.dedup();
        let (candidates, mut blocks) = self.conjunctive_terms(&distinct)?;
        let mut out = Vec::new();
        'docs: for doc in candidates {
            if doc.0 >= visible {
                continue;
            }
            let mut tok_pos = Vec::with_capacity(terms.len());
            for &term in &terms {
                let list = self.config.assignment.list_of(term);
                let Some(ord) = self.store.posting_ordinal(list, term, doc)? else {
                    continue 'docs;
                };
                let ps = positions.read(list.0, ord as usize).map_err(|e| {
                    SearchError::Tamper(TamperEvidence {
                        invariant: "position-sidecar",
                        detail: e.to_string(),
                    })
                })?;
                blocks += 1;
                tok_pos.push(ps);
            }
            if crate::positions::phrase_match(&tok_pos) {
                out.push(doc);
            }
        }
        Ok((out, blocks))
    }

    /// Deep audit: everything [`audit`](Self::audit) checks, plus
    /// posting-vs-document verification (the §5 countermeasure) — every
    /// posting must reference a committed document that actually contains
    /// the keyword.  Requires stored documents; O(total postings).
    pub fn audit_deep(
        &self,
    ) -> Result<(AuditReport, Vec<crate::rank_attack::PhantomPosting>), SearchError> {
        let report = self.audit();
        let phantoms = crate::rank_attack::detect_phantom_postings(self)?;
        Ok((report, phantoms))
    }

    /// Full audit: posting-list monotonicity, jump-index structure,
    /// commit-time index structure, and device tamper logs.
    pub fn audit(&self) -> AuditReport {
        let mut report = AuditReport {
            commit_time_ok: true,
            ..AuditReport::default()
        };
        for l in 0..self.store.num_lists() as u32 {
            let list = ListId(l);
            if let Ok(Some(pos)) = self.store.audit_monotonic(list) {
                report.list_violations.push((list, pos));
            }
            if let (Ok(count), Ok(raw), Ok(quarantined)) = (
                self.store.len(list),
                self.store.raw_len(list),
                self.store.quarantined_bytes(list),
            ) {
                // Quarantined torn-tail bytes are accounted dead weight,
                // not adversarial appends: raw length must equal logical
                // postings plus exactly the quarantined residue.
                let logical = count * tks_postings::POSTING_SIZE as u64;
                if logical + quarantined != raw {
                    report
                        .length_mismatches
                        .push((list, logical + quarantined, raw));
                }
            }
            if let (Some(ps), Ok(count)) = (&self.positions, self.store.len(list)) {
                if ps.num_records(l) as u64 != count {
                    report.position_lockstep_violations.push(list);
                }
            }
        }
        for (l, idx) in self.jump.iter().enumerate() {
            if let Err(t) = idx.audit() {
                report
                    .jump_violations
                    .push((ListId(l as u32), t.to_string()));
            }
        }
        if self.commit_times.audit().is_err() {
            report.commit_time_ok = false;
        }
        report.device_tamper_attempts =
            self.store.fs().device().tamper_log().len() + self.doc_fs.device().tamper_log().len();
        report
    }
}

// All tests go through the unified `execute` path.
#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> SearchEngine {
        SearchEngine::new(EngineConfig {
            assignment: MergeAssignment::uniform(8),
            cache_bytes: 1 << 20,
            block_size: 512,
            ..Default::default()
        })
        .unwrap()
    }

    fn engine_with_jump() -> SearchEngine {
        SearchEngine::new(EngineConfig {
            assignment: MergeAssignment::uniform(8),
            cache_bytes: 1 << 20,
            block_size: 1024,
            jump: Some(JumpConfig::new(1024, 4, 1 << 32)),
            ..Default::default()
        })
        .unwrap()
    }

    #[test]
    fn index_and_disjunctive_search() {
        let mut e = engine();
        let d0 = e.add_document("the quick brown fox", Timestamp(1)).unwrap();
        let d1 = e.add_document("the lazy dog sleeps", Timestamp(2)).unwrap();
        let d2 = e
            .add_document("quick quick quick dog", Timestamp(3))
            .unwrap();
        let hits = e
            .execute(&Query::disjunctive("quick", 10))
            .map(|r| r.hits)
            .unwrap_or_default();
        let docs: Vec<DocId> = hits.iter().map(|h| h.doc).collect();
        assert!(docs.contains(&d0) && docs.contains(&d2) && !docs.contains(&d1));
        // d2 mentions "quick" three times → ranks above d0.
        assert_eq!(hits[0].doc, d2);
    }

    #[test]
    fn conjunctive_search_scan_and_jump_agree() {
        let mut plain = engine();
        let mut jumped = engine_with_jump();
        let docs = [
            "alpha beta gamma",
            "alpha beta",
            "beta gamma delta",
            "alpha gamma",
            "alpha beta gamma delta",
        ];
        for (i, d) in docs.iter().enumerate() {
            plain.add_document(d, Timestamp(i as u64)).unwrap();
            jumped.add_document(d, Timestamp(i as u64)).unwrap();
        }
        let a = plain
            .execute(&Query::conjunctive("alpha beta gamma"))
            .map(|r| r.docs())
            .unwrap();
        let b = jumped
            .execute(&Query::conjunctive("alpha beta gamma"))
            .map(|r| r.docs())
            .unwrap();
        assert_eq!(a, vec![DocId(0), DocId(4)]);
        assert_eq!(a, b);
        // Unknown keyword → empty.
        assert!(plain
            .execute(&Query::conjunctive("alpha zeta"))
            .map(|r| r.docs())
            .unwrap()
            .is_empty());
        assert!(jumped
            .execute(&Query::conjunctive("alpha zeta"))
            .map(|r| r.docs())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn document_text_roundtrip() {
        let mut e = engine();
        let d = e.add_document("retain this record", Timestamp(5)).unwrap();
        assert_eq!(e.document_text(d).unwrap(), "retain this record");
        assert_eq!(e.document_timestamp(d), Some(Timestamp(5)));
        assert_eq!(e.document_text(DocId(99)), None);
    }

    #[test]
    fn timestamps_must_be_non_decreasing() {
        let mut e = engine();
        e.add_document("a", Timestamp(10)).unwrap();
        let err = e.add_document("b", Timestamp(9)).unwrap_err();
        assert!(matches!(err, SearchError::NonMonotonicTimestamp { .. }));
        // Equal timestamps are fine (same-second commits).
        e.add_document("c", Timestamp(10)).unwrap();
        assert_eq!(e.num_docs(), 2);
    }

    #[test]
    fn time_range_queries() {
        let mut e = engine();
        for i in 0..10u64 {
            e.add_document(&format!("memo number {i}"), Timestamp(100 + i * 10))
                .unwrap();
        }
        let docs = e
            .docs_in_time_range(Timestamp(120), Timestamp(150))
            .unwrap();
        assert_eq!(docs, vec![DocId(2), DocId(3), DocId(4), DocId(5)]);
        assert!(e
            .docs_in_time_range(Timestamp(500), Timestamp(600))
            .unwrap()
            .is_empty());
        assert!(e
            .docs_in_time_range(Timestamp(150), Timestamp(120))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn conjunctive_in_time_range() {
        let mut e = engine();
        e.add_document("stewart waksal imclone trade", Timestamp(1000))
            .unwrap();
        e.add_document("unrelated waksal note", Timestamp(1500))
            .unwrap();
        e.add_document("stewart waksal imclone memo", Timestamp(2000))
            .unwrap();
        let hits = e
            .execute(&Query::conjunctive_in_range(
                "stewart waksal imclone",
                Timestamp(900),
                Timestamp(1500),
            ))
            .map(|r| r.docs())
            .unwrap();
        assert_eq!(hits, vec![DocId(0)]);
    }

    #[test]
    fn audit_clean_engine() {
        let mut e = engine_with_jump();
        for i in 0..30u64 {
            e.add_document(&format!("record {i} compliance text"), Timestamp(i))
                .unwrap();
        }
        let report = e.audit();
        assert!(report.is_clean(), "{report:?}");
    }

    #[test]
    fn audit_detects_raw_list_tampering() {
        let mut e = engine();
        e.add_document("target evidence document", Timestamp(1))
            .unwrap();
        // A later document containing the same keyword guarantees the
        // keyword's list ends at a doc ID greater than the forged one.
        e.add_document("more evidence material", Timestamp(2))
            .unwrap();
        // Mala appends an out-of-order posting to some list's raw file.
        let term = e.term_of("evidence").unwrap();
        let list = e.config().assignment.list_of(term);
        let name = format!("lists/{}", list.0);
        let evil = tks_postings::encode_posting(Posting::new(DocId(0), 0, 1));
        let file = e.list_store().fs().open(&name).unwrap();
        e.list_store_mut().fs_mut().append(file, &evil).unwrap();
        // The raw append is on WORM now — but the audit flags the list.
        let report = e.audit();
        assert!(report.list_violations.iter().any(|&(l, _)| l == list));
    }

    #[test]
    fn io_stats_accumulate_and_merging_reduces_io() {
        // Unmerged vs merged: with a tiny cache, per-term lists miss
        // constantly; a merged assignment with as many lists as cache
        // blocks stays hot.
        let mk = |assignment: MergeAssignment| {
            SearchEngine::new(EngineConfig {
                assignment,
                cache_bytes: 16 * 512, // 16 blocks
                block_size: 512,
                store_documents: false,
                ..Default::default()
            })
            .unwrap()
        };
        let mut unmerged = mk(MergeAssignment::unmerged(4096));
        let mut merged = mk(MergeAssignment::uniform(16));
        // Synthetic docs with many distinct terms each.
        for doc in 0..200u64 {
            let terms: Vec<(TermId, u32)> = (0..40)
                .map(|j| (TermId((doc as u32 * 7 + j * 13) % 4000), 1))
                .collect();
            let mut sorted = terms.clone();
            sorted.sort_unstable_by_key(|&(t, _)| t);
            sorted.dedup_by_key(|&mut (t, _)| t);
            unmerged
                .add_document_terms(&sorted, Timestamp(doc), None)
                .unwrap();
            merged
                .add_document_terms(&sorted, Timestamp(doc), None)
                .unwrap();
        }
        let u = unmerged.io_stats().total_ios();
        let m = merged.io_stats().total_ios();
        assert!(
            m * 3 < u,
            "merged {m} I/Os should be far below unmerged {u}"
        );
    }

    #[test]
    fn vocab_overflow_rejected_atomically() {
        let mut e = SearchEngine::new(EngineConfig {
            assignment: MergeAssignment::unmerged(4),
            ..Default::default()
        })
        .unwrap();
        let ok = [(TermId(0), 1), (TermId(3), 1)];
        e.add_document_terms(&ok, Timestamp(1), None).unwrap();
        let bad = [(TermId(1), 1), (TermId(9), 1)];
        let err = e.add_document_terms(&bad, Timestamp(2), None).unwrap_err();
        assert!(matches!(
            err,
            SearchError::VocabOverflow { term: TermId(9) }
        ));
        // Nothing from the failed document reached the index.
        assert_eq!(e.doc_freq(TermId(1)), 0);
        assert_eq!(e.num_docs(), 1);
    }

    fn positional_engine() -> SearchEngine {
        SearchEngine::new(EngineConfig {
            assignment: MergeAssignment::uniform(8),
            positional: true,
            block_size: 512,
            ..Default::default()
        })
        .unwrap()
    }

    #[test]
    fn phrase_search_requires_adjacency() {
        let mut e = positional_engine();
        let hit = e
            .add_document(
                "board approved the earnings restatement draft",
                Timestamp(1),
            )
            .unwrap();
        let near_miss = e
            .add_document(
                "earnings were strong; restatement of goals followed",
                Timestamp(2),
            )
            .unwrap();
        let phrase = e
            .execute(&Query::phrase("earnings restatement"))
            .map(|r| r.docs())
            .unwrap();
        assert_eq!(phrase, vec![hit]);
        // The conjunctive query still finds both.
        let conj = e
            .execute(&Query::conjunctive("earnings restatement"))
            .map(|r| r.docs())
            .unwrap();
        assert_eq!(conj, vec![hit, near_miss]);
        // Longer phrase, repeated words, and misses.
        assert_eq!(
            e.execute(&Query::phrase("the earnings restatement draft"))
                .map(|r| r.docs())
                .unwrap(),
            vec![hit]
        );
        assert!(e
            .execute(&Query::phrase("restatement earnings"))
            .map(|r| r.docs())
            .unwrap()
            .is_empty());
        assert!(e
            .execute(&Query::phrase("unknown words entirely"))
            .map(|r| r.docs())
            .unwrap()
            .is_empty());
        assert!(e
            .execute(&Query::phrase(""))
            .map(|r| r.docs())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn phrase_search_with_repeated_tokens() {
        let mut e = positional_engine();
        let d = e
            .add_document("buffalo buffalo buffalo graze", Timestamp(1))
            .unwrap();
        assert_eq!(
            e.execute(&Query::phrase("buffalo buffalo buffalo"))
                .map(|r| r.docs())
                .unwrap(),
            vec![d]
        );
        assert!(e
            .execute(&Query::phrase("buffalo graze buffalo"))
            .map(|r| r.docs())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn phrase_on_non_positional_engine_errors() {
        let mut e = engine();
        e.add_document("a b", Timestamp(1)).unwrap();
        assert!(matches!(
            e.execute(&Query::phrase("a b")).map(|r| r.docs()),
            Err(SearchError::NotPositional)
        ));
    }

    #[test]
    fn positional_engine_survives_recovery() {
        let mut e = positional_engine();
        let hit = e
            .add_document("exact phrase match here", Timestamp(1))
            .unwrap();
        e.add_document("phrase exact no match", Timestamp(2))
            .unwrap();
        // Pre-tokenised docs on a positional engine get empty records and
        // never match phrases, but keep lockstep.
        e.add_document_terms(&[(TermId(0), 1)], Timestamp(3), None)
            .unwrap();
        let config = e.config().clone();
        assert!(e.audit().is_clean());
        let r = SearchEngine::recover(e.into_parts(), config).unwrap();
        assert_eq!(
            r.execute(&Query::phrase("exact phrase"))
                .map(|r| r.docs())
                .unwrap(),
            vec![hit]
        );
        assert!(r.audit().is_clean());
    }

    #[test]
    fn positional_lockstep_tampering_detected() {
        let mut e = positional_engine();
        e.add_document("target evidence record", Timestamp(1))
            .unwrap();
        e.add_document("more evidence here", Timestamp(2)).unwrap();
        // Mala appends a raw posting without a position record.
        let term = e.term_of("evidence").unwrap();
        let list = e.config().assignment.list_of(term);
        let evil = tks_postings::encode_posting(Posting::new(DocId(1), 0, 1));
        let f = e
            .list_store()
            .fs()
            .open(&format!("lists/{}", list.0))
            .unwrap();
        e.list_store_mut().fs_mut().append(f, &evil).unwrap();
        let report = e.audit();
        assert!(!report.is_clean());
    }

    #[test]
    fn oversized_token_is_a_typed_error_and_leaves_dictionary_parseable() {
        let mut e = engine();
        e.add_document("normal prefix", Timestamp(1)).unwrap();
        let huge = "x".repeat(70 * 1024);
        match e.intern(&huge) {
            Err(SearchError::TokenTooLong { len }) => assert_eq!(len, 70 * 1024),
            other => panic!("expected TokenTooLong, got {other:?}"),
        }
        match e.add_document(&huge, Timestamp(2)) {
            Err(SearchError::TokenTooLong { .. }) => {}
            other => panic!("expected TokenTooLong, got {other:?}"),
        }
        // The rejection happened before any dictionary bytes reached
        // WORM: later commits succeed and the dictionary replays.
        e.add_document("normal suffix", Timestamp(3)).unwrap();
        let config = e.config().clone();
        let r = SearchEngine::recover(e.into_parts(), config).unwrap();
        assert_eq!(r.num_docs(), 2);
        assert!(r.chain_mismatch().is_none());
        assert_eq!(r.vocab_size(), 3); // normal, prefix, suffix
    }

    #[test]
    fn chain_heads_are_per_watermark_and_survive_recovery() {
        let mut e = engine();
        let genesis = e.chain_head();
        let mut heads = vec![genesis];
        for (i, text) in ["alpha beta", "beta gamma", "gamma delta"]
            .iter()
            .enumerate()
        {
            e.add_document(text, Timestamp(10 + i as u64)).unwrap();
            let head = e.chain_head();
            assert!(!heads.contains(&head), "every commit must advance the head");
            heads.push(head);
        }
        // Watermark-indexed heads are stable: the head at watermark w
        // never changes once commit w lands.
        for (w, expected) in heads.iter().enumerate() {
            assert_eq!(e.chain_head_at(w as u64), Some(*expected));
        }
        let config = e.config().clone();
        let r = SearchEngine::recover(e.into_parts(), config).unwrap();
        assert!(r.chain_mismatch().is_none());
        assert_eq!(r.chain_head(), heads[3], "recomputed head must match");
        for (w, expected) in heads.iter().enumerate() {
            assert_eq!(r.chain_head_at(w as u64), Some(*expected));
        }
    }

    /// An adversary who edits a persisted image *and* regenerates its
    /// integrity footer gets past `load_fs` — only the chain recompute
    /// against the persisted links catches the edit, and the engine
    /// must refuse `trusted` from then on.
    #[test]
    fn reforged_image_tamper_surfaces_as_chain_mismatch() {
        let mut e = engine();
        e.add_document("merger escrow instructions", Timestamp(100))
            .unwrap();
        e.add_document("quarterly retention audit", Timestamp(200))
            .unwrap();
        let config = e.config().clone();
        let mut parts = e.into_parts();
        let mut img = tks_worm::save_fs(&parts.doc_fs).unwrap();
        let at = img.windows(6).position(|w| w == b"merger").unwrap();
        img[at] ^= 0x01;
        let body = img.len() - 32;
        let footer = tks_worm::sha256(&img[..body]);
        img[body..].copy_from_slice(&footer);
        parts.doc_fs = tks_worm::load_fs(&img).expect("reforged footer defeats load_fs");
        let r = SearchEngine::recover(parts, config).unwrap();
        assert!(
            r.chain_mismatch().is_some(),
            "chain recompute must flag the edit"
        );
        let resp = r.execute(&Query::disjunctive("retention", 5)).unwrap();
        assert!(!resp.trusted, "a mismatched chain can never be trusted");
    }

    #[test]
    fn recovery_roundtrip_preserves_search_results() {
        let mut e = engine_with_jump();
        let docs = [
            "alpha beta gamma compliance",
            "beta gamma delta records",
            "alpha gamma retention",
            "alpha beta gamma delta audit",
        ];
        for (i, d) in docs.iter().enumerate() {
            e.add_document(d, Timestamp(100 + i as u64)).unwrap();
        }
        let config = e.config().clone();
        let disjunctive_before = e
            .execute(&Query::disjunctive("alpha gamma", 10))
            .map(|r| r.hits)
            .unwrap_or_default();
        let conjunctive_before = e
            .execute(&Query::conjunctive("alpha beta gamma"))
            .map(|r| r.docs())
            .unwrap();
        let range_before = e
            .docs_in_time_range(Timestamp(101), Timestamp(102))
            .unwrap();

        let r = SearchEngine::recover(e.into_parts(), config).unwrap();
        assert_eq!(r.num_docs(), 4);
        assert_eq!(r.vocab_size(), 8);
        assert_eq!(
            r.execute(&Query::disjunctive("alpha gamma", 10))
                .map(|r| r.hits)
                .unwrap_or_default(),
            disjunctive_before
        );
        assert_eq!(
            r.execute(&Query::conjunctive("alpha beta gamma"))
                .map(|r| r.docs())
                .unwrap(),
            conjunctive_before
        );
        assert_eq!(
            r.docs_in_time_range(Timestamp(101), Timestamp(102))
                .unwrap(),
            range_before
        );
        assert_eq!(r.document_text(DocId(0)).unwrap(), docs[0]);
        assert!(r.audit().is_clean());
        // The recovered engine keeps working.
        let mut r = r;
        let d = r
            .add_document("alpha epsilon new record", Timestamp(200))
            .unwrap();
        assert_eq!(d, DocId(4));
        assert!(r
            .execute(&Query::conjunctive("alpha epsilon"))
            .map(|r| r.docs())
            .unwrap()
            .contains(&d));
    }

    #[test]
    fn recovery_refuses_tampered_lists() {
        let mut e = engine();
        e.add_document("evidence one", Timestamp(1)).unwrap();
        e.add_document("evidence two", Timestamp(2)).unwrap();
        let config = e.config().clone();
        let term = e.term_of("evidence").unwrap();
        let list = config.assignment.list_of(term);
        let name = format!("lists/{}", list.0);
        let evil = tks_postings::encode_posting(Posting::new(DocId(0), 0, 1));
        let f = e.list_store().fs().open(&name).unwrap();
        e.list_store_mut().fs_mut().append(f, &evil).unwrap();
        let err = SearchEngine::recover(e.into_parts(), config).unwrap_err();
        assert!(err.to_string().contains("recovery refused"), "{err}");
    }

    #[test]
    fn recovery_refuses_phantom_doc_postings() {
        let mut e = engine();
        e.add_document("ledger entry", Timestamp(1)).unwrap();
        let config = e.config().clone();
        let term = e.term_of("ledger").unwrap();
        let list = config.assignment.list_of(term);
        // A forged posting for a document that was never committed —
        // monotone, registered tag, but no metadata record.
        let evil = tks_postings::encode_posting(Posting::new(DocId(50), 0, 1));
        let f = e
            .list_store()
            .fs()
            .open(&format!("lists/{}", list.0))
            .unwrap();
        e.list_store_mut().fs_mut().append(f, &evil).unwrap();
        let err = SearchEngine::recover(e.into_parts(), config).unwrap_err();
        assert!(err.to_string().contains("no metadata record"), "{err}");
    }

    #[test]
    fn torn_commit_fails_invisibly_and_recovery_quarantines_residue() {
        // End-to-end crash simulation: a fault kills the write path
        // mid-document, the live engine stays truthful, and recovery of
        // the raw devices converges to the last whole document with the
        // residue quarantined and reported.
        let mut e = engine();
        e.add_document("alpha beta", Timestamp(1)).unwrap();
        e.add_document("beta gamma", Timestamp(2)).unwrap();
        let config = e.config().clone();
        let before = e.execute(&Query::conjunctive("beta")).unwrap().docs();

        // Tear the posting-store device partway into doc 2's entries.
        let offset = e.list_store().fs().device().bytes_committed() + 3;
        e.list_store_mut()
            .fs_mut()
            .arm_faults(tks_worm::FaultPolicy::torn_at_offset(offset));
        e.add_document("alpha beta gamma", Timestamp(3))
            .unwrap_err();
        // The failed document never becomes visible, and the residue its
        // commit left on WORM is counted immediately: 16 bytes of record
        // text (committed before the fault) plus the 3 torn store bytes.
        assert_eq!(e.num_docs(), 2);
        assert_eq!(e.quarantined_bytes(), 19);
        assert!(
            e.execute(&Query::conjunctive("beta"))
                .unwrap()
                .quarantined_bytes
                > 0
        );

        // Restart: surface device-committed bytes the fs metadata missed,
        // then recover.
        let mut parts = e.into_parts();
        parts.store_fs.disarm_faults();
        parts.store_fs.crash_recover().unwrap();
        parts.doc_fs.crash_recover().unwrap();
        let r = SearchEngine::recover(parts, config).unwrap();
        assert_eq!(r.num_docs(), 2);
        let report = r.recovery_report();
        assert!(!report.is_clean(), "torn residue must be reported");
        // Recovery sees the same residue the live engine counted: the
        // orphaned text file plus the torn store bytes.
        assert_eq!(report.doc_text_bytes, 16);
        assert_eq!(report.total_quarantined_bytes(), 19);
        let resp = r.execute(&Query::conjunctive("beta")).unwrap();
        assert_eq!(resp.docs(), before);
        assert_eq!(resp.quarantined_bytes, 19);
        assert!(resp.trusted, "a torn tail is not tamper evidence");
        assert!(r.audit().is_clean(), "quarantined bytes are accounted");
    }

    #[test]
    fn recovery_quarantines_whole_postings_of_uncommitted_doc() {
        // Whole index entries whose DOCMETA record never landed — the
        // crash-after-postings-before-commit-point shape.  They carry the
        // next document id, sit at the list tail, and are quarantined.
        let mut e = engine();
        e.add_document("ledger entry", Timestamp(1)).unwrap();
        let config = e.config().clone();
        let term = e.term_of("ledger").unwrap();
        let list = config.assignment.list_of(term);
        let tag = e.list_store().tag_of(list, term).unwrap().unwrap();
        let orphan = tks_postings::encode_posting(Posting::new(DocId(1), tag, 1));
        let f = e
            .list_store()
            .fs()
            .open(&format!("lists/{}", list.0))
            .unwrap();
        e.list_store_mut().fs_mut().append(f, &orphan).unwrap();
        let r = SearchEngine::recover(e.into_parts(), config).unwrap();
        assert_eq!(r.num_docs(), 1);
        assert_eq!(r.recovery_report().list_bytes, vec![(list, 8)]);
        // The quarantined posting never matches queries.
        assert_eq!(
            r.execute(&Query::conjunctive("ledger")).unwrap().docs(),
            vec![DocId(0)]
        );
        // doc_freq counts only surviving postings.
        assert_eq!(r.doc_freq(term), 1);
        assert!(r.audit().is_clean());
    }

    #[test]
    fn recovery_quarantines_torn_docmeta_record() {
        // The commit point itself torn: a partial DOCMETA record means
        // the last document never committed — its index entries are
        // quarantined along with the partial record.
        let mut e = engine();
        e.add_document("alpha beta", Timestamp(1)).unwrap();
        e.add_document("gamma delta", Timestamp(2)).unwrap();
        let config = e.config().clone();
        let mut parts = e.into_parts();
        // Chop the doc-metadata stream mid-record by rebuilding it as a
        // torn copy: simulate with a device-level tear on a fresh commit.
        // Simpler equivalent: append a partial record directly.
        let f = parts.doc_fs.open(DOCMETA_FILE).unwrap();
        parts.doc_fs.append(f, &[0x09, 0x00, 0x00]).unwrap();
        let r = SearchEngine::recover(parts, config).unwrap();
        assert_eq!(r.num_docs(), 2);
        assert_eq!(r.recovery_report().docmeta_tail_bytes, 3);
        assert_eq!(r.quarantined_bytes(), 3);
    }

    #[test]
    fn recovery_quarantines_torn_term_dictionary_tail() {
        let mut e = engine();
        e.add_document("alpha beta", Timestamp(1)).unwrap();
        let config = e.config().clone();
        let mut parts = e.into_parts();
        // A torn intern: length prefix promises more bytes than exist.
        let f = parts.doc_fs.open(TERMS_FILE).unwrap();
        parts.doc_fs.append(f, &[0x05, 0x00, b'g', b'a']).unwrap();
        let r = SearchEngine::recover(parts, config).unwrap();
        assert_eq!(r.recovery_report().terms_tail_bytes, 4);
        assert_eq!(r.vocab_size(), 2);
        assert_eq!(
            r.execute(&Query::conjunctive("alpha")).unwrap().docs(),
            vec![DocId(0)]
        );
    }

    #[test]
    fn recovery_refuses_wrong_assignment() {
        let mut e = engine();
        e.add_document("some text", Timestamp(1)).unwrap();
        let err = SearchEngine::recover(
            e.into_parts(),
            EngineConfig {
                assignment: MergeAssignment::uniform(99),
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(err.to_string().contains("recovery refused"), "{err}");
    }

    #[test]
    fn empty_queries_and_empty_engine() {
        let e = engine();
        assert!(e
            .execute(&Query::disjunctive("anything", 5))
            .map(|r| r.hits)
            .unwrap_or_default()
            .is_empty());
        assert!(e
            .execute(&Query::conjunctive("anything"))
            .map(|r| r.docs())
            .unwrap()
            .is_empty());
        let mut e = engine();
        e.add_document("something", Timestamp(0)).unwrap();
        assert!(e
            .execute(&Query::disjunctive("", 5))
            .map(|r| r.hits)
            .unwrap_or_default()
            .is_empty());
        assert_eq!(e.conjunctive_terms(&[]).unwrap().0, Vec::<DocId>::new());
    }
}
