//! The analytic workload-cost model of paper §3.1 (Eq. 1).
//!
//! Disjunctive keyword queries are answered by scanning the posting lists
//! of the query terms, so with per-term list lengths `ti` and query
//! frequencies `qi` the unmerged workload cost is `Σ ti·qi`.  Under a
//! merge assignment `A₁ … A_M` each term's scan becomes a scan of its
//! whole merged list:
//!
//! ```text
//! Q = Σ_{i=1..M} ( Σ_{k∈A_i} t_k ) · ( Σ_{k∈A_i} q_k )        (Eq. 1)
//! ```
//!
//! Figures 3(c)–3(i) are all derived from these quantities; this module
//! computes them exactly (integer arithmetic, no sampling error).

use crate::merge::MergeAssignment;
use tks_postings::TermId;

/// Unmerged workload cost `Σ ti·qi` — the denominator of every Figure 3
/// ratio.
pub fn unmerged_workload_cost(ti: &[u64], qi: &[u64]) -> u128 {
    ti.iter()
        .zip(qi)
        .map(|(&t, &q)| t as u128 * q as u128)
        .sum()
}

/// Eq. 1 workload cost of `assignment` for per-term statistics `ti`, `qi`.
///
/// # Panics
///
/// Panics if `ti` and `qi` have different lengths.
pub fn workload_cost(assignment: &MergeAssignment, ti: &[u64], qi: &[u64]) -> u128 {
    assert_eq!(
        ti.len(),
        qi.len(),
        "ti and qi must cover the same vocabulary"
    );
    let m = assignment.num_lists() as usize;
    let mut t_sum = vec![0u128; m];
    let mut q_sum = vec![0u128; m];
    for t in 0..ti.len() {
        let l = assignment.list_of(TermId(t as u32)).0 as usize;
        t_sum[l] += ti[t] as u128;
        q_sum[l] += qi[t] as u128;
    }
    t_sum.iter().zip(&q_sum).map(|(&t, &q)| t * q).sum()
}

/// Per-list total lengths `Σ_{k∈A_i} t_k` (the scan cost of each merged
/// list), used for per-query costs.
pub fn list_lengths(assignment: &MergeAssignment, ti: &[u64]) -> Vec<u64> {
    let mut lens = vec![0u64; assignment.num_lists() as usize];
    for t in 0..ti.len() {
        lens[assignment.list_of(TermId(t as u32)).0 as usize] += ti[t];
    }
    lens
}

/// Cost of one disjunctive query under `assignment`: the postings scanned,
/// i.e. the summed lengths of the *distinct* merged lists its terms map to
/// (a list shared by two query terms is scanned once).
pub fn query_cost(assignment: &MergeAssignment, list_lens: &[u64], terms: &[TermId]) -> u64 {
    let mut lists: Vec<u32> = terms.iter().map(|&t| assignment.list_of(t).0).collect();
    lists.sort_unstable();
    lists.dedup();
    lists.iter().map(|&l| list_lens[l as usize]).sum()
}

/// Cost of one disjunctive query with no merging: `Σ ti` over its terms.
pub fn unmerged_query_cost(ti: &[u64], terms: &[TermId]) -> u64 {
    terms.iter().map(|&t| ti[t.0 as usize]).sum()
}

/// Cumulative workload-cost curve (Figure 3(c)): terms are ranked by
/// query frequency (`by_query_frequency = true`, the figure's "QF" curve)
/// or by term frequency ("TF"), and the cumulative sum of `ti·qi`
/// contributions is returned for the first `limit` ranks.
pub fn cumulative_workload_curve(
    ti: &[u64],
    qi: &[u64],
    by_query_frequency: bool,
    limit: usize,
) -> Vec<u128> {
    assert_eq!(ti.len(), qi.len());
    let mut order: Vec<usize> = (0..ti.len()).collect();
    if by_query_frequency {
        order.sort_by_key(|&t| std::cmp::Reverse(qi[t]));
    } else {
        order.sort_by_key(|&t| std::cmp::Reverse(ti[t]));
    }
    let mut acc = 0u128;
    order
        .into_iter()
        .take(limit)
        .map(|t| {
            acc += ti[t] as u128 * qi[t] as u128;
            acc
        })
        .collect()
}

/// Percentile summary of a cost distribution: returns the value at each of
/// the requested percentiles (0–100) of the *sorted ascending* data.
/// Used for the Figure 3(h)/(i) query-cost distributions.
pub fn percentiles(mut data: Vec<u64>, points: &[f64]) -> Vec<u64> {
    if data.is_empty() {
        return points.iter().map(|_| 0).collect();
    }
    data.sort_unstable();
    points
        .iter()
        .map(|&p| {
            let idx = ((p / 100.0) * (data.len() - 1) as f64).round() as usize;
            data[idx.min(data.len() - 1)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmerged_cost_is_dot_product() {
        assert_eq!(unmerged_workload_cost(&[3, 5, 7], &[2, 0, 4]), 6 + 28);
    }

    #[test]
    fn merged_equals_unmerged_when_no_sharing() {
        let ti = vec![10, 20, 30, 40];
        let qi = vec![1, 2, 3, 4];
        let a = MergeAssignment::unmerged(4);
        assert_eq!(
            workload_cost(&a, &ti, &qi),
            unmerged_workload_cost(&ti, &qi)
        );
    }

    #[test]
    fn merging_never_reduces_cost() {
        // Eq. 1 expands cross terms, so Q_merged ≥ Q_unmerged always.
        let ti = vec![5, 9, 2, 11, 7, 3, 8, 1];
        let qi = vec![4, 0, 6, 1, 3, 9, 2, 5];
        let unmerged = unmerged_workload_cost(&ti, &qi);
        for m in 1..8 {
            let a = MergeAssignment::uniform(m);
            assert!(workload_cost(&a, &ti, &qi) >= unmerged, "m={m}");
        }
    }

    #[test]
    fn single_list_cost_is_total_product() {
        let ti = vec![2, 3];
        let qi = vec![5, 7];
        let a = MergeAssignment::uniform(1);
        assert_eq!(workload_cost(&a, &ti, &qi), (2 + 3) * (5 + 7));
    }

    #[test]
    fn explicit_table_cost_matches_hand_computation() {
        // A = {0,1} on list 0, {2} on list 1.
        let a = MergeAssignment::Table {
            list_of: vec![0, 0, 1],
            num_lists: 2,
        };
        let ti = vec![10, 20, 5];
        let qi = vec![1, 2, 8];
        // list 0: (10+20)(1+2) = 90; list 1: 5*8 = 40.
        assert_eq!(workload_cost(&a, &ti, &qi), 130);
        assert_eq!(list_lengths(&a, &ti), vec![30, 5]);
    }

    #[test]
    fn query_cost_dedups_shared_lists() {
        let a = MergeAssignment::Table {
            list_of: vec![0, 0, 1],
            num_lists: 2,
        };
        let lens = list_lengths(&a, &[10, 20, 5]);
        // Terms 0 and 1 share list 0: scanned once.
        assert_eq!(query_cost(&a, &lens, &[TermId(0), TermId(1)]), 30);
        assert_eq!(query_cost(&a, &lens, &[TermId(0), TermId(2)]), 35);
        assert_eq!(
            unmerged_query_cost(&[10, 20, 5], &[TermId(0), TermId(1)]),
            30
        );
    }

    #[test]
    fn cumulative_curve_is_monotone_and_orders_matter() {
        let ti = vec![100, 50, 10, 1];
        let qi = vec![1, 2, 50, 100];
        let by_qf = cumulative_workload_curve(&ti, &qi, true, 4);
        let by_tf = cumulative_workload_curve(&ti, &qi, false, 4);
        assert!(by_qf.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(by_qf.last(), by_tf.last(), "full sums agree");
        // QF order front-loads the qi=100 term (contribution 100), TF
        // order front-loads the ti=100 term (contribution 100) — here they
        // coincide in value; check the first element explicitly.
        assert_eq!(by_qf[0], 100); // term 3: 1*100
        assert_eq!(by_tf[0], 100); // term 0: 100*1
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Eq. 1 structural fact: merging can only add cross terms,
            /// so Q(merged) ≥ Q(unmerged) for every assignment.
            #[test]
            fn prop_merging_never_cheaper(
                ti in proptest::collection::vec(0u64..10_000, 1..60),
                qi_seed in proptest::collection::vec(0u64..1_000, 1..60),
                m in 1u32..16,
            ) {
                let n = ti.len().min(qi_seed.len());
                let (ti, qi) = (&ti[..n], &qi_seed[..n]);
                let unmerged = unmerged_workload_cost(ti, qi);
                let a = MergeAssignment::uniform(m);
                prop_assert!(workload_cost(&a, ti, qi) >= unmerged);
            }

            /// Eq. 1 equals the group-sum formula computed independently
            /// via `groups()`.
            #[test]
            fn prop_workload_cost_matches_group_formula(
                ti in proptest::collection::vec(0u64..5_000, 1..40),
                m in 1u32..8,
            ) {
                let qi: Vec<u64> = ti.iter().map(|&t| t / 3 + 1).collect();
                let a = MergeAssignment::uniform(m);
                let via_groups: u128 = a
                    .groups(ti.len() as u32)
                    .iter()
                    .map(|g| {
                        let ts: u128 = g.iter().map(|t| ti[t.0 as usize] as u128).sum();
                        let qs: u128 = g.iter().map(|t| qi[t.0 as usize] as u128).sum();
                        ts * qs
                    })
                    .sum();
                prop_assert_eq!(workload_cost(&a, &ti, &qi), via_groups);
            }

            /// Per-query costs bound each other: unmerged ≤ merged (each
            /// term's list only grows under merging, and deduping shared
            /// lists can only help the merged side).
            #[test]
            fn prop_query_cost_bounds(
                ti in proptest::collection::vec(1u64..2_000, 4..40),
                picks in proptest::collection::vec(0usize..40, 1..6),
                m in 1u32..8,
            ) {
                let terms: Vec<TermId> = picks
                    .iter()
                    .map(|&p| TermId((p % ti.len()) as u32))
                    .collect();
                let a = MergeAssignment::uniform(m);
                let lens = list_lengths(&a, &ti);
                let merged = query_cost(&a, &lens, &terms);
                let mut distinct = terms.clone();
                distinct.sort_unstable();
                distinct.dedup();
                let unmerged_distinct = unmerged_query_cost(&ti, &distinct);
                prop_assert!(merged >= unmerged_distinct,
                             "merged {} < unmerged {}", merged, unmerged_distinct);
            }
        }
    }

    #[test]
    fn percentile_summary() {
        let data: Vec<u64> = (1..=101).collect();
        let p = percentiles(data, &[0.0, 50.0, 100.0]);
        assert_eq!(p, vec![1, 51, 101]);
        assert_eq!(percentiles(vec![], &[50.0]), vec![0]);
    }
}
