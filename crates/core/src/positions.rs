//! Positional postings for phrase queries.
//!
//! The paper's index model stores per-posting metadata "such as keyword
//! frequency, type, position" (§2.3, Figure 1).  This module supplies the
//! *position* part: for every posting appended to a merged list, a
//! parallel append-only WORM file records the token positions of that
//! keyword in the document, so the engine can answer exact **phrase
//! queries** — a capability investigators expect ("earnings restatement
//! draft" as a phrase, not a bag).
//!
//! Layout: one `positions/<list>` file per posting list; records appear in
//! exactly the same order as the list's postings (lockstep).  A record is
//! self-delimiting: a varint count followed by varint position deltas, so
//! the whole file can be re-parsed sequentially during recovery with no
//! trusted offsets.  Positions are supplementary — losing them degrades
//! phrase queries to conjunctive ones, never hides a document — but the
//! recovery path still verifies record-count lockstep with the posting
//! lists, so tampering is evident here too.

use tks_worm::{FileHandle, WormDevice, WormError, WormFs};

/// LEB128-style varint append.
fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Parse a varint at `offset`; returns `(value, bytes consumed)`.
fn read_varint(bytes: &[u8], offset: usize) -> Option<(u64, usize)> {
    let mut v = 0u64;
    let mut shift = 0u32;
    let mut used = 0usize;
    loop {
        let b = *bytes.get(offset + used)?;
        used += 1;
        v |= ((b & 0x7F) as u64) << shift;
        if b & 0x80 == 0 {
            return Some((v, used));
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

/// Errors from the position store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PositionError {
    /// Underlying WORM failure.
    Worm(WormError),
    /// A record failed to parse, or lockstep with the posting list broke —
    /// evidence of tampering or corruption.
    Corrupt(String),
}

impl std::fmt::Display for PositionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PositionError::Worm(e) => write!(f, "{e}"),
            PositionError::Corrupt(msg) => write!(f, "corrupt position store: {msg}"),
        }
    }
}

impl std::error::Error for PositionError {}

impl From<WormError> for PositionError {
    fn from(e: WormError) -> Self {
        PositionError::Worm(e)
    }
}

#[derive(Debug)]
struct PerList {
    file: FileHandle,
    /// Byte offset of each record, in posting order (rebuilt on recovery).
    offsets: Vec<u64>,
}

/// Append-only per-list position records in posting-list lockstep.
///
/// # Example
///
/// ```
/// use tks_core::positions::PositionStore;
///
/// let mut store = PositionStore::new(4096, 2).unwrap();
/// store.append(0, &[3, 17, 40]).unwrap();   // record 0 of list 0
/// store.append(0, &[5]).unwrap();           // record 1 of list 0
/// assert_eq!(store.read(0, 0).unwrap(), vec![3, 17, 40]);
/// assert_eq!(store.read(0, 1).unwrap(), vec![5]);
/// ```
#[derive(Debug)]
pub struct PositionStore {
    fs: WormFs,
    lists: Vec<PerList>,
}

impl PositionStore {
    /// Create an empty store for `num_lists` posting lists (eager file
    /// creation, for the same adversarial reason as the list store).
    pub fn new(block_size: usize, num_lists: usize) -> Result<Self, PositionError> {
        let mut fs = WormFs::new(WormDevice::new(block_size.max(64)));
        let mut lists = Vec::with_capacity(num_lists);
        for l in 0..num_lists {
            lists.push(PerList {
                file: fs.create(&format!("positions/{l}"), u64::MAX)?,
                offsets: Vec::new(),
            });
        }
        Ok(Self { fs, lists })
    }

    /// Number of lists.
    pub fn num_lists(&self) -> usize {
        self.lists.len()
    }

    /// Records appended to `list` so far.
    pub fn num_records(&self, list: u32) -> usize {
        self.lists[list as usize].offsets.len()
    }

    /// The WORM file system (persistence, audits).
    pub fn fs(&self) -> &WormFs {
        &self.fs
    }

    /// Mutable file system — fault-injection and attack harnesses.
    pub fn fs_mut(&mut self) -> &mut WormFs {
        &mut self.fs
    }

    /// Append the positions of the next posting of `list`.  `positions`
    /// must be strictly increasing token indices.
    pub fn append(&mut self, list: u32, positions: &[u32]) -> Result<(), PositionError> {
        debug_assert!(
            positions.windows(2).all(|w| w[0] < w[1]),
            "positions must increase"
        );
        let mut rec = Vec::with_capacity(positions.len() + 2);
        push_varint(&mut rec, positions.len() as u64);
        let mut prev = 0u64;
        for &p in positions {
            push_varint(&mut rec, p as u64 - prev);
            prev = p as u64;
        }
        let pl = &mut self.lists[list as usize];
        let off = self.fs.append(pl.file, &rec)?;
        pl.offsets.push(off);
        Ok(())
    }

    /// Read the positions of posting `idx` of `list`.
    pub fn read(&self, list: u32, idx: usize) -> Result<Vec<u32>, PositionError> {
        let pl = &self.lists[list as usize];
        let off = *pl
            .offsets
            .get(idx)
            .ok_or_else(|| PositionError::Corrupt(format!("no record {idx} in list {list}")))?;
        let end = pl
            .offsets
            .get(idx + 1)
            .copied()
            .unwrap_or_else(|| self.fs.len(pl.file));
        let bytes = self.fs.read(pl.file, off, (end - off) as usize)?;
        let (count, mut pos) = read_varint(&bytes, 0)
            .ok_or_else(|| PositionError::Corrupt("bad record header".into()))?;
        let mut out = Vec::with_capacity(count as usize);
        let mut acc = 0u64;
        for _ in 0..count {
            let (delta, used) = read_varint(&bytes, pos)
                .ok_or_else(|| PositionError::Corrupt("truncated record".into()))?;
            pos += used;
            acc += delta;
            out.push(acc as u32);
        }
        Ok(out)
    }

    /// Rebuild a store from raw WORM bytes, re-parsing every record and
    /// verifying lockstep against the expected posting counts per list.
    /// Torn-tail residue is quarantined silently; use
    /// [`recover_with_report`](Self::recover_with_report) to see it.
    pub fn recover(fs: WormFs, posting_counts: &[u64]) -> Result<Self, PositionError> {
        Self::recover_with_report(fs, posting_counts).map(|(s, _)| s)
    }

    /// [`recover`](Self::recover), also reporting torn-commit residue as
    /// `(list, quarantined bytes)` pairs.
    ///
    /// `posting_counts` are the *post-quarantine* posting counts: the
    /// write path commits a posting before its position record, so every
    /// surviving posting has a whole position record.  Bytes after the
    /// expected records — a torn partial record, or whole records for
    /// postings that were themselves quarantined — are crash residue:
    /// quarantined and reported, not an error.  A parse failure or
    /// record shortage *within* the expected records cannot come from a
    /// torn tail and still fails as corruption.
    pub fn recover_with_report(
        fs: WormFs,
        posting_counts: &[u64],
    ) -> Result<(Self, Vec<(u32, u64)>), PositionError> {
        let mut lists = Vec::with_capacity(posting_counts.len());
        let mut quarantined: Vec<(u32, u64)> = Vec::new();
        for (l, &expected) in posting_counts.iter().enumerate() {
            let file = fs.open(&format!("positions/{l}")).map_err(|_| {
                PositionError::Corrupt(format!("missing position file for list {l}"))
            })?;
            let len = fs.len(file);
            let bytes = fs.read(file, 0, len as usize)?;
            let mut offsets = Vec::new();
            let mut cursor = 0usize;
            while (offsets.len() as u64) < expected {
                if cursor as u64 >= len {
                    return Err(PositionError::Corrupt(format!(
                        "list {l}: {} position records but {expected} postings",
                        offsets.len()
                    )));
                }
                offsets.push(cursor as u64);
                let (count, used) = read_varint(&bytes, cursor)
                    .ok_or_else(|| PositionError::Corrupt(format!("bad header in list {l}")))?;
                cursor += used;
                for _ in 0..count {
                    let (_, used) = read_varint(&bytes, cursor).ok_or_else(|| {
                        PositionError::Corrupt(format!("truncated record in list {l}"))
                    })?;
                    cursor += used;
                }
            }
            let tail = len.saturating_sub(cursor as u64);
            if tail > 0 {
                quarantined.push((l as u32, tail));
            }
            lists.push(PerList { file, offsets });
        }
        Ok((Self { fs, lists }, quarantined))
    }

    /// Consume the store, returning the file system.
    pub fn into_fs(self) -> WormFs {
        self.fs
    }
}

/// Whether a document contains the phrase, given the position sets of its
/// tokens in phrase order: true iff some start position `p` has token `i`
/// at `p + i` for all `i`.
pub fn phrase_match(token_positions: &[Vec<u32>]) -> bool {
    let Some(first) = token_positions.first() else {
        return false;
    };
    'starts: for &p in first {
        for (i, positions) in token_positions.iter().enumerate().skip(1) {
            let want = p as u64 + i as u64;
            if want > u32::MAX as u64 || positions.binary_search(&(want as u32)).is_err() {
                continue 'starts;
            }
        }
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn varint_roundtrip_edges() {
        let mut buf = Vec::new();
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            buf.clear();
            push_varint(&mut buf, v);
            assert_eq!(read_varint(&buf, 0), Some((v, buf.len())));
        }
        assert_eq!(read_varint(&[0x80], 0), None, "dangling continuation");
    }

    #[test]
    fn append_read_across_lists() {
        let mut s = PositionStore::new(64, 3).unwrap();
        s.append(0, &[1, 5, 9]).unwrap();
        s.append(2, &[0]).unwrap();
        s.append(0, &[200, 1_000_000]).unwrap();
        assert_eq!(s.read(0, 0).unwrap(), vec![1, 5, 9]);
        assert_eq!(s.read(0, 1).unwrap(), vec![200, 1_000_000]);
        assert_eq!(s.read(2, 0).unwrap(), vec![0]);
        assert!(s.read(1, 0).is_err());
        assert_eq!(s.num_records(0), 2);
    }

    #[test]
    fn empty_position_records_allowed() {
        let mut s = PositionStore::new(64, 1).unwrap();
        s.append(0, &[]).unwrap();
        assert_eq!(s.read(0, 0).unwrap(), Vec::<u32>::new());
    }

    #[test]
    fn recovery_roundtrip_and_lockstep_check() {
        let mut s = PositionStore::new(64, 2).unwrap();
        s.append(0, &[3, 8]).unwrap();
        s.append(0, &[2]).unwrap();
        s.append(1, &[7, 9, 11]).unwrap();
        let r = PositionStore::recover(s.into_fs(), &[2, 1]).unwrap();
        assert_eq!(r.read(0, 0).unwrap(), vec![3, 8]);
        assert_eq!(r.read(1, 0).unwrap(), vec![7, 9, 11]);
        // Lockstep mismatch refused.
        let mut s = PositionStore::new(64, 1).unwrap();
        s.append(0, &[1]).unwrap();
        assert!(PositionStore::recover(s.into_fs(), &[2]).is_err());
    }

    #[test]
    fn recovery_quarantines_tail_bytes_past_expected_records() {
        // Bytes after the expected records are torn-commit residue (a
        // partial record of a failed document), quarantined and reported.
        let mut s = PositionStore::new(64, 1).unwrap();
        s.append(0, &[1, 2]).unwrap();
        let f = s.fs.open("positions/0").unwrap();
        s.fs.append(f, &[0xFF]).unwrap(); // dangling continuation bit
        let (r, quarantined) = PositionStore::recover_with_report(s.into_fs(), &[1]).unwrap();
        assert_eq!(quarantined, vec![(0, 1)]);
        assert_eq!(r.read(0, 0).unwrap(), vec![1, 2]);
    }

    #[test]
    fn recovery_refuses_garbage_within_expected_records() {
        // A parse failure *inside* the expected records is not a torn
        // tail (surviving postings always have whole position records) —
        // still corruption.
        let mut s = PositionStore::new(64, 1).unwrap();
        s.append(0, &[1, 2]).unwrap();
        let f = s.fs.open("positions/0").unwrap();
        s.fs.append(f, &[0xFF]).unwrap();
        assert!(PositionStore::recover(s.into_fs(), &[2]).is_err());
    }

    #[test]
    fn phrase_match_semantics() {
        // "a b c" at positions a:{0,9}, b:{1,5}, c:{2}.
        assert!(phrase_match(&[vec![0, 9], vec![1, 5], vec![2]]));
        // No consecutive run.
        assert!(!phrase_match(&[vec![0], vec![2], vec![3]]));
        // Single-token phrase: any occurrence.
        assert!(phrase_match(&[vec![42]]));
        assert!(!phrase_match(&[vec![]]));
        assert!(!phrase_match(&[]));
        // Repeated token: "b b" needs adjacent occurrences.
        assert!(phrase_match(&[vec![4, 7], vec![5, 9]]));
        assert!(!phrase_match(&[vec![4], vec![9]]));
    }

    proptest! {
        #[test]
        fn prop_store_roundtrip(records in proptest::collection::vec(
            proptest::collection::btree_set(0u32..100_000, 0..20), 1..30)) {
            let mut s = PositionStore::new(64, 1).unwrap();
            let records: Vec<Vec<u32>> =
                records.into_iter().map(|set| set.into_iter().collect()).collect();
            for r in &records {
                s.append(0, r).unwrap();
            }
            for (i, r) in records.iter().enumerate() {
                prop_assert_eq!(&s.read(0, i).unwrap(), r);
            }
            let rec = PositionStore::recover(s.into_fs(), &[records.len() as u64]).unwrap();
            for (i, r) in records.iter().enumerate() {
                prop_assert_eq!(&rec.read(0, i).unwrap(), r);
            }
        }
    }
}
