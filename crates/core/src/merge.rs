//! Posting-list merge assignments (paper §3).
//!
//! Appending one posting per term per document to per-term lists costs a
//! random I/O per append once the storage cache is exhausted — ~500 I/Os
//! per document, or ~21 even with a 4 GB cache (paper Figure 2).  Merging
//! the `n` term lists into `M` physical lists, where `M` is the number of
//! cache blocks, makes *every* append a cache hit: ~1 I/O per document.
//!
//! Choosing the merge sets `A₁ … A_M` to minimise the Eq. 1 workload cost
//! is NP-complete (reduction from minimum sum of squares), so the paper
//! evaluates heuristics:
//!
//! * **uniform** — hash every term into one of `M` lists ("straightforward
//!   to implement … likely to be the method of choice in practice");
//! * **popular query terms unmerged** — the `u` most query-frequent terms
//!   keep private lists, the rest are hashed into the remaining `M − u`;
//! * **popular document terms unmerged** — ditto by document frequency;
//! * **learned** variants of either, ranking terms by statistics gathered
//!   from a 10% prefix of the workload (Figures 3(f)–3(g)) — expressed
//!   here by simply passing prefix-derived rankings to the same builders.

use serde::{Deserialize, Serialize};
use tks_postings::{ListId, TermId};

/// Maps every term to the physical posting list that stores its postings.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MergeAssignment {
    /// One private list per term (the unmerged baseline): term `t` uses
    /// list `t`.
    Unmerged {
        /// Vocabulary size (= number of lists).
        vocab_size: u32,
    },
    /// Every term hashed uniformly into `num_lists` lists.
    Uniform {
        /// Number of physical lists `M` (= cache blocks).
        num_lists: u32,
    },
    /// Explicit per-term table (used by the popular-terms-unmerged and
    /// learned strategies).
    Table {
        /// `list_of[t]` = physical list of term `t`.
        list_of: Vec<u32>,
        /// Number of physical lists.
        num_lists: u32,
    },
}

/// Multiplicative hash with good avalanche on the low bits (Fibonacci
/// hashing); deterministic so experiments replay exactly.
fn hash_term(t: TermId) -> u64 {
    (t.0 as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .rotate_left(31)
}

impl MergeAssignment {
    /// The unmerged baseline over `vocab_size` terms.
    pub fn unmerged(vocab_size: u32) -> Self {
        MergeAssignment::Unmerged { vocab_size }
    }

    /// Uniform hashing into `num_lists` lists.
    ///
    /// # Panics
    ///
    /// Panics if `num_lists == 0`.
    pub fn uniform(num_lists: u32) -> Self {
        assert!(num_lists > 0, "need at least one list");
        MergeAssignment::Uniform { num_lists }
    }

    /// The paper's popular-terms-unmerged heuristic: the first
    /// `num_unmerged` terms of `ranked` (descending popularity — by `qi`
    /// for Figure 3(d), by `ti` for Figure 3(e), or by prefix-learned
    /// statistics for Figures 3(f)–3(g)) receive private lists; every
    /// other term is hashed uniformly into the remaining
    /// `num_lists − num_unmerged` lists.
    ///
    /// # Panics
    ///
    /// Panics unless `num_unmerged < num_lists` and `ranked` covers at
    /// least `num_unmerged` terms.
    pub fn popular_unmerged(
        ranked: &[TermId],
        num_unmerged: usize,
        num_lists: u32,
        vocab_size: u32,
    ) -> Self {
        assert!(
            (num_unmerged as u32) < num_lists,
            "unmerged terms must leave room for merged lists"
        );
        assert!(
            ranked.len() >= num_unmerged,
            "ranking does not cover the unmerged terms"
        );
        let merged_lists = num_lists - num_unmerged as u32;
        let mut list_of: Vec<u32> = (0..vocab_size)
            .map(|t| num_unmerged as u32 + (hash_term(TermId(t)) % merged_lists as u64) as u32)
            .collect();
        for (i, t) in ranked[..num_unmerged].iter().enumerate() {
            list_of[t.0 as usize] = i as u32;
        }
        MergeAssignment::Table { list_of, num_lists }
    }

    /// The physical list for `term`.
    pub fn list_of(&self, term: TermId) -> ListId {
        match self {
            MergeAssignment::Unmerged { .. } => ListId(term.0),
            MergeAssignment::Uniform { num_lists } => {
                ListId((hash_term(term) % *num_lists as u64) as u32)
            }
            MergeAssignment::Table { list_of, .. } => ListId(list_of[term.0 as usize]),
        }
    }

    /// Number of physical lists.
    pub fn num_lists(&self) -> u32 {
        match self {
            MergeAssignment::Unmerged { vocab_size } => *vocab_size,
            MergeAssignment::Uniform { num_lists } => *num_lists,
            MergeAssignment::Table { num_lists, .. } => *num_lists,
        }
    }

    /// Group the vocabulary `0..vocab_size` into per-list term sets (the
    /// paper's `A₁ … A_M`), for cost evaluation.
    pub fn groups(&self, vocab_size: u32) -> Vec<Vec<TermId>> {
        let mut groups = vec![Vec::new(); self.num_lists() as usize];
        for t in 0..vocab_size {
            let term = TermId(t);
            groups[self.list_of(term).0 as usize].push(term);
        }
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmerged_is_identity() {
        let a = MergeAssignment::unmerged(100);
        assert_eq!(a.list_of(TermId(42)), ListId(42));
        assert_eq!(a.num_lists(), 100);
    }

    #[test]
    fn uniform_is_deterministic_and_in_range() {
        let a = MergeAssignment::uniform(64);
        for t in 0..10_000u32 {
            let l = a.list_of(TermId(t));
            assert!(l.0 < 64);
            assert_eq!(l, a.list_of(TermId(t)));
        }
    }

    #[test]
    fn uniform_is_balanced() {
        let a = MergeAssignment::uniform(32);
        let mut counts = [0u32; 32];
        for t in 0..32_000u32 {
            counts[a.list_of(TermId(t)).0 as usize] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        // 1000 expected per list; hashing should stay within ±25%.
        assert!(
            *min > 750 && *max < 1250,
            "imbalanced: min {min}, max {max}"
        );
    }

    #[test]
    fn popular_unmerged_gives_private_lists() {
        let ranked: Vec<TermId> = (0..10).map(TermId).collect();
        let a = MergeAssignment::popular_unmerged(&ranked, 4, 20, 1_000);
        // The top 4 terms occupy lists 0..4, alone.
        let groups = a.groups(1_000);
        for (i, group) in groups.iter().enumerate().take(4) {
            assert_eq!(group, &vec![TermId(i as u32)]);
        }
        // Every other term lands in lists 4..20.
        for t in 10..1_000u32 {
            let l = a.list_of(TermId(t)).0;
            assert!((4..20).contains(&l));
        }
        assert_eq!(a.num_lists(), 20);
    }

    #[test]
    fn groups_partition_the_vocabulary() {
        for a in [
            MergeAssignment::uniform(7),
            MergeAssignment::unmerged(500),
            MergeAssignment::popular_unmerged(&(0..5).map(TermId).collect::<Vec<_>>(), 3, 7, 500),
        ] {
            let groups = a.groups(500);
            let total: usize = groups.iter().map(|g| g.len()).sum();
            assert_eq!(total, 500, "groups must partition the vocabulary");
            let mut seen = vec![false; 500];
            for g in &groups {
                for t in g {
                    assert!(!seen[t.0 as usize], "term assigned twice");
                    seen[t.0 as usize] = true;
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "room for merged lists")]
    fn popular_unmerged_rejects_no_merged_room() {
        let ranked: Vec<TermId> = (0..10).map(TermId).collect();
        let _ = MergeAssignment::popular_unmerged(&ranked, 10, 10, 100);
    }
}
