//! Ranking attacks and countermeasures (paper §5).
//!
//! Mala cannot delete a committed document or its index entries, so her
//! remaining move is to make investigators *overlook* it: "Mala can try to
//! hide a document D by adding spurious documents to the posting lists of
//! all D's keywords or by directly altering the statistics maintained for
//! ranking D, so that D will be ranked low when Bob issues his query."
//!
//! Two attack variants are modelled, with their §5 countermeasures:
//!
//! 1. **Decoy documents** ([`stuff_with_decoys`]) — Mala commits many real
//!    documents containing D's keywords through the legitimate insertion
//!    path.  This *works* mechanically (D's rank drops) but is survivable:
//!    Bob examines all results in an investigation, and fabricating many
//!    *believable* documents about, say, [Stewart Waksal ImClone] is
//!    implausible — the paper's argument, which [`rank_of`] lets harnesses
//!    quantify.
//! 2. **Phantom postings** ([`stuff_phantom_postings`]) — Mala appends raw
//!    postings that reference nonexistent documents or documents that do
//!    not contain the keyword.  "The search engine can detect this and
//!    alert Bob to malicious activity": [`detect_phantom_postings`]
//!    cross-checks every posting against the WORM document store.

use crate::engine::{SearchEngine, SearchError};
use crate::tokenizer;
use tks_postings::{encode_posting, DocId, ListId, Posting, TermId, Timestamp};

/// A posting that fails verification against the document store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhantomPosting {
    /// The list holding the suspicious posting.
    pub list: ListId,
    /// Position within the list's raw bytes.
    pub position: u64,
    /// The posting itself.
    pub posting: Posting,
    /// Why it failed verification.
    pub reason: PhantomReason,
}

/// Why a posting is considered phantom.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhantomReason {
    /// The referenced document was never committed.
    NoSuchDocument,
    /// The referenced document exists but does not contain the keyword.
    KeywordAbsent,
}

/// Attack 1: commit `n_decoys` believable-looking documents containing
/// `keywords` through the legitimate insertion path, to dilute the rank of
/// earlier documents.  Returns the decoys' IDs.
pub fn stuff_with_decoys(
    engine: &mut SearchEngine,
    keywords: &str,
    n_decoys: usize,
) -> Result<Vec<DocId>, SearchError> {
    let ts = engine
        .num_docs()
        .checked_sub(1)
        .and_then(|last| engine.document_timestamp(DocId(last)))
        .unwrap_or(Timestamp(0));
    let mut ids = Vec::with_capacity(n_decoys);
    for i in 0..n_decoys {
        // Decoy text repeats the keywords (inflating tf) plus filler that
        // varies per decoy.
        let text = format!("{keywords} {keywords} decoy filler item number {i}");
        ids.push(engine.add_document(&text, ts)?);
    }
    Ok(ids)
}

/// Attack 2: append raw phantom postings for `term` to its list on the
/// WORM device, bypassing the document store.  `fake_docs` must be
/// non-decreasing and ≥ the list's current tail for the appends to slip
/// past the monotonicity audit (a cunning Mala picks large IDs).
pub fn stuff_phantom_postings(
    engine: &mut SearchEngine,
    term: TermId,
    fake_docs: &[u64],
) -> Result<(), SearchError> {
    let list = engine.config().assignment.list_of(term);
    let tag = engine.list_store().tag_of(list, term)?.unwrap_or(0);
    let name = format!("lists/{}", list.0);
    let store = engine.list_store_mut();
    let file = match store.fs().open(&name) {
        Ok(f) => f,
        Err(_) => {
            // The list file does not exist yet; Mala can create it (she
            // can run any application code).
            store.fs_mut().create(&name, u64::MAX)?
        }
    };
    for &d in fake_docs {
        let bytes = encode_posting(Posting::new(DocId(d), tag, 200));
        store.fs_mut().append(file, &bytes)?;
    }
    Ok(())
}

/// The rank (1-based) of `doc` in the result list for `query`, if present
/// in the top `depth`.
pub fn rank_of(engine: &SearchEngine, query: &str, doc: DocId, depth: usize) -> Option<usize> {
    engine
        .execute(&crate::query::Query::disjunctive(query, depth))
        .map(|r| r.hits)
        .unwrap_or_default()
        .iter()
        .position(|h| h.doc == doc)
        .map(|p| p + 1)
}

/// Countermeasure: verify every posting of every list against the WORM
/// document store.  A posting referencing a missing document, or a
/// document that does not contain the posting's keyword, is phantom — and
/// since the engine's own insertion path can never produce one, each is
/// evidence of malicious activity.
///
/// Requires the engine to store document text
/// ([`EngineConfig::store_documents`](crate::engine::EngineConfig)).
pub fn detect_phantom_postings(engine: &SearchEngine) -> Result<Vec<PhantomPosting>, SearchError> {
    let mut phantoms = Vec::new();
    let store = engine.list_store();
    let num_docs = engine.num_docs();
    for l in 0..store.num_lists() as u32 {
        let list = ListId(l);
        for (i, p) in store.raw_scan(list)?.enumerate() {
            if p.doc.0 >= num_docs {
                phantoms.push(PhantomPosting {
                    list,
                    position: i as u64,
                    posting: p,
                    reason: PhantomReason::NoSuchDocument,
                });
                continue;
            }
            let Some(text) = engine.document_text(p.doc) else {
                continue;
            };
            // Does the document actually contain a keyword with this
            // posting's tag in this list?
            let present = tokenizer::term_counts(&text).iter().any(|(tok, _)| {
                engine
                    .term_of(tok)
                    .filter(|&t| engine.config().assignment.list_of(t) == list)
                    .and_then(|t| store.tag_of(list, t).ok().flatten())
                    == Some(p.term_tag)
            });
            if !present {
                phantoms.push(PhantomPosting {
                    list,
                    position: i as u64,
                    posting: p,
                    reason: PhantomReason::KeywordAbsent,
                });
            }
        }
    }
    Ok(phantoms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::merge::MergeAssignment;

    fn engine() -> SearchEngine {
        SearchEngine::new(EngineConfig {
            assignment: MergeAssignment::uniform(4),
            block_size: 512,
            ..Default::default()
        })
        .unwrap()
    }

    #[test]
    fn decoy_stuffing_dilutes_rank_but_is_survivable() {
        let mut e = engine();
        let target = e
            .add_document("stewart waksal imclone insider sale", Timestamp(10))
            .unwrap();
        assert_eq!(rank_of(&e, "waksal imclone", target, 100), Some(1));
        stuff_with_decoys(&mut e, "waksal imclone", 30).unwrap();
        let rank = rank_of(&e, "waksal imclone", target, 100).expect("still findable");
        assert!(rank > 1, "decoys must dilute the target's rank, got {rank}");
        // Survivability: the target is still *in* the results — Bob, who
        // examines everything, will find it.
        let all = e
            .execute(&crate::query::Query::disjunctive("waksal imclone", 1_000))
            .unwrap()
            .hits;
        assert!(all.iter().any(|h| h.doc == target));
        // And the decoys pass posting verification (they are real
        // documents), so this attack is fought by human review, not by
        // the index.
        assert!(detect_phantom_postings(&e).unwrap().is_empty());
    }

    #[test]
    fn phantom_nonexistent_docs_detected() {
        let mut e = engine();
        e.add_document("quarterly fraud evidence", Timestamp(1))
            .unwrap();
        let term = e.term_of("fraud").unwrap();
        stuff_phantom_postings(&mut e, term, &[50, 51, 52]).unwrap();
        let phantoms = detect_phantom_postings(&e).unwrap();
        assert_eq!(phantoms.len(), 3);
        assert!(phantoms
            .iter()
            .all(|p| p.reason == PhantomReason::NoSuchDocument));
    }

    #[test]
    fn phantom_keyword_absent_detected() {
        let mut e = engine();
        e.add_document("document about cooking recipes", Timestamp(1))
            .unwrap();
        e.add_document("document about fraud evidence", Timestamp(2))
            .unwrap();
        // Mala forges a posting claiming doc 0 contains "fraud": the doc
        // exists, the keyword does not.
        let term = e.term_of("fraud").unwrap();
        // Doc id 0 would break monotonicity if the list tail is past 0;
        // check the audit catches it *or* the verification does — the
        // forged posting uses the largest committed doc id to stay
        // monotone, which is the hardest case.
        stuff_phantom_postings(&mut e, term, &[0]).err(); // may fail audit later; ignore
        let phantoms = detect_phantom_postings(&e).unwrap();
        assert!(
            phantoms
                .iter()
                .any(|p| p.reason == PhantomReason::KeywordAbsent && p.posting.doc == DocId(0)),
            "forged keyword-absent posting must be flagged: {phantoms:?}"
        );
    }

    #[test]
    fn clean_engine_has_no_phantoms() {
        let mut e = engine();
        for i in 0..20u64 {
            e.add_document(&format!("legitimate record number {i}"), Timestamp(i))
                .unwrap();
        }
        assert!(detect_phantom_postings(&e).unwrap().is_empty());
    }

    #[test]
    fn decoys_preserve_monotone_timestamps() {
        let mut e = engine();
        e.add_document("a", Timestamp(100)).unwrap();
        let ids = stuff_with_decoys(&mut e, "a", 3).unwrap();
        assert_eq!(ids.len(), 3);
        // Decoys reuse the last committed timestamp (Mala cannot backdate:
        // the commit-time index is monotone).
        for id in ids {
            assert_eq!(e.document_timestamp(id), Some(Timestamp(100)));
        }
    }
}
