//! Document scoring for disjunctive queries.
//!
//! Paper §3.1: "The documents in the posting lists are assigned scores
//! based on similarity measures like cosine \[28\] or Okapi BM-25 \[25\].  The
//! scores are used to rank the documents."  Both measures are provided;
//! BM25 is the default.
//!
//! Ranking is also the attack surface of §5: scores depend on collection
//! statistics that an adversary can inflate by stuffing posting lists.
//! The scorers here recompute statistics from the index itself, and the
//! [`rank_attack`](crate::rank_attack) module provides the detection
//! countermeasures.

use serde::{Deserialize, Serialize};

/// Which similarity measure ranks disjunctive query results.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RankingModel {
    /// Okapi BM25 with the usual free parameters.
    Bm25 {
        /// Term-frequency saturation (typical 1.2).
        k1: f64,
        /// Length normalisation (typical 0.75).
        b: f64,
    },
    /// Cosine similarity with log-weighted tf·idf components.
    Cosine,
}

impl Default for RankingModel {
    fn default() -> Self {
        RankingModel::Bm25 { k1: 1.2, b: 0.75 }
    }
}

/// Collection-level statistics needed by the scorers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollectionStats {
    /// Number of documents in the collection.
    pub num_docs: u64,
    /// Mean document length in tokens.
    pub avg_doc_len: f64,
}

impl RankingModel {
    /// Contribution of one query term to one document's score.
    ///
    /// * `tf` — the term's frequency in the document;
    /// * `doc_len` — the document's length in tokens;
    /// * `doc_freq` — the number of documents containing the term.
    pub fn score_term(&self, tf: u32, doc_len: u64, doc_freq: u64, stats: CollectionStats) -> f64 {
        if tf == 0 || doc_freq == 0 || stats.num_docs == 0 {
            return 0.0;
        }
        let tf = tf as f64;
        let n = stats.num_docs as f64;
        let df = doc_freq as f64;
        match *self {
            RankingModel::Bm25 { k1, b } => {
                // Robertson–Spärck Jones idf, floored at 0 via the +1 form.
                let idf = ((n - df + 0.5) / (df + 0.5) + 1.0).ln();
                let norm = k1 * (1.0 - b + b * doc_len as f64 / stats.avg_doc_len.max(1.0));
                idf * tf * (k1 + 1.0) / (tf + norm)
            }
            RankingModel::Cosine => {
                let w_tf = 1.0 + tf.ln();
                let idf = (1.0 + n / df).ln();
                // Document-length normalisation by √len approximates the
                // vector norm without a second pass over the document.
                w_tf * idf / (doc_len as f64).sqrt().max(1.0)
            }
        }
    }

    /// Upper bound on [`score_term`](Self::score_term) over every posting
    /// of a block: the largest contribution any single term occurrence
    /// with `tf ≤ max_tf` in a document of length `≥ min_doc_len` can
    /// make.
    ///
    /// Both models are monotone — non-decreasing in `tf` and
    /// non-increasing in `doc_len` — so the bound is the score at the
    /// extreme corner `(max_tf, min_doc_len)`.  For BM25 the tf direction
    /// holds whenever the length normalisation is non-negative (any
    /// `b ∈ [0, 1]`, i.e. every sane parameterisation); evaluating the
    /// `tf = 1` endpoint as well keeps the bound sound even for exotic
    /// parameters that invert the tf direction.
    ///
    /// This is what makes block-level early termination *rank-safe*: a
    /// block whose bound cannot beat the current k-th score provably
    /// holds no posting that could change the top-k result.
    pub fn score_bound(
        &self,
        max_tf: u32,
        min_doc_len: u64,
        doc_freq: u64,
        stats: CollectionStats,
    ) -> f64 {
        let len = min_doc_len.max(1);
        let corner = self.score_term(max_tf, len, doc_freq, stats);
        corner.max(self.score_term(max_tf.min(1), len, doc_freq, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const STATS: CollectionStats = CollectionStats {
        num_docs: 1_000,
        avg_doc_len: 100.0,
    };

    #[test]
    fn rarer_terms_score_higher() {
        for model in [RankingModel::default(), RankingModel::Cosine] {
            let rare = model.score_term(1, 100, 5, STATS);
            let common = model.score_term(1, 100, 900, STATS);
            assert!(rare > common, "{model:?}: rare {rare} vs common {common}");
        }
    }

    #[test]
    fn higher_tf_scores_higher_but_saturates() {
        let m = RankingModel::default();
        let s1 = m.score_term(1, 100, 50, STATS);
        let s2 = m.score_term(2, 100, 50, STATS);
        let s20 = m.score_term(20, 100, 50, STATS);
        let s40 = m.score_term(40, 100, 50, STATS);
        assert!(s2 > s1);
        assert!(s40 > s20);
        // BM25 saturation: doubling a large tf gains less than doubling a
        // small one.
        assert!(s40 - s20 < s2 - s1);
    }

    #[test]
    fn longer_docs_penalised() {
        for model in [RankingModel::default(), RankingModel::Cosine] {
            let short = model.score_term(3, 50, 50, STATS);
            let long = model.score_term(3, 500, 50, STATS);
            assert!(short > long, "{model:?}");
        }
    }

    #[test]
    fn degenerate_inputs_are_zero() {
        let m = RankingModel::default();
        assert_eq!(m.score_term(0, 100, 50, STATS), 0.0);
        assert_eq!(m.score_term(3, 100, 0, STATS), 0.0);
        assert_eq!(
            m.score_term(
                3,
                100,
                50,
                CollectionStats {
                    num_docs: 0,
                    avg_doc_len: 0.0
                }
            ),
            0.0
        );
    }

    #[test]
    fn bm25_idf_stays_positive_even_for_ubiquitous_terms() {
        let m = RankingModel::default();
        let s = m.score_term(1, 100, 1_000, STATS);
        assert!(s > 0.0, "the +1 idf form must not go negative, got {s}");
    }

    #[test]
    fn score_bound_dominates_every_block_posting() {
        // The bound must dominate score_term over the whole (tf, len)
        // rectangle it claims to cover, for both models and several df.
        for model in [RankingModel::default(), RankingModel::Cosine] {
            for df in [1u64, 5, 50, 900, 1_000] {
                for max_tf in [1u32, 3, 17, 255] {
                    for min_len in [1u64, 10, 100] {
                        let bound = model.score_bound(max_tf, min_len, df, STATS);
                        for tf in [1u32, 2.min(max_tf), max_tf / 2 + 1, max_tf] {
                            for len in [min_len, min_len + 7, min_len * 10] {
                                let s = model.score_term(tf, len, df, STATS);
                                assert!(
                                    s <= bound,
                                    "{model:?} df={df}: score({tf},{len})={s} \
                                     exceeds bound({max_tf},{min_len})={bound}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn score_bound_degenerate_inputs() {
        let m = RankingModel::default();
        assert_eq!(m.score_bound(0, 1, 50, STATS), 0.0, "max_tf 0 bounds 0");
        assert_eq!(m.score_bound(3, 1, 0, STATS), 0.0, "df 0 bounds 0");
        // min_doc_len 0 is clamped to 1, not a division hazard.
        let b = m.score_bound(3, 0, 50, STATS);
        assert!(b.is_finite() && b > 0.0);
    }
}
