//! The unified query model.
//!
//! Every read path of the engine — ranked disjunctive search, conjunctive
//! search (optionally time-restricted), exact phrase search, and pure
//! commit-time range retrieval — is expressed as one [`Query`] value and
//! executed through a single entry point
//! ([`SearchEngine::execute`](crate::engine::SearchEngine::execute) or, in
//! concurrent deployments, [`Searcher::execute`](crate::service::Searcher)).
//! The response carries the hits *and* the trust metadata the paper cares
//! about: per-query I/O cost (the Figure 8(c) unit) and tamper-evidence
//! flags.
//!
//! The legacy per-shape methods (`search`, `search_terms`,
//! `search_conjunctive`, `search_conjunctive_in_range`, `search_phrase`)
//! have been removed; [`Query`] constructors are the only way to express a
//! query, so there is exactly one implementation of each access path.

use crate::engine::SearchHit;
use tks_postings::{DocId, TermId, Timestamp};
use tks_worm::{ChainHead, IoStats};

/// An inclusive commit-time interval `[from, to]` (paper §5: "trustworthy
/// time-range restriction").
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TimeRange {
    /// Earliest commit timestamp included.
    pub from: Timestamp,
    /// Latest commit timestamp included.
    pub to: Timestamp,
}

impl TimeRange {
    /// The interval `[from, to]`; empty when `from > to`.
    pub fn new(from: Timestamp, to: Timestamp) -> Self {
        Self { from, to }
    }

    /// Whether the interval contains no timestamps at all.
    pub fn is_empty(&self) -> bool {
        self.from > self.to
    }
}

/// How a query names its terms: raw text (tokenised and looked up in the
/// engine's dictionary) or pre-resolved term IDs (the synthetic-corpus and
/// harness path).
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum TermSelector {
    /// Free text; tokenised with the engine's tokenizer, then each token
    /// resolved against the term dictionary.
    Text(String),
    /// Already-resolved term IDs.
    Ids(Vec<TermId>),
}

impl From<&str> for TermSelector {
    fn from(s: &str) -> Self {
        TermSelector::Text(s.to_string())
    }
}

impl From<String> for TermSelector {
    fn from(s: String) -> Self {
        TermSelector::Text(s)
    }
}

impl From<Vec<TermId>> for TermSelector {
    fn from(ids: Vec<TermId>) -> Self {
        TermSelector::Ids(ids)
    }
}

impl From<&[TermId]> for TermSelector {
    fn from(ids: &[TermId]) -> Self {
        TermSelector::Ids(ids.to_vec())
    }
}

/// One read request against the engine.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Query {
    /// Ranked OR-query: documents containing *any* of the terms, the best
    /// `top_k` by the engine's ranking model.  Unknown text tokens are
    /// dropped (they cannot contribute score).
    Disjunctive {
        /// The query terms.
        terms: TermSelector,
        /// Result-list cutoff.
        top_k: usize,
    },
    /// AND-query: documents containing *all* terms, optionally restricted
    /// to a commit-time range (the §5 investigator workflow).  An unknown
    /// text token makes the result empty, as no document can contain it.
    Conjunctive {
        /// The query terms.
        terms: TermSelector,
        /// Optional trustworthy commit-time restriction.
        range: Option<TimeRange>,
    },
    /// Exact phrase query (requires a positional engine).
    Phrase {
        /// The phrase, as raw text.
        text: String,
    },
    /// All documents committed inside the range, answered from the
    /// commit-time jump index alone.
    TimeRange(TimeRange),
}

impl Query {
    /// Convenience: ranked disjunctive query.
    pub fn disjunctive(terms: impl Into<TermSelector>, top_k: usize) -> Self {
        Query::Disjunctive {
            terms: terms.into(),
            top_k,
        }
    }

    /// Convenience: conjunctive query without time restriction.
    pub fn conjunctive(terms: impl Into<TermSelector>) -> Self {
        Query::Conjunctive {
            terms: terms.into(),
            range: None,
        }
    }

    /// Convenience: conjunctive query restricted to `[from, to]`.
    pub fn conjunctive_in_range(
        terms: impl Into<TermSelector>,
        from: Timestamp,
        to: Timestamp,
    ) -> Self {
        Query::Conjunctive {
            terms: terms.into(),
            range: Some(TimeRange::new(from, to)),
        }
    }

    /// Convenience: exact phrase query.
    pub fn phrase(text: impl Into<String>) -> Self {
        Query::Phrase { text: text.into() }
    }

    /// Convenience: pure commit-time range query.
    pub fn time_range(from: Timestamp, to: Timestamp) -> Self {
        Query::TimeRange(TimeRange::new(from, to))
    }
}

/// The outcome of executing one [`Query`].
///
/// Result rows are [`SearchHit`]s: disjunctive queries rank by `score`;
/// the boolean shapes report `score == 0.0` with hits in ascending
/// document order.
#[derive(Debug, Clone)]
pub struct QueryResponse {
    /// Matching documents (ranked for disjunctive queries, ascending doc
    /// order otherwise).
    pub hits: Vec<SearchHit>,
    /// Distinct index blocks this query read — the paper's query cost
    /// unit (Figure 8(c)).  For disjunctive queries this counts the
    /// blocks of every scanned posting list; for phrase queries it adds
    /// one read per position record fetched.
    pub blocks_read: u64,
    /// Index blocks this query *consulted but did not read*: block-level
    /// early-termination decisions made from cache-resident summaries
    /// (score bound below the top-k threshold, no accumulator overlap, or
    /// wholly beyond the visibility watermark).  Skipped blocks cost no
    /// I/O and are therefore **not** part of `blocks_read` — the whole
    /// point of the bounded evaluator is to shrink the Figure 8(c) cost,
    /// and this counter shows by how much.  Zero for the boolean shapes.
    pub blocks_skipped: u64,
    /// The same cost as an [`IoStats`] delta attributable to this query
    /// alone, so harnesses can accumulate per-thread or per-tenant I/O
    /// without diffing engine-global counters.
    pub io: IoStats,
    /// Documents visible to this execution: the snapshot watermark.  Hits
    /// only reference documents with `doc.0 < visible_docs`.
    pub visible_docs: u64,
    /// No tamper evidence was encountered while executing *and* the WORM
    /// devices' tamper logs were empty at snapshot time.  Structural
    /// tampering discovered mid-query surfaces as an `Err` instead, so a
    /// response with `trusted == false` means the devices logged rejected
    /// overwrite/early-delete attempts.
    pub trusted: bool,
    /// Bytes of torn-commit residue quarantined behind the commit point:
    /// partial records surfaced by crash recovery plus residue of commits
    /// that failed while this engine was live.  Zero on a clean engine.
    /// Non-zero does not taint `trusted` — a torn tail is an availability
    /// event with evidence, not tampering — but investigators see exactly
    /// how many dead bytes the index carries.
    pub quarantined_bytes: u64,
    /// The commit-chain head at `visible_docs`: a SHA-256 commitment to
    /// every byte of the visible prefix.  An investigator holding a
    /// trusted head out-of-band (printed at archival time, escrowed,
    /// etc.) can compare it against this field to verify the response
    /// was computed over the untampered prefix.  Stable for the
    /// lifetime of a pinned snapshot: the head is indexed by watermark,
    /// not by writer progress.
    pub chain_head: ChainHead,
}

impl QueryResponse {
    /// Just the document IDs, in result order.
    pub fn docs(&self) -> Vec<DocId> {
        self.hits.iter().map(|h| h.doc).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_build_expected_shapes() {
        assert_eq!(
            Query::disjunctive("alpha beta", 5),
            Query::Disjunctive {
                terms: TermSelector::Text("alpha beta".into()),
                top_k: 5
            }
        );
        assert_eq!(
            Query::conjunctive(vec![TermId(1), TermId(2)]),
            Query::Conjunctive {
                terms: TermSelector::Ids(vec![TermId(1), TermId(2)]),
                range: None
            }
        );
        assert_eq!(
            Query::conjunctive_in_range("x", Timestamp(3), Timestamp(9)),
            Query::Conjunctive {
                terms: TermSelector::Text("x".into()),
                range: Some(TimeRange::new(Timestamp(3), Timestamp(9)))
            }
        );
        assert_eq!(
            Query::time_range(Timestamp(1), Timestamp(2)),
            Query::TimeRange(TimeRange::new(Timestamp(1), Timestamp(2)))
        );
    }

    #[test]
    fn time_range_emptiness() {
        assert!(TimeRange::new(Timestamp(5), Timestamp(4)).is_empty());
        assert!(!TimeRange::new(Timestamp(5), Timestamp(5)).is_empty());
    }

    #[test]
    fn term_selector_conversions() {
        let t: TermSelector = "hello".into();
        assert_eq!(t, TermSelector::Text("hello".into()));
        let ids: TermSelector = (&[TermId(7)][..]).into();
        assert_eq!(ids, TermSelector::Ids(vec![TermId(7)]));
    }
}
