//! Concurrent query service: one writer, many readers.
//!
//! The paper's engine commits every index entry *inside* the insert call
//! (§2.3 real-time update), which makes the write path inherently serial —
//! but queries only ever take `&self`.  This module splits the two roles:
//!
//! * [`IndexWriter`] — the exclusive commit path.  It is deliberately not
//!   `Clone`: one writer exists per engine, matching the single
//!   append-only commit sequence of the WORM model.
//! * [`Searcher`] — a cheaply cloneable, `Send + Sync` read handle.  Any
//!   number of threads execute [`Query`]s through it concurrently with an
//!   active writer.
//!
//! Consistency model: the writer publishes a **document-count watermark**
//! after each commit (or batch).  A searcher executes against the
//! watermark it observes at call time, so a query sees a stable prefix of
//! the commit sequence — never a half-committed document, even though the
//! writer may be appending concurrently.  [`Searcher::pin`] freezes the
//! watermark for repeatable reads across several queries.
//!
//! I/O accounting is thread-safe: each [`QueryResponse`] carries its own
//! per-query [`IoStats`] delta, and the service accumulates them into a
//! shared [`AtomicIoStats`] readable without taking the engine lock.

use crate::engine::{SearchEngine, SearchError};
use crate::query::{Query, QueryResponse};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard};
use tks_postings::{DocId, TermId, Timestamp};
use tks_worm::{AtomicIoStats, IoStats};

/// State shared between the writer and all searchers.
#[derive(Debug)]
struct Shared {
    engine: RwLock<SearchEngine>,
    /// Number of fully committed documents, published with `Release`
    /// ordering after the engine lock is dropped.
    watermark: AtomicU64,
    /// Aggregate I/O charged to the query path across all searchers.
    query_stats: AtomicIoStats,
}

/// Split an engine into its exclusive write handle and a shareable read
/// handle.
///
/// ```
/// use tks_core::engine::{EngineConfig, SearchEngine};
/// use tks_core::query::Query;
/// use tks_core::service::service;
/// use tks_postings::Timestamp;
///
/// let (mut writer, searcher) = service(SearchEngine::new(EngineConfig::default()).unwrap());
/// writer.commit("quarterly earnings restatement", Timestamp(100)).unwrap();
/// let resp = searcher.execute(Query::disjunctive("earnings", 10)).unwrap();
/// assert_eq!(resp.hits.len(), 1);
/// ```
pub fn service(engine: SearchEngine) -> (IndexWriter, Searcher) {
    let shared = Arc::new(Shared {
        watermark: AtomicU64::new(engine.num_docs()),
        engine: RwLock::new(engine),
        query_stats: AtomicIoStats::new(),
    });
    (
        IndexWriter {
            shared: Arc::clone(&shared),
        },
        Searcher {
            shared,
            pinned: None,
        },
    )
}

/// The exclusive real-time commit path (see module docs).
#[derive(Debug)]
pub struct IndexWriter {
    shared: Arc<Shared>,
}

impl IndexWriter {
    /// Commit one text document.  When this returns, the document and all
    /// of its index entries are durably on WORM *and* visible to every
    /// searcher.
    pub fn commit(&mut self, text: &str, ts: Timestamp) -> Result<DocId, SearchError> {
        self.commit_with(|engine| engine.add_document(text, ts))
    }

    /// Commit one pre-tokenised document (the synthetic-corpus path; see
    /// [`SearchEngine::add_document_terms`]).
    pub fn commit_terms(
        &mut self,
        terms: &[(TermId, u32)],
        ts: Timestamp,
        raw_text: Option<&str>,
    ) -> Result<DocId, SearchError> {
        self.commit_with(|engine| engine.add_document_terms(terms, ts, raw_text))
    }

    /// Commit a batch of text documents under a single engine lock
    /// acquisition, publishing the watermark once at the end.  Readers
    /// see either none or all of the batch.
    ///
    /// On error the documents committed before the failing one remain
    /// committed (WORM writes cannot be undone) and *are* published, so
    /// no committed document is ever hidden; the error reports how far
    /// the batch got and how many bytes of torn-commit residue the
    /// failing document left on the devices.  The published watermark
    /// covers whole documents only — the failed document's partial
    /// writes sit behind the commit point and are never visible.
    pub fn commit_batch<'a, I>(&mut self, docs: I) -> Result<Vec<DocId>, BatchError>
    where
        I: IntoIterator<Item = (&'a str, Timestamp)>,
    {
        let mut engine = self
            .shared
            .engine
            .write()
            .unwrap_or_else(|p| p.into_inner());
        let quarantined_before = engine.quarantined_bytes();
        let mut committed = Vec::new();
        let mut failure = None;
        for (text, ts) in docs {
            match engine.add_document(text, ts) {
                Ok(doc) => committed.push(doc),
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            }
        }
        // num_docs() counts only documents whose DOCMETA record — the
        // commit point — is durably whole, so this watermark can never
        // expose a torn document.
        let visible = engine.num_docs();
        let torn_tail_bytes = engine.quarantined_bytes() - quarantined_before;
        drop(engine);
        self.shared.watermark.store(visible, Ordering::Release);
        match failure {
            None => Ok(committed),
            Some(error) => Err(BatchError {
                committed,
                torn_tail_bytes,
                error,
            }),
        }
    }

    /// Run one exclusive operation against the engine and publish the new
    /// watermark afterwards.
    fn commit_with<R>(
        &mut self,
        op: impl FnOnce(&mut SearchEngine) -> Result<R, SearchError>,
    ) -> Result<R, SearchError> {
        let mut engine = self
            .shared
            .engine
            .write()
            .unwrap_or_else(|p| p.into_inner());
        let result = op(&mut engine);
        let visible = engine.num_docs();
        drop(engine);
        // Publish even on error.  A failed insert CAN leave partial WORM
        // state (torn-tail residue the engine quarantines behind the
        // commit point), but `num_docs()` only counts documents whose
        // DOCMETA record is whole, so the watermark stays truthful — and
        // an earlier operation may have advanced the count.
        self.shared.watermark.store(visible, Ordering::Release);
        result
    }

    /// Exclusive access to the engine for maintenance that is not a
    /// document commit (audits, attack harnesses, recovery drills).  The
    /// watermark is re-published afterwards.
    pub fn with_engine<R>(&mut self, f: impl FnOnce(&mut SearchEngine) -> R) -> R {
        let mut engine = self
            .shared
            .engine
            .write()
            .unwrap_or_else(|p| p.into_inner());
        let result = f(&mut engine);
        let visible = engine.num_docs();
        drop(engine);
        self.shared.watermark.store(visible, Ordering::Release);
        result
    }

    /// A new read handle onto the same engine.
    pub fn searcher(&self) -> Searcher {
        Searcher {
            shared: Arc::clone(&self.shared),
            pinned: None,
        }
    }

    /// Documents committed and visible so far.
    pub fn committed_docs(&self) -> u64 {
        self.shared.watermark.load(Ordering::Acquire)
    }

    /// Tear the service down and return the engine, if no searcher
    /// handles remain.  Otherwise `Err(self)` (the searchers would be
    /// left dangling).
    // audit:allow(error-taxonomy) — try_unwrap idiom: Err hands `self` back.
    pub fn try_into_engine(self) -> Result<SearchEngine, IndexWriter> {
        match Arc::try_unwrap(self.shared) {
            Ok(shared) => Ok(shared
                .engine
                .into_inner()
                .unwrap_or_else(|p| p.into_inner())),
            Err(shared) => Err(IndexWriter { shared }),
        }
    }
}

/// A batch commit that failed part-way (see [`IndexWriter::commit_batch`]).
#[derive(Debug)]
pub struct BatchError {
    /// Documents that did commit (and are published) before the failure.
    pub committed: Vec<DocId>,
    /// Bytes the failing document wrote to WORM before the error: dead
    /// weight quarantined behind the commit point (WORM cannot be
    /// truncated).  Zero when the failure preceded the first append,
    /// e.g. a validation error.
    pub torn_tail_bytes: u64,
    /// Why the batch stopped.
    pub error: SearchError,
}

impl std::fmt::Display for BatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "batch stopped after {} documents ({} torn-tail byte(s) quarantined): {}",
            self.committed.len(),
            self.torn_tail_bytes,
            self.error
        )
    }
}

impl std::error::Error for BatchError {}

/// A shareable, `Send + Sync` read handle (see module docs).
///
/// Cloning is cheap (one `Arc` bump).  All methods take `&self`.
#[derive(Debug, Clone)]
pub struct Searcher {
    shared: Arc<Shared>,
    /// `Some(w)` = snapshot handle pinned at watermark `w`.
    pinned: Option<u64>,
}

impl Searcher {
    /// Execute one query against the currently visible snapshot (or the
    /// pinned one, for handles from [`pin`](Self::pin)).
    pub fn execute(&self, query: Query) -> Result<QueryResponse, SearchError> {
        let visible = self
            .pinned
            .unwrap_or_else(|| self.shared.watermark.load(Ordering::Acquire));
        let engine = self.read_engine();
        let response = engine.execute_bounded(&query, visible)?;
        drop(engine);
        self.shared.query_stats.record(response.io);
        Ok(response)
    }

    /// Execute many queries across `threads` OS threads, preserving input
    /// order in the output.  Queries are dealt round-robin; every thread
    /// shares this searcher's snapshot semantics (a pinned handle pins
    /// all of them).
    pub fn execute_many(
        &self,
        queries: Vec<Query>,
        threads: usize,
    ) -> Vec<Result<QueryResponse, SearchError>> {
        if queries.is_empty() {
            return Vec::new();
        }
        let threads = threads.max(1).min(queries.len());
        let indexed: Vec<(usize, Query)> = queries.into_iter().enumerate().collect();
        let mut slots: Vec<Option<Result<QueryResponse, SearchError>>> =
            (0..indexed.len()).map(|_| None).collect();
        let mut panicked = false;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let work: Vec<(usize, Query)> = indexed
                        .iter()
                        .skip(t)
                        .step_by(threads)
                        .map(|(i, q)| (*i, q.clone()))
                        .collect();
                    scope.spawn(move || {
                        work.into_iter()
                            .map(|(i, q)| (i, self.execute(q)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                match h.join() {
                    Ok(results) => {
                        for (i, r) in results {
                            slots[i] = Some(r);
                        }
                    }
                    // A panicking query thread must not take the service
                    // down with it; its queries report the failure instead.
                    Err(_) => panicked = true,
                }
            }
        });
        slots
            .into_iter()
            .map(|s| {
                s.unwrap_or_else(|| {
                    Err(SearchError::Internal(if panicked {
                        "query thread panicked before filling its slots".into()
                    } else {
                        "query slot left unfilled".into()
                    }))
                })
            })
            .collect()
    }

    /// A handle pinned to the snapshot visible right now: every query
    /// through it sees exactly the documents committed at this moment,
    /// regardless of later writer progress (repeatable reads).
    pub fn pin(&self) -> Searcher {
        Searcher {
            shared: Arc::clone(&self.shared),
            pinned: Some(self.visible_docs()),
        }
    }

    /// The watermark this handle executes against.
    pub fn visible_docs(&self) -> u64 {
        self.pinned
            .unwrap_or_else(|| self.shared.watermark.load(Ordering::Acquire))
    }

    /// Aggregate I/O charged to the query path across *all* searchers of
    /// this service (lock-free).
    pub fn query_io_stats(&self) -> IoStats {
        self.shared.query_stats.snapshot()
    }

    /// Counters of the decoded-block LRU shared by every searcher of this
    /// service (briefly takes the engine read lock).  The cache sits above
    /// the WORM storage cache, so its hits are block decodes avoided —
    /// they never change query results or reported block counts.
    pub fn decoded_cache_stats(&self) -> tks_postings::DecodedCacheStats {
        self.read_engine().decoded_cache_stats()
    }

    /// Run a full audit against the live engine (takes the read lock).
    pub fn audit(&self) -> crate::engine::AuditReport {
        self.read_engine().audit()
    }

    /// Read-only access to the engine for inspection helpers that need
    /// more than [`execute`](Self::execute) (e.g. document text lookups).
    /// Holding the guard blocks the writer; keep it short.
    pub fn engine(&self) -> RwLockReadGuard<'_, SearchEngine> {
        self.read_engine()
    }

    fn read_engine(&self) -> RwLockReadGuard<'_, SearchEngine> {
        self.shared.engine.read().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::merge::MergeAssignment;

    fn small_service() -> (IndexWriter, Searcher) {
        service(
            SearchEngine::new(EngineConfig {
                assignment: MergeAssignment::uniform(8),
                block_size: 512,
                cache_bytes: 1 << 20,
                ..Default::default()
            })
            .unwrap(),
        )
    }

    #[test]
    fn searcher_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Searcher>();
        assert_send_sync::<IndexWriter>();
    }

    #[test]
    fn commits_become_visible_to_existing_searchers() {
        let (mut writer, searcher) = small_service();
        assert_eq!(searcher.visible_docs(), 0);
        let d0 = writer.commit("alpha beta", Timestamp(1)).unwrap();
        assert_eq!(searcher.visible_docs(), 1);
        let resp = searcher.execute(Query::disjunctive("alpha", 10)).unwrap();
        assert_eq!(resp.docs(), vec![d0]);
        assert!(resp.trusted);
    }

    #[test]
    fn pinned_searcher_ignores_later_commits() {
        let (mut writer, searcher) = small_service();
        writer.commit("alpha", Timestamp(1)).unwrap();
        let pinned = searcher.pin();
        writer.commit("alpha again", Timestamp(2)).unwrap();
        let live = searcher.execute(Query::disjunctive("alpha", 10)).unwrap();
        let old = pinned.execute(Query::disjunctive("alpha", 10)).unwrap();
        assert_eq!(live.hits.len(), 2);
        assert_eq!(old.hits.len(), 1);
        assert_eq!(old.visible_docs, 1);
        // A fresh pin of the live handle sees everything again.
        assert_eq!(pinned.pin().visible_docs(), 1);
        assert_eq!(searcher.pin().visible_docs(), 2);
    }

    #[test]
    fn commit_batch_publishes_once_and_reports_partial_failure() {
        let (mut writer, searcher) = small_service();
        let docs = writer
            .commit_batch([("a b", Timestamp(1)), ("b c", Timestamp(2))])
            .unwrap();
        assert_eq!(docs.len(), 2);
        assert_eq!(searcher.visible_docs(), 2);

        // Second batch fails on a non-monotonic timestamp after one
        // success: the successful prefix stays visible.
        let err = writer
            .commit_batch([("d", Timestamp(3)), ("e", Timestamp(0))])
            .unwrap_err();
        assert_eq!(err.committed.len(), 1);
        assert!(matches!(
            err.error,
            SearchError::NonMonotonicTimestamp { .. }
        ));
        // A validation failure happens before any WORM append.
        assert_eq!(err.torn_tail_bytes, 0);
        assert_eq!(searcher.visible_docs(), 3);
    }

    #[test]
    fn commit_batch_reports_torn_tail_and_never_publishes_partial_doc() {
        let (mut writer, searcher) = small_service();
        writer.commit("alpha beta", Timestamp(1)).unwrap();
        // Kill the posting-store device partway through the next commit.
        writer.with_engine(|e| {
            let offset = e.list_store().fs().device().bytes_committed() + 5;
            e.list_store_mut()
                .fs_mut()
                .arm_faults(tks_worm::FaultPolicy::torn_at_offset(offset));
        });
        let err = writer
            .commit_batch([("beta gamma", Timestamp(2)), ("gamma delta", Timestamp(3))])
            .unwrap_err();
        assert!(err.committed.is_empty());
        assert!(
            err.torn_tail_bytes > 0,
            "a mid-append failure must report its WORM residue: {err}"
        );
        // The watermark covers whole documents only; the torn document
        // is invisible but its residue shows in trust metadata.
        assert_eq!(searcher.visible_docs(), 1);
        let resp = searcher.execute(Query::conjunctive("beta")).unwrap();
        assert_eq!(resp.docs(), vec![DocId(0)]);
        assert!(resp.quarantined_bytes >= err.torn_tail_bytes);
    }

    #[test]
    fn execute_many_preserves_order() {
        let (mut writer, searcher) = small_service();
        writer.commit("alpha beta", Timestamp(1)).unwrap();
        writer.commit("beta gamma", Timestamp(2)).unwrap();
        let queries = vec![
            Query::disjunctive("alpha", 10),
            Query::disjunctive("beta", 10),
            Query::conjunctive("beta gamma"),
            Query::time_range(Timestamp(0), Timestamp(1)),
            Query::disjunctive("gamma", 10),
        ];
        let sequential: Vec<Vec<DocId>> = queries
            .iter()
            .map(|q| searcher.execute(q.clone()).unwrap().docs())
            .collect();
        for threads in [1, 2, 4, 8] {
            let parallel: Vec<Vec<DocId>> = searcher
                .execute_many(queries.clone(), threads)
                .into_iter()
                .map(|r| r.unwrap().docs())
                .collect();
            assert_eq!(parallel, sequential, "threads = {threads}");
        }
    }

    #[test]
    fn query_io_accumulates_across_searchers() {
        let (mut writer, searcher) = small_service();
        for i in 0..50u64 {
            writer
                .commit(&format!("common word{i}"), Timestamp(i))
                .unwrap();
        }
        let other = searcher.clone();
        let a = searcher.execute(Query::conjunctive("common")).unwrap();
        let b = other.execute(Query::conjunctive("common")).unwrap();
        assert!(a.blocks_read > 0);
        assert_eq!(
            searcher.query_io_stats().read_ios,
            a.io.read_ios + b.io.read_ios
        );
    }

    #[test]
    fn decoded_cache_is_shared_across_searchers() {
        let (mut writer, searcher) = small_service();
        for i in 0..50u64 {
            writer
                .commit(&format!("common word{i}"), Timestamp(i))
                .unwrap();
        }
        let other = searcher.clone();
        let a = searcher.execute(Query::conjunctive("common")).unwrap();
        let b = other.execute(Query::conjunctive("common")).unwrap();
        assert_eq!(a.docs(), b.docs());
        let stats = searcher.decoded_cache_stats();
        assert!(stats.misses > 0, "first scan decodes blocks");
        assert!(
            stats.hits > 0,
            "the second searcher must reuse the first's decoded blocks"
        );
        assert_eq!(stats, other.decoded_cache_stats());
    }

    #[test]
    fn try_into_engine_requires_sole_ownership() {
        let (writer, searcher) = small_service();
        let writer = writer.try_into_engine().unwrap_err();
        drop(searcher);
        let engine = writer.try_into_engine().unwrap();
        assert_eq!(engine.num_docs(), 0);
    }
}
