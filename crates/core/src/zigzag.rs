//! Zigzag joins for conjunctive queries (paper §4, Figure 5).
//!
//! Conjunctive queries intersect the posting lists of their keywords.
//! Because posting lists are sorted on document ID, the **zigzag join**
//! alternately advances each side to the other's frontier with
//! `FindGeq()`, skipping runs that cannot match.  With an auxiliary index
//! supporting `FindGeq` in O(log N) — a jump index, or the untrustworthy
//! B+ tree baseline — the join degenerates gracefully: O(l₁ + l₂) for
//! similar-sized lists, O(l₁ log l₂) when one list is much shorter (§4.5).
//!
//! The join is generic over [`DocCursor`], with implementations for:
//!
//! * [`JumpCursor`] — a (possibly merged) posting list stored in a block
//!   jump index, filtered to one term's tag;
//! * [`BTreeCursor`] — the paper's B+ tree baseline;
//! * [`MemCursor`] — an in-memory sorted run (intermediate join results);
//!
//! each counting the *distinct* blocks it reads, the unit in which
//! Figure 8(c) reports query cost.
//!
//! Proposition 3 guarantees the join is *complete*: `FindGeq` over a jump
//! index can never skip a committed document, so a document present in
//! every keyword's list always appears in the result — the property that
//! makes conjunctive search trustworthy.

use std::collections::HashSet;
use tks_btree::AppendOnlyBPlusTree;
use tks_jump::block::BlockJumpIndex;
use tks_jump::Position;
use tks_postings::{DocId, Posting};

/// A sorted stream of document IDs supporting index-assisted skipping.
pub trait DocCursor {
    /// The smallest document ID in the stream.
    fn start(&mut self) -> Option<DocId>;
    /// The smallest document ID ≥ `k` (paper: `FindGeq`).
    fn find_geq(&mut self, k: DocId) -> Option<DocId>;
    /// Distinct blocks read so far (query-cost unit).
    fn blocks_read(&self) -> u64;
    /// Approximate stream length, for join ordering (shortest first).
    fn len_hint(&self) -> u64;
}

/// Figure 5's two-way zigzag join.
pub fn zigzag_join(l1: &mut dyn DocCursor, l2: &mut dyn DocCursor) -> Vec<DocId> {
    let mut out = Vec::new();
    let (mut top1, mut top2) = match (l1.start(), l2.start()) {
        (Some(a), Some(b)) => (a, b),
        _ => return out,
    };
    loop {
        if top1 < top2 {
            match l1.find_geq(top2) {
                Some(t) => top1 = t,
                None => return out,
            }
        } else if top2 < top1 {
            match l2.find_geq(top1) {
                Some(t) => top2 = t,
                None => return out,
            }
        } else {
            out.push(top1);
            let next = DocId(top1.0 + 1);
            match (l1.find_geq(next), l2.find_geq(next)) {
                (Some(a), Some(b)) => {
                    top1 = a;
                    top2 = b;
                }
                _ => return out,
            }
        }
    }
}

/// Multi-way conjunctive join: "Multi-keyword queries are answered with
/// zigzag joins of the posting lists, starting with the shortest two
/// lists" (§4.5); each partial result is then zigzag-joined with the next
/// shortest list.  Returns the matching documents and the total distinct
/// blocks read.
pub fn zigzag_join_multi(mut cursors: Vec<Box<dyn DocCursor + '_>>) -> (Vec<DocId>, u64) {
    if cursors.is_empty() {
        return (Vec::new(), 0);
    }
    cursors.sort_by_key(|c| c.len_hint());
    let mut blocks = 0u64;
    if cursors.len() == 1 {
        // Degenerate conjunction: stream the single list.
        let Some(mut c) = cursors.pop() else {
            return (Vec::new(), 0);
        };
        let mut out = Vec::new();
        let mut cur = c.start();
        while let Some(d) = cur {
            out.push(d);
            cur = c.find_geq(DocId(d.0 + 1));
        }
        return (out, c.blocks_read());
    }
    let mut iter = cursors.into_iter();
    let (Some(mut a), Some(mut b)) = (iter.next(), iter.next()) else {
        return (Vec::new(), blocks);
    };
    let mut partial = zigzag_join(a.as_mut(), b.as_mut());
    blocks += a.blocks_read() + b.blocks_read();
    for mut c in iter {
        if partial.is_empty() {
            // Still account the cursors we never touch?  No: an engine
            // would stop as soon as the intersection is empty.
            break;
        }
        let mut mem = MemCursor::new(&partial);
        partial = zigzag_join(&mut mem, c.as_mut());
        blocks += c.blocks_read();
    }
    (partial, blocks)
}

// ---------------------------------------------------------------------
// Cursor implementations
// ---------------------------------------------------------------------

/// Cursor over an in-memory sorted run (intermediate results).  Free of
/// block I/O by definition.
#[derive(Debug)]
pub struct MemCursor<'a> {
    docs: &'a [DocId],
    pos: usize,
}

impl<'a> MemCursor<'a> {
    /// Wrap a sorted, duplicate-free slice.
    pub fn new(docs: &'a [DocId]) -> Self {
        debug_assert!(docs.windows(2).all(|w| w[0] < w[1]), "runs must be sorted");
        Self { docs, pos: 0 }
    }
}

impl DocCursor for MemCursor<'_> {
    fn start(&mut self) -> Option<DocId> {
        self.pos = 0;
        self.docs.first().copied()
    }

    fn find_geq(&mut self, k: DocId) -> Option<DocId> {
        // Monotone access pattern: gallop from the current position.  A
        // zigzag join between lists of very different sizes advances the
        // long cursor by small hops, so probing 1, 2, 4, … from `pos`
        // costs O(log(step)) instead of O(log(remaining)) per call.
        let rest = self.docs.get(self.pos..).unwrap_or(&[]);
        if rest.first().is_none_or(|&d| d >= k) {
            return rest.first().copied();
        }
        // Invariant: rest[lo] < k; probe until rest[lo + step] >= k or
        // the run ends.
        let mut lo = 0usize;
        let mut step = 1usize;
        while let Some(&d) = rest.get(lo + step) {
            if d < k {
                lo += step;
                step <<= 1;
            } else {
                break;
            }
        }
        let hi = rest.len().min(lo + step + 1);
        let tail = rest.get(lo + 1..hi).unwrap_or(&[]);
        self.pos += lo + 1 + tail.partition_point(|&d| d < k);
        self.docs.get(self.pos).copied()
    }

    fn blocks_read(&self) -> u64 {
        0
    }

    fn len_hint(&self) -> u64 {
        self.docs.len() as u64
    }
}

/// Cursor over a (possibly merged) posting list held in a block jump
/// index, yielding only postings whose term tag matches.
#[derive(Debug)]
pub struct JumpCursor<'a> {
    idx: &'a BlockJumpIndex<Posting>,
    /// Accept only postings with this tag (`None` = unmerged list, accept
    /// all).
    tag: Option<u32>,
    len_hint: u64,
    visited: HashSet<u32>,
}

impl<'a> JumpCursor<'a> {
    /// Cursor over `idx`, filtered to `tag`.  `len_hint` orders joins; use
    /// the term's posting count when known, else the index length.
    pub fn new(idx: &'a BlockJumpIndex<Posting>, tag: Option<u32>, len_hint: u64) -> Self {
        Self {
            idx,
            tag,
            len_hint,
            visited: HashSet::new(),
        }
    }

    /// Walk forward from `pos` until the tag matches.
    fn settle(&mut self, mut pos: Position) -> Option<DocId> {
        loop {
            let e = self.idx.entry_at(pos)?;
            match self.tag {
                Some(t) if e.term_tag != t => {
                    let visited = &mut self.visited;
                    pos = self.idx.advance(pos, |b| {
                        visited.insert(b);
                    })?;
                }
                _ => return Some(e.doc),
            }
        }
    }
}

impl DocCursor for JumpCursor<'_> {
    fn start(&mut self) -> Option<DocId> {
        self.find_geq(DocId(0))
    }

    fn find_geq(&mut self, k: DocId) -> Option<DocId> {
        let visited = &mut self.visited;
        let pos = self
            .idx
            .find_geq_with(k.0, |b| {
                visited.insert(b);
            })
            .unwrap_or_else(|tamper| {
                // Surfacing tamper evidence mid-join is the engine's job;
                // at this level a corrupt path reads as stream end.  The
                // audit API reports the details.
                debug_assert!(false, "tamper during find_geq: {tamper}");
                None
            })?;
        self.settle(pos)
    }

    fn blocks_read(&self) -> u64 {
        self.visited.len() as u64
    }

    fn len_hint(&self) -> u64 {
        self.len_hint
    }
}

/// Cursor over the paper's baseline: one B+ tree per (unmerged) posting
/// list.
#[derive(Debug)]
pub struct BTreeCursor<'a> {
    tree: &'a AppendOnlyBPlusTree,
    visited: HashSet<u32>,
}

impl<'a> BTreeCursor<'a> {
    /// Wrap a tree whose keys are the posting list's document IDs.
    pub fn new(tree: &'a AppendOnlyBPlusTree) -> Self {
        Self {
            tree,
            visited: HashSet::new(),
        }
    }
}

impl DocCursor for BTreeCursor<'_> {
    fn start(&mut self) -> Option<DocId> {
        self.find_geq(DocId(0))
    }

    fn find_geq(&mut self, k: DocId) -> Option<DocId> {
        let visited = &mut self.visited;
        self.tree
            .find_geq(k.0, &mut |n| {
                visited.insert(n.0);
            })
            .map(DocId)
    }

    fn blocks_read(&self) -> u64 {
        self.visited.len() as u64
    }

    fn len_hint(&self) -> u64 {
        self.tree.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tks_btree::BTreeConfig;
    use tks_jump::JumpConfig;

    fn mem(v: &[u64]) -> Vec<DocId> {
        v.iter().map(|&d| DocId(d)).collect()
    }

    #[test]
    fn two_way_join_basic() {
        let a = mem(&[1, 3, 5, 7, 9, 11]);
        let b = mem(&[2, 3, 4, 9, 10, 11, 12]);
        let mut ca = MemCursor::new(&a);
        let mut cb = MemCursor::new(&b);
        assert_eq!(zigzag_join(&mut ca, &mut cb), mem(&[3, 9, 11]));
    }

    #[test]
    fn galloping_find_geq_matches_binary_search() {
        // Deterministic skewed run; compare the galloping cursor against a
        // plain partition_point over the remaining suffix for a monotone
        // probe sequence.
        let docs: Vec<DocId> = (0..500u64).map(|i| DocId(i * i % 7 + 11 * i)).collect();
        let mut sorted = docs.clone();
        sorted.sort();
        sorted.dedup();
        let mut cur = MemCursor::new(&sorted);
        assert_eq!(cur.start(), sorted.first().copied());
        let mut reference = 0usize;
        for probe in (0..6000u64).step_by(7).map(DocId) {
            reference += sorted[reference..].partition_point(|&d| d < probe);
            assert_eq!(
                cur.find_geq(probe),
                sorted.get(reference).copied(),
                "find_geq({probe}) diverged from binary search"
            );
        }
        // Past the end: stays exhausted.
        assert_eq!(cur.find_geq(DocId(u64::MAX)), None);
        assert_eq!(cur.find_geq(DocId(u64::MAX)), None);
    }

    #[test]
    fn join_with_empty_side() {
        let a = mem(&[]);
        let b = mem(&[1, 2]);
        let mut ca = MemCursor::new(&a);
        let mut cb = MemCursor::new(&b);
        assert!(zigzag_join(&mut ca, &mut cb).is_empty());
    }

    #[test]
    fn disjoint_lists_join_empty() {
        let a = mem(&[1, 3, 5]);
        let b = mem(&[2, 4, 6]);
        let mut ca = MemCursor::new(&a);
        let mut cb = MemCursor::new(&b);
        assert!(zigzag_join(&mut ca, &mut cb).is_empty());
    }

    #[test]
    fn identical_lists_join_to_themselves() {
        let a = mem(&[10, 20, 30]);
        let mut ca = MemCursor::new(&a);
        let b = a.clone();
        let mut cb = MemCursor::new(&b);
        assert_eq!(zigzag_join(&mut ca, &mut cb), a);
    }

    fn jump_list(postings: &[(u64, u32)]) -> BlockJumpIndex<Posting> {
        let cfg = JumpConfig::new(
            JumpConfig::new(1 << 13, 3, 1 << 13).pointer_region_bytes() + 8 * 4,
            3,
            1 << 13,
        );
        let mut idx = BlockJumpIndex::new(cfg);
        for &(d, tag) in postings {
            idx.insert(Posting::new(DocId(d), tag, 1)).unwrap();
        }
        idx
    }

    #[test]
    fn jump_cursor_filters_tags() {
        // A merged list with two terms interleaved.
        let idx = jump_list(&[(1, 0), (1, 1), (2, 0), (5, 1), (7, 0), (7, 1), (9, 0)]);
        let mut c = JumpCursor::new(&idx, Some(1), 3);
        assert_eq!(c.start(), Some(DocId(1)));
        assert_eq!(c.find_geq(DocId(2)), Some(DocId(5)));
        assert_eq!(c.find_geq(DocId(6)), Some(DocId(7)));
        assert_eq!(c.find_geq(DocId(8)), None);
        assert!(c.blocks_read() >= 1);
    }

    #[test]
    fn jump_join_matches_reference_intersection() {
        let l1: Vec<(u64, u32)> = (0..300).map(|i| (i * 2, 0)).collect(); // evens
        let l2: Vec<(u64, u32)> = (0..200).map(|i| (i * 3, 0)).collect(); // multiples of 3
        let i1 = jump_list(&l1);
        let i2 = jump_list(&l2);
        let mut c1 = JumpCursor::new(&i1, Some(0), l1.len() as u64);
        let mut c2 = JumpCursor::new(&i2, Some(0), l2.len() as u64);
        let got = zigzag_join(&mut c1, &mut c2);
        let expect: Vec<DocId> = (0..600).filter(|d| d % 6 == 0).map(DocId).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn btree_cursor_joins() {
        let mut t1 = AppendOnlyBPlusTree::new(BTreeConfig::tiny(4, 4));
        let mut t2 = AppendOnlyBPlusTree::new(BTreeConfig::tiny(4, 4));
        for k in (0..100).map(|i| i * 2) {
            t1.insert(k).unwrap();
        }
        for k in (0..70).map(|i| i * 3) {
            t2.insert(k).unwrap();
        }
        let mut c1 = BTreeCursor::new(&t1);
        let mut c2 = BTreeCursor::new(&t2);
        let got = zigzag_join(&mut c1, &mut c2);
        let expect: Vec<DocId> = (0..200).filter(|d| d % 6 == 0).map(DocId).collect();
        assert_eq!(got, expect);
        assert!(c1.blocks_read() > 0 && c2.blocks_read() > 0);
    }

    #[test]
    fn multi_way_join_shrinks_with_each_list() {
        let a = mem(&(0..120).map(|i| i * 2).collect::<Vec<_>>()); // evens
        let b = mem(&(0..80).map(|i| i * 3).collect::<Vec<_>>()); // 3s
        let c = mem(&(0..60).map(|i| i * 4).collect::<Vec<_>>()); // 4s
        let cursors: Vec<Box<dyn DocCursor>> = vec![
            Box::new(MemCursor::new(&a)),
            Box::new(MemCursor::new(&b)),
            Box::new(MemCursor::new(&c)),
        ];
        let (result, _blocks) = zigzag_join_multi(cursors);
        let expect: Vec<DocId> = (0..240).filter(|d| d % 12 == 0).map(DocId).collect();
        assert_eq!(result, expect);
    }

    #[test]
    fn multi_way_empty_and_single() {
        let (r, b) = zigzag_join_multi(Vec::new());
        assert!(r.is_empty());
        assert_eq!(b, 0);
        let a = mem(&[4, 8]);
        let cursors: Vec<Box<dyn DocCursor>> = vec![Box::new(MemCursor::new(&a))];
        let (r, _) = zigzag_join_multi(cursors);
        assert_eq!(r, mem(&[4, 8]));
    }

    #[test]
    fn zigzag_completeness_proposition_3_in_action() {
        // A doc present in both lists is always in the join: exhaustive
        // check over a pseudo-random workload.
        let mut x = 1u64;
        let mut next = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 33) % 2000
        };
        for round in 0..20 {
            let mut l1: Vec<u64> = (0..150).map(|_| next()).collect();
            let mut l2: Vec<u64> = (0..150).map(|_| next()).collect();
            l1.sort_unstable();
            l1.dedup();
            l2.sort_unstable();
            l2.dedup();
            let i1 = jump_list(&l1.iter().map(|&d| (d, 0)).collect::<Vec<_>>());
            let i2 = jump_list(&l2.iter().map(|&d| (d, 0)).collect::<Vec<_>>());
            let mut c1 = JumpCursor::new(&i1, Some(0), l1.len() as u64);
            let mut c2 = JumpCursor::new(&i2, Some(0), l2.len() as u64);
            let got = zigzag_join(&mut c1, &mut c2);
            let set2: std::collections::HashSet<u64> = l2.iter().copied().collect();
            let expect: Vec<DocId> = l1
                .iter()
                .copied()
                .filter(|d| set2.contains(d))
                .map(DocId)
                .collect();
            assert_eq!(got, expect, "round {round}");
        }
    }
}
