//! # `tks-core` — trustworthy keyword search for compliant records retention
//!
//! The primary contribution of *Mitra, Hsu & Winslett, VLDB 2006*,
//! assembled over the substrate crates:
//!
//! * **merged posting lists** (paper §3): a merge assignment maps each
//!   term to one of `M` physical lists, `M` = storage-cache blocks, so
//!   every index append hits the non-volatile cache and index updates
//!   happen in *real time* — no buffering window for the adversary to
//!   exploit ([`merge`]);
//! * an **analytic cost model** (Eq. 1) and per-query cost accounting
//!   driving the Figure 3 experiments ([`cost`]);
//! * the **functional search engine** ([`engine`]): WORM-backed documents
//!   and posting lists, real-time per-document index update, disjunctive
//!   queries with cosine/Okapi-BM25 ranking, conjunctive queries via
//!   zigzag joins over jump indexes, trustworthy commit-time range
//!   restriction, and audits that surface tamper evidence;
//! * **zigzag joins** (paper Figure 5) over pluggable access paths — jump
//!   index, B+ tree, or plain scan ([`zigzag`]);
//! * **epoch-based statistics learning** (paper §3.3): per-epoch indexes
//!   whose merge assignment is chosen from the previous epoch's observed
//!   statistics ([`epoch`]);
//! * the **ranking attack** of §5 and its countermeasures ([`rank_attack`]);
//! * **simulation drivers** that reproduce the paper's Figures 2, 3, 4
//!   and 8 at configurable scale ([`sim`]).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod buffered;
pub mod cost;
pub mod engine;
pub mod epoch;
pub mod error;
pub mod merge;
pub mod positions;
pub mod query;
pub mod rank_attack;
pub mod ranking;
pub mod sched;
pub mod service;
pub mod sim;
pub mod tokenizer;
pub mod zigzag;

pub use cost::{cumulative_workload_curve, unmerged_workload_cost, workload_cost};
pub use engine::{
    ConfigError, EngineConfig, EngineParts, RecoveryReport, SearchEngine, SearchError, SearchHit,
};
pub use error::TksError;
pub use merge::MergeAssignment;
pub use query::{Query, QueryResponse, TermSelector, TimeRange};
pub use ranking::RankingModel;
pub use service::{service, BatchError, IndexWriter, Searcher};
