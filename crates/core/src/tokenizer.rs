//! Keyword extraction for record text.
//!
//! Compliance search must be *complete* — the paper rejects heuristic
//! techniques that "can omit relevant documents" (§3.1 footnote) — so the
//! tokenizer is deliberately conservative: it lowercases, splits on
//! non-alphanumeric characters, and keeps *every* token, including
//! stopwords (a regulator may search for any term; dropping one would hide
//! records).

/// Lowercased alphanumeric tokens of `text`, in order, with duplicates.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            cur.extend(ch.to_lowercase());
        } else if !cur.is_empty() {
            tokens.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        tokens.push(cur);
    }
    tokens
}

/// Distinct tokens of `text` with their in-document frequency, sorted by
/// token (the bag-of-words a document contributes to the index).
pub fn term_counts(text: &str) -> Vec<(String, u32)> {
    let mut counts = std::collections::BTreeMap::new();
    for t in tokenize(text) {
        *counts.entry(t).or_insert(0u32) += 1;
    }
    counts.into_iter().collect()
}

/// Distinct tokens of `text` with the (0-based, strictly increasing) token
/// positions at which each occurs, sorted by token — the input for
/// positional indexing and phrase queries.
pub fn term_positions(text: &str) -> Vec<(String, Vec<u32>)> {
    let mut map: std::collections::BTreeMap<String, Vec<u32>> = std::collections::BTreeMap::new();
    for (i, tok) in tokenize(text).into_iter().enumerate() {
        map.entry(tok).or_default().push(i as u32);
    }
    map.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_and_lowercases() {
        assert_eq!(
            tokenize("Hello, World! HELLO?"),
            vec![
                "hello".to_string(),
                "world".to_string(),
                "hello".to_string()
            ]
        );
    }

    #[test]
    fn keeps_digits_and_mixed_tokens() {
        assert_eq!(tokenize("SEC Rule 17a-4"), vec!["sec", "rule", "17a", "4"]);
    }

    #[test]
    fn empty_and_symbol_only_input() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("!!! --- ###").is_empty());
    }

    #[test]
    fn unicode_handled() {
        let toks = tokenize("Çalışma RÉSUMÉ");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1], "résumé");
    }

    #[test]
    fn term_counts_aggregates() {
        let counts = term_counts("to be or not to be");
        assert_eq!(
            counts,
            vec![
                ("be".to_string(), 2),
                ("not".to_string(), 1),
                ("or".to_string(), 1),
                ("to".to_string(), 2),
            ]
        );
    }

    #[test]
    fn positions_track_token_order() {
        let pos = term_positions("to be or not to be");
        let find = |t: &str| pos.iter().find(|(tok, _)| tok == t).unwrap().1.clone();
        assert_eq!(find("to"), vec![0, 4]);
        assert_eq!(find("be"), vec![1, 5]);
        assert_eq!(find("or"), vec![2]);
        assert_eq!(find("not"), vec![3]);
        // Agreement with term_counts.
        for (tok, ps) in &pos {
            let tf = term_counts("to be or not to be")
                .iter()
                .find(|(t, _)| t == tok)
                .unwrap()
                .1;
            assert_eq!(ps.len() as u32, tf);
        }
    }

    #[test]
    fn stopwords_are_kept() {
        // Completeness: every token is indexable.
        assert!(term_counts("the the the")
            .iter()
            .any(|(t, c)| t == "the" && *c == 3));
    }
}
