//! Equivalence properties for the block-max disjunctive evaluator.
//!
//! The bounded top-k evaluator behind [`Query::Disjunctive`] skips index
//! blocks using cache-resident summaries.  Skips must be *rank-safe*: for
//! any corpus, any block geometry, any `k`, and any visibility watermark,
//! the response must be **bit-identical** — hits, scores, and tie-break
//! order — to the exhaustive reference evaluator
//! (`SearchEngine::disjunctive_ranked_exhaustive`), which scans every
//! posting of every selected list.  Both evaluators accumulate per-term
//! score contributions in the same canonical order, so even the
//! floating-point sums must agree to the last bit.
//!
//! Deterministic companions cover the named edge cases (`k = 0`,
//! single-term queries, all-tie scores) and assert that skipping actually
//! happens — and actually reduces the Figure 8(c) block charge — on a
//! corpus shaped like the paper's workload (one rare selective term
//! alongside a ubiquitous one).

use proptest::prelude::*;
use tks_core::engine::{EngineConfig, SearchEngine, SearchHit};
use tks_core::{MergeAssignment, Query, RankingModel, TermSelector};
use tks_postings::{TermId, Timestamp};

/// Vocabulary for generated corpora: small, so merged lists collide and
/// documents share terms (ties and multi-term accumulators happen often).
const VOCAB: u32 = 10;

/// Build an engine over generated documents.  `ppb` is postings per
/// block; the 64-byte floor means `ppb ≥ 8`, small enough that a few
/// dozen documents span several blocks per list.
fn build_engine(
    ppb: usize,
    num_lists: u32,
    cosine: bool,
    docs: &[Vec<(u32, u32)>],
) -> SearchEngine {
    let mut engine = SearchEngine::new(EngineConfig {
        block_size: ppb * 8,
        assignment: MergeAssignment::uniform(num_lists),
        ranking: if cosine {
            RankingModel::Cosine
        } else {
            RankingModel::default()
        },
        store_documents: false,
        ..Default::default()
    })
    .expect("config is valid");
    for (i, doc) in docs.iter().enumerate() {
        let mut terms: Vec<(TermId, u32)> = doc.iter().map(|&(t, tf)| (TermId(t), tf)).collect();
        terms.sort_by_key(|&(t, _)| t);
        terms.dedup_by_key(|&mut (t, _)| t);
        engine
            .add_document_terms(&terms, Timestamp(i as u64), None)
            .expect("synthetic commit succeeds");
    }
    engine
}

/// Exhaustive-reference hits for `ids` (canonicalised), truncated to `k`.
fn reference(engine: &SearchEngine, ids: &[u32], k: usize, visible: u64) -> Vec<SearchHit> {
    let mut canonical: Vec<TermId> = ids.iter().map(|&t| TermId(t)).collect();
    canonical.sort_unstable();
    canonical.dedup();
    engine
        .disjunctive_ranked_exhaustive(&canonical, k, visible)
        .0
}

/// Bit-level equality: same docs, same score bits, same order.
fn assert_bit_identical(got: &[SearchHit], want: &[SearchHit], ctx: &str) {
    assert_eq!(
        got.len(),
        want.len(),
        "{ctx}: hit counts differ (got {got:?}, want {want:?})"
    );
    for (g, w) in got.iter().zip(want) {
        assert_eq!(
            g.doc, w.doc,
            "{ctx}: docs diverge (got {got:?}, want {want:?})"
        );
        assert_eq!(
            g.score.to_bits(),
            w.score.to_bits(),
            "{ctx}: score bits diverge for {:?}: {} vs {}",
            g.doc,
            g.score,
            w.score
        );
    }
}

proptest! {
    /// For random corpora, geometries, ranking models, queries, `k`, and
    /// watermarks, the block-max evaluator returns bit-identical results
    /// to the exhaustive reference — on a cold summary cache and again on
    /// a warm one (the warm pass is where block skipping actually fires).
    #[test]
    fn blockmax_matches_exhaustive(
        ppb in 8usize..=12,
        num_lists in 1u32..=4,
        cosine in any::<bool>(),
        docs in proptest::collection::vec(
            proptest::collection::vec((0..VOCAB, 1u32..=4), 1..6),
            1..40,
        ),
        queries in proptest::collection::vec(
            (proptest::collection::vec(0..VOCAB, 0..5), 0usize..8, 0u64..48),
            1..6,
        ),
    ) {
        let engine = build_engine(ppb, num_lists, cosine, &docs);
        for (ids, k, watermark) in queries {
            let visible = watermark.min(engine.num_docs());
            let want = reference(&engine, &ids, k, visible);
            let query = Query::Disjunctive {
                // Deliberately unsorted, possibly duplicated: execution
                // must canonicalise exactly like the reference call does.
                terms: TermSelector::Ids(ids.iter().map(|&t| TermId(t)).collect()),
                top_k: k,
            };
            // Cold pass: summaries may be absent, blocks scan and
            // summarise themselves.
            let cold = engine.execute_bounded(&query, watermark).expect("query runs");
            assert_bit_identical(&cold.hits, &want, "cold");
            // Warm pass: summaries are resident, skips can fire — the
            // result must not move by a bit.
            let warm = engine.execute_bounded(&query, watermark).expect("query runs");
            assert_bit_identical(&warm.hits, &want, "warm");
            prop_assert_eq!(cold.visible_docs, visible);
            prop_assert_eq!(warm.visible_docs, visible);
        }
    }

    /// `k = 0` returns no hits and reads no blocks, for any corpus.
    #[test]
    fn top_zero_reads_nothing(
        docs in proptest::collection::vec(
            proptest::collection::vec((0..VOCAB, 1u32..=3), 1..4),
            1..20,
        ),
        ids in proptest::collection::vec(0..VOCAB, 0..4),
    ) {
        let engine = build_engine(8, 2, false, &docs);
        let query = Query::Disjunctive {
            terms: TermSelector::Ids(ids.iter().map(|&t| TermId(t)).collect()),
            top_k: 0,
        };
        let resp = engine.execute(&query).expect("query runs");
        prop_assert!(resp.hits.is_empty());
        prop_assert_eq!(resp.blocks_read, 0, "k = 0 must not scan");
        prop_assert_eq!(resp.io.read_ios, 0);
    }
}

/// A paper-shaped corpus: term 0 appears in every document (a Zipfian
/// head term), term 1 only in document 0 with a high tf (a rare,
/// selective term).  `num_docs` at 8 postings per block puts the common
/// term's list across many blocks.
fn selective_corpus(num_docs: usize) -> Vec<Vec<(u32, u32)>> {
    (0..num_docs)
        .map(|i| {
            if i == 0 {
                vec![(0, 1), (1, 5)]
            } else {
                vec![(0, 1)]
            }
        })
        .collect()
}

#[test]
fn warm_queries_skip_most_blocks_of_the_common_term() {
    let engine = build_engine(8, 2, false, &selective_corpus(200));
    let query = Query::disjunctive(vec![TermId(0), TermId(1)], 1);
    let want = reference(&engine, &[0, 1], 1, engine.num_docs());

    // Cold: every consulted block scans (and summarises itself).
    let cold = engine.execute(&query).expect("query runs");
    assert_bit_identical(&cold.hits, &want, "cold");

    // Warm: the rare term establishes the threshold; of the common
    // term's ~25 blocks only the one holding the contender (doc 0) is
    // scanned, the rest are skipped without I/O.
    let warm = engine.execute(&query).expect("query runs");
    assert_bit_identical(&warm.hits, &want, "warm");
    assert!(
        warm.blocks_read <= 3,
        "expected nearly all blocks skipped, read {} (skipped {})",
        warm.blocks_read,
        warm.blocks_skipped
    );
    assert!(
        warm.blocks_skipped >= 20,
        "expected ≥ 20 skips over a 25-block list, got {}",
        warm.blocks_skipped
    );
    let exhaustive_blocks = engine
        .disjunctive_ranked_exhaustive(&[TermId(0), TermId(1)], 1, engine.num_docs())
        .1;
    assert!(
        warm.blocks_read < exhaustive_blocks / 5,
        "block-max must beat the full-scan charge by a wide margin: {} vs {}",
        warm.blocks_read,
        exhaustive_blocks
    );
}

#[test]
fn single_term_query_matches_and_respects_watermark() {
    let engine = build_engine(8, 2, false, &selective_corpus(100));
    for visible in [0u64, 1, 17, 50, 100, 100_000] {
        let clamped = visible.min(engine.num_docs());
        let want = reference(&engine, &[0], 3, clamped);
        let query = Query::disjunctive(vec![TermId(0)], 3);
        for pass in ["cold", "warm"] {
            let resp = engine.execute_bounded(&query, visible).expect("query runs");
            assert_bit_identical(&resp.hits, &want, pass);
            assert!(resp.hits.iter().all(|h| h.doc.0 < clamped));
        }
    }
    // Warm + a low watermark: blocks wholly beyond the watermark are
    // skipped via their summaries' doc ranges.
    let resp = engine
        .execute_bounded(&Query::disjunctive(vec![TermId(0)], 3), 8)
        .expect("query runs");
    assert!(
        resp.blocks_read <= 2,
        "a watermark of 8 docs needs one 8-posting block, read {}",
        resp.blocks_read
    );
    assert!(
        resp.blocks_skipped >= 10,
        "later blocks must be range-skipped"
    );
}

#[test]
fn all_tie_scores_keep_ascending_doc_order() {
    // Every document is identical, so every score ties exactly; the
    // tie-break (ascending doc id) must survive early termination.
    let docs: Vec<Vec<(u32, u32)>> = (0..64).map(|_| vec![(0, 2)]).collect();
    let engine = build_engine(8, 1, false, &docs);
    for k in [1usize, 3, 7, 64, 100] {
        let want = reference(&engine, &[0], k, engine.num_docs());
        let query = Query::disjunctive(vec![TermId(0)], k);
        for pass in ["cold", "warm"] {
            let resp = engine.execute(&query).expect("query runs");
            assert_bit_identical(&resp.hits, &want, pass);
            let docs_out: Vec<u64> = resp.hits.iter().map(|h| h.doc.0).collect();
            assert_eq!(
                docs_out,
                (0..k.min(64) as u64).collect::<Vec<_>>(),
                "ties must resolve to the first {k} docs"
            );
        }
    }
}
