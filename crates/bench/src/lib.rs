//! # `tks-bench` — experiment harness
//!
//! One binary per figure of the paper (`cargo run --release -p tks-bench
//! --bin fig2`, `fig3a` … `fig3i`, `fig4`, `fig8a`, `fig8b`, `fig8c`,
//! `summary`), plus Criterion micro-benchmarks in `benches/`.
//!
//! ## Scaling
//!
//! The paper's corpus is 1M documents × ~500 distinct terms (≈500M
//! postings, >1M-term vocabulary) with 300k logged queries.  The default
//! harness scale is laptop-sized and preserves the distributional *shape*;
//! every binary accepts:
//!
//! ```text
//! --docs N        documents               (default 50,000)
//! --vocab V       vocabulary size         (default 100,000)
//! --terms T       mean distinct terms/doc (default 100)
//! --queries Q     query-log length        (default 30,000)
//! --qvocab W      queryable head terms    (default 20,000)
//! --seed S        RNG seed                (default 0xC0FFEE)
//! --full          the paper's full scale  (slow; hours)
//! ```
//!
//! Cache-size axes are mapped through the **vocabulary ratio**
//! `paper_vocab / vocab` (merging behaviour depends on cache blocks *per
//! distinct term*): each binary prints both the paper-equivalent cache
//! size and the simulated one.  EXPERIMENTS.md records the shapes measured
//! at the default scale against the paper's.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Experiment harness: panicking on malformed synthetic input is fine here;
// the production no-panic surface is gated by clippy + `cargo xtask audit`.
#![allow(clippy::unwrap_used, clippy::expect_used)]

pub mod merging;

use serde::Serialize;
use std::io::Write as _;

/// Workload scale parameters shared by every figure binary.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Scale {
    /// Number of documents.
    pub docs: u64,
    /// Vocabulary size.
    pub vocab: u32,
    /// Mean distinct terms per document.
    pub terms_per_doc: u32,
    /// Query-log length.
    pub queries: u64,
    /// Queryable head-term count.
    pub query_vocab: u32,
    /// Base RNG seed.
    pub seed: u64,
}

/// The paper's vocabulary size, used for cache-axis mapping.
pub const PAPER_VOCAB: f64 = 1_200_000.0;

impl Default for Scale {
    fn default() -> Self {
        Self {
            docs: 50_000,
            vocab: 100_000,
            terms_per_doc: 100,
            queries: 30_000,
            query_vocab: 20_000,
            seed: 0xC0FFEE,
        }
    }
}

impl Scale {
    /// Parse `--docs/--vocab/--terms/--queries/--qvocab/--seed/--full`
    /// from the process arguments; unknown flags abort with usage help.
    pub fn from_args() -> Self {
        let mut s = Scale::default();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            let flag = args[i].as_str();
            let mut take = |s: &mut u64| {
                i += 1;
                *s = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage_and_exit(flag));
            };
            match flag {
                "--docs" => take(&mut s.docs),
                "--queries" => take(&mut s.queries),
                "--seed" => take(&mut s.seed),
                "--vocab" => {
                    let mut v = s.vocab as u64;
                    take(&mut v);
                    s.vocab = v as u32;
                }
                "--terms" => {
                    let mut v = s.terms_per_doc as u64;
                    take(&mut v);
                    s.terms_per_doc = v as u32;
                }
                "--qvocab" => {
                    let mut v = s.query_vocab as u64;
                    take(&mut v);
                    s.query_vocab = v as u32;
                }
                "--full" => {
                    s = Scale {
                        docs: 1_000_000,
                        vocab: 1_200_000,
                        terms_per_doc: 500,
                        queries: 300_000,
                        query_vocab: 60_000,
                        seed: s.seed,
                    };
                }
                "--help" | "-h" => usage_and_exit(""),
                other => usage_and_exit(other),
            }
            i += 1;
        }
        s
    }

    /// `paper_vocab / vocab`: the factor by which cache sizes are scaled
    /// down to keep cache-blocks-per-term comparable.
    pub fn vocab_ratio(&self) -> f64 {
        PAPER_VOCAB / self.vocab as f64
    }

    /// Translate a paper cache size (bytes) into the simulated one.
    pub fn scaled_cache(&self, paper_cache_bytes: u64) -> u64 {
        ((paper_cache_bytes as f64 / self.vocab_ratio()) as u64).max(1)
    }

    /// Whether the user left the workload at its defaults (binaries with
    /// figure-specific geometry override only in that case).
    pub fn is_default_workload(&self) -> bool {
        let d = Scale {
            seed: self.seed,
            ..Scale::default()
        };
        *self == d
    }

    /// The join-experiment geometry of §4.5: the paper's Figure 8(b)/(c)
    /// setup has ~500 documents per term (df), ~30 terms per merged list,
    /// and therefore ~15,000 postings (≈30 blocks) per merged list —
    /// ratios that hold at any absolute scale as long as
    /// `docs × terms/doc = 500 × vocab` and `M = vocab / 30`.  Applied
    /// only when the user did not override the workload.
    pub fn with_join_geometry(mut self) -> Self {
        if self.is_default_workload() {
            self.docs = 15_000;
            self.terms_per_doc = 200;
            self.vocab = 6_000;
            self.query_vocab = 2_000;
        }
        self
    }

    /// Merged-list count for the join geometry: ~30 terms per list, as in
    /// the paper's 1M-term / 32,768-list setup.
    pub fn merged_lists_for_join(&self) -> u32 {
        (self.vocab / 30).max(8)
    }

    /// Corpus configuration for this scale.
    pub fn corpus(&self) -> tks_corpus::CorpusConfig {
        tks_corpus::CorpusConfig {
            num_docs: self.docs,
            vocab_size: self.vocab,
            mean_distinct_terms: self.terms_per_doc,
            seed: self.seed,
            ..Default::default()
        }
    }

    /// Query-log configuration for this scale.
    pub fn query_log(&self) -> tks_corpus::QueryConfig {
        tks_corpus::QueryConfig {
            num_queries: self.queries,
            query_vocab: self.query_vocab.min(self.vocab),
            seed: self.seed ^ 0x51EE7,
            ..Default::default()
        }
    }
}

fn usage_and_exit(flag: &str) -> ! {
    if !flag.is_empty() {
        eprintln!("unknown or malformed flag: {flag}");
    }
    eprintln!(
        "usage: <fig-binary> [--docs N] [--vocab V] [--terms T] [--queries Q] \
         [--qvocab W] [--seed S] [--full]"
    );
    std::process::exit(2)
}

/// Print a Markdown-style table: header row then aligned data rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        let mut line = String::from("|");
        for (i, c) in cells.iter().enumerate() {
            line.push_str(&format!(" {:>w$} |", c, w = widths[i]));
        }
        line
    };
    println!(
        "{}",
        fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    println!("{}", fmt_row(&sep));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Persist an experiment result as JSON under `results/` (best-effort:
/// failures are reported to stderr, not fatal).
pub fn save_json<T: Serialize>(name: &str, value: &T) {
    let dir = std::path::Path::new("results");
    let path = dir.join(format!("{name}.json"));
    let run = || -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let mut f = std::fs::File::create(&path)?;
        let body = serde_json::to_string_pretty(value).map_err(std::io::Error::other)?;
        f.write_all(body.as_bytes())
    };
    match run() {
        Ok(()) => eprintln!("[saved {}]", path.display()),
        Err(e) => eprintln!("[warn] could not save {}: {e}", path.display()),
    }
}

/// Pretty byte counts for axis labels.
pub fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 30 {
        format!("{:.1}GB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.1}MB", b as f64 / (1u64 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.0}KB", b as f64 / 1024.0)
    } else {
        format!("{b}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_cache_maps_by_vocab_ratio() {
        let s = Scale {
            vocab: 120_000,
            ..Scale::default()
        };
        assert!((s.vocab_ratio() - 10.0).abs() < 1e-9);
        assert_eq!(s.scaled_cache(100 << 20), 10 << 20);
        assert_eq!(s.scaled_cache(1), 1, "never scales to zero");
    }

    #[test]
    fn fmt_bytes_ranges() {
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(4096), "4KB");
        assert_eq!(fmt_bytes(8 << 20), "8.0MB");
        assert_eq!(fmt_bytes(3 << 30), "3.0GB");
    }

    #[test]
    fn corpus_and_query_configs_inherit_scale() {
        let s = Scale::default();
        let c = s.corpus();
        assert_eq!(c.num_docs, s.docs);
        assert_eq!(c.vocab_size, s.vocab);
        let q = s.query_log();
        assert_eq!(q.num_queries, s.queries);
        assert!(q.query_vocab <= s.vocab);
    }
}
