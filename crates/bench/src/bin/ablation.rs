//! Ablations for design choices the paper discusses but does not plot:
//!
//! 1. **Keyword-tag encoding** (paper §3, bullet 2): the per-entry keyword
//!    encoding in merged lists costs ⌈log₂ q⌉ bits fixed, or less with
//!    Huffman coding, "since keyword occurrences within merged posting
//!    lists are unlikely to be uniformly distributed".  We measure actual
//!    bits/posting on the synthetic corpus for several list counts.
//!
//! 2. **GHT join vs zigzag join** (paper §4): "GHTs only support
//!    exact-match lookups and have poor locality due to the use of
//!    hashing.  A GHT-based join would be much slower than a zigzag join
//!    on sorted posting lists, especially for roughly equal sized lists."
//!    We measure block reads for both strategies across list-size ratios.

// Experiment binary: expect() on malformed synthetic input is acceptable
// (the production no-panic surface is gated by clippy + `cargo xtask audit`).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use serde::Serialize;
use tks_bench::{print_table, save_json, Scale};
use tks_core::merge::MergeAssignment;
use tks_corpus::{DocumentGenerator, TermStats};
use tks_ght::{ght_join, GeneralizedHashTree, GhtConfig};
use tks_jump::block::BlockJumpIndex;
use tks_jump::JumpConfig;
use tks_postings::tagcode::HuffmanTagCode;
use tks_postings::TermId;

#[derive(Serialize)]
struct TagRow {
    num_lists: u32,
    mean_terms_per_list: f64,
    fixed_bits: f64,
    huffman_bits: f64,
}

fn tag_encoding_ablation(scale: &Scale) -> Vec<TagRow> {
    let gen = DocumentGenerator::new(scale.corpus());
    let ti = TermStats::collect(&gen, 0..scale.docs.min(10_000)).doc_freq;
    let mut rows = Vec::new();
    let mut table = Vec::new();
    for m in [256u32, 1_024, 4_096] {
        let assignment = MergeAssignment::uniform(m);
        // Per-list tag frequencies: postings contributed by each member
        // term, weighted by ti.
        let mut freqs: Vec<Vec<u64>> = vec![Vec::new(); m as usize];
        for (t, &f) in ti.iter().enumerate() {
            if f > 0 {
                freqs[assignment.list_of(TermId(t as u32)).0 as usize].push(f);
            }
        }
        let (mut fixed_weighted, mut huff_weighted, mut total) = (0.0f64, 0.0f64, 0u64);
        let mut populated = 0usize;
        for f in &freqs {
            if f.is_empty() {
                continue;
            }
            populated += 1;
            let postings: u64 = f.iter().sum();
            let fixed = (f.len() as f64).log2().ceil();
            let code = HuffmanTagCode::from_frequencies(f);
            fixed_weighted += fixed * postings as f64;
            huff_weighted += code.expected_bits(f) * postings as f64;
            total += postings;
        }
        let row = TagRow {
            num_lists: m,
            mean_terms_per_list: ti.iter().filter(|&&f| f > 0).count() as f64 / populated as f64,
            fixed_bits: fixed_weighted / total as f64,
            huffman_bits: huff_weighted / total as f64,
        };
        table.push(vec![
            format!("{m}"),
            format!("{:.1}", row.mean_terms_per_list),
            format!("{:.2}", row.fixed_bits),
            format!("{:.2}", row.huffman_bits),
        ]);
        rows.push(row);
    }
    print_table(
        "Ablation 1: keyword-tag bits per posting in merged lists",
        &[
            "lists M",
            "terms/list",
            "fixed ⌈log₂q⌉ bits",
            "Huffman bits",
        ],
        &table,
    );
    println!(
        "\nZipf skew concentrates each list's postings on few member terms, so Huffman\n\
         coding beats the fixed-width tag — the paper's §3 suggestion, quantified."
    );
    rows
}

#[derive(Serialize)]
struct JoinRow {
    l1: usize,
    l2: usize,
    zigzag_blocks: u64,
    ght_bucket_reads: u64,
    ght_penalty: f64,
}

fn ght_join_ablation() -> Vec<JoinRow> {
    // Sorted lists of controlled sizes over a shared doc-ID space.
    let make =
        |len: usize, stride: u64| -> Vec<u64> { (0..len as u64).map(|i| i * stride).collect() };
    let mut rows = Vec::new();
    let mut table = Vec::new();
    for (l1, s1, l2, s2) in [
        (20_000usize, 3u64, 20_000usize, 2u64), // roughly equal sizes
        (2_000, 30, 20_000, 2),                 // 10× skew
        (200, 300, 20_000, 2),                  // 100× skew
    ] {
        let a = make(l1, s1);
        let b = make(l2, s2);
        // Zigzag over jump indexes.
        let cfg = JumpConfig::new(8192, 32, 1 << 32);
        let mut ia: BlockJumpIndex<u64> = BlockJumpIndex::new(cfg);
        let mut ib: BlockJumpIndex<u64> = BlockJumpIndex::new(cfg);
        for &k in &a {
            ia.insert(k).unwrap();
        }
        for &k in &b {
            ib.insert(k).unwrap();
        }
        let mut blocks = std::collections::HashSet::new();
        let mut zz = Vec::new();
        {
            use tks_jump::Position;
            // Two-pointer zigzag directly over the indexes.
            let mut advance = |idx: &BlockJumpIndex<u64>, side: u8, k: u64| -> Option<Position> {
                idx.find_geq_with(k, |blk| {
                    blocks.insert((side, blk));
                })
                .unwrap()
            };
            let mut pa = advance(&ia, 0, 0);
            let mut pb = advance(&ib, 1, 0);
            while let (Some(qa), Some(qb)) = (pa, pb) {
                let ka = ia.entry_at(qa).unwrap();
                let kb = ib.entry_at(qb).unwrap();
                if ka < kb {
                    pa = advance(&ia, 0, kb);
                } else if kb < ka {
                    pb = advance(&ib, 1, ka);
                } else {
                    zz.push(ka);
                    pa = advance(&ia, 0, ka + 1);
                    pb = advance(&ib, 1, ka + 1);
                }
            }
        }
        // GHT join: probe the longer list's GHT per entry of the shorter.
        let mut ght = GeneralizedHashTree::new(GhtConfig::for_block_size(8192, 16));
        for &k in &b {
            ght.insert(k);
        }
        let (matches, reads) = ght_join(&a, &ght);
        assert_eq!(matches, zz, "join strategies must agree");
        let row = JoinRow {
            l1,
            l2,
            zigzag_blocks: blocks.len() as u64,
            ght_bucket_reads: reads,
            ght_penalty: reads as f64 / blocks.len().max(1) as f64,
        };
        table.push(vec![
            format!("{l1}"),
            format!("{l2}"),
            format!("{}", row.zigzag_blocks),
            format!("{}", row.ght_bucket_reads),
            format!("{:.1}×", row.ght_penalty),
        ]);
        rows.push(row);
    }
    print_table(
        "Ablation 2: zigzag join (distinct blocks) vs GHT join (bucket reads)",
        &["|L1|", "|L2|", "zigzag blocks", "GHT reads", "GHT penalty"],
        &table,
    );
    println!(
        "\nPaper §4: a GHT join probes per entry of the shorter list with poor locality;\n\
         the penalty is worst for roughly equal sized lists, exactly as measured."
    );
    rows
}

fn main() {
    let scale = Scale::from_args();
    let tags = tag_encoding_ablation(&scale);
    let joins = ght_join_ablation();
    save_json("ablation", &(&scale, &tags, &joins));
}
