//! Replicated read scaling: multi-threaded ranked queries against a
//! sharded archive recovered with 0/1/2 chain-verified replicas per
//! shard.  Every replica that recovers with the primary's exact trust
//! state joins the read rotation ([`ShardedSearcher`] round-robins each
//! shard's reads over primary + verified standbys), so read throughput
//! should scale with the replica count until it saturates the hardware.
//!
//! Results land in `results/replicated.json` and `BENCH_replicated.json`.
//! The report carries an explicit gate: ≥ 1.5× read throughput at 2
//! replicas when ≥ 4 hardware threads are available; on smaller machines
//! the gate is waived (`resource_scaling_fallback: true`) because the
//! extra engines have no cores to run on.
//!
//! ```text
//! cargo run --release -p tks-bench --bin replicated
//! ```

// Experiment binary: expect() on malformed synthetic input is acceptable
// (the production no-panic surface is gated by clippy + `cargo xtask audit`).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;
use tks_bench::{print_table, save_json, Scale};
use tks_core::engine::EngineConfig;
use tks_core::merge::MergeAssignment;
use tks_core::query::Query;
use tks_corpus::{DocumentGenerator, QueryGenerator};
use tks_replica::{attach, detach, fresh_images, ApplyMode, ReplicaSet};
use tks_shard::{ReplicatedShardParts, ShardedArchive, ShardedSearcher};

const SHARDS: u32 = 2;
const REPLICA_COUNTS: [usize; 3] = [0, 1, 2];
const QUERY_SAMPLE: u64 = 500;
/// How many times each reader thread replays the query sample (long
/// enough a round to dominate thread start-up noise).
const ROUNDS_PER_THREAD: usize = 2;
/// The read-scaling gate from the replication design: 2 replicas triple
/// the engines serving each shard's reads, so on ≥ 4 cores the archive
/// must deliver at least 1.5× the unreplicated throughput.
const GATE_REPLICAS: usize = 2;
const GATE_SPEEDUP: f64 = 1.5;
const GATE_MIN_CORES: usize = 4;

#[derive(Serialize)]
struct Row {
    replicas_per_shard: usize,
    standbys_per_shard: Vec<usize>,
    reader_threads: usize,
    queries: u64,
    wall_secs: f64,
    queries_per_sec: f64,
    speedup_vs_unreplicated: f64,
}

#[derive(Serialize)]
struct Gate {
    replicas: usize,
    required_speedup: f64,
    achieved_speedup: f64,
    available_parallelism: usize,
    /// True when the machine has too few cores for replica read scaling
    /// to show (< 4 hardware threads): the gate is waived, not failed.
    resource_scaling_fallback: bool,
    passed: bool,
}

#[derive(Serialize)]
struct Report {
    scale: Scale,
    shards: u32,
    rows: Vec<Row>,
    gate: Gate,
}

/// Build a replicated archive (ingest with inline replication, tear
/// down, recover through the failover path) and return its searcher
/// plus the per-shard standby counts actually serving reads.
fn build_searcher(
    gen: &DocumentGenerator,
    scale: &Scale,
    config: &EngineConfig,
    replicas: usize,
) -> (ShardedSearcher, Vec<usize>) {
    let archive = ShardedArchive::create(config.clone(), SHARDS).expect("fresh archive");
    let (mut writer, searcher) = archive.into_service();
    drop(searcher);
    let sets: Vec<Option<Arc<ReplicaSet>>> = (0..SHARDS)
        .map(|sid| {
            if replicas == 0 {
                return None;
            }
            let set = writer
                .with_engine(sid, |engine| {
                    let set = Arc::new(ReplicaSet::new(
                        fresh_images(engine, replicas),
                        ApplyMode::Inline,
                    ));
                    attach(engine, &set);
                    set
                })
                .expect("live shard");
            Some(set)
        })
        .collect();
    let router = *writer.router();
    for d in gen.docs(0..scale.docs) {
        let shard = router.route_key(&d.id.0.to_le_bytes());
        writer
            .commit_terms_to(shard, &d.terms, d.timestamp, None)
            .expect("valid doc");
    }
    for sid in 0..SHARDS {
        let _ = writer.with_engine(sid, detach);
    }
    let engines = match writer.try_into_engines() {
        Ok(engines) => engines,
        Err(_) => panic!("no live searcher handles expected"),
    };
    let mut shard_parts = Vec::new();
    for (engine, set) in engines.into_iter().zip(sets) {
        let engine = engine.expect("live shard");
        let replica_parts: Vec<_> = match set {
            Some(set) => ReplicaSet::reclaim(set)
                .expect("taps detached")
                .into_iter()
                .map(|(parts, fault)| {
                    assert!(fault.is_none(), "replication faulted: {fault:?}");
                    Ok(parts)
                })
                .collect(),
            None => Vec::new(),
        };
        shard_parts.push(ReplicatedShardParts {
            primary: Ok(engine.into_parts()),
            replicas: replica_parts,
        });
    }
    let (archive, recoveries) =
        ShardedArchive::recover_replicated(shard_parts, config.clone()).expect("recover");
    for r in &recoveries {
        assert!(
            r.error.is_none(),
            "shard {} degraded: {:?}",
            r.shard,
            r.error
        );
        assert!(r.promoted_from.is_none(), "healthy primary must be kept");
    }
    let standbys = archive.standby_counts();
    let (_writer, searcher) = archive.into_service();
    (searcher, standbys)
}

fn main() {
    let mut scale = Scale::from_args();
    // The default figure workload is bigger than this experiment needs;
    // shrink it unless the user asked for a size.
    if scale.is_default_workload() {
        scale.docs = 8_000;
        scale.vocab = 20_000;
        scale.terms_per_doc = 60;
        scale.query_vocab = 5_000;
    }
    let gen = DocumentGenerator::new(scale.corpus());
    let qgen = QueryGenerator::new(scale.query_log());
    let queries: Vec<Query> = qgen
        .queries(0..QUERY_SAMPLE.min(scale.queries))
        .map(|q| Query::disjunctive(&q.terms[..], 10))
        .collect();
    let config = EngineConfig {
        assignment: MergeAssignment::uniform(128),
        store_documents: false,
        ..Default::default()
    };
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let threads = cores.clamp(2, 8);

    let mut rows = Vec::new();
    let mut table = Vec::new();
    let mut baseline_qps = 0.0f64;
    let mut gate_speedup = 0.0f64;
    for replicas in REPLICA_COUNTS {
        eprintln!(
            "[replicated] ingesting {} docs at {replicas} replica(s)/shard…",
            scale.docs
        );
        let (searcher, standbys) = build_searcher(&gen, &scale, &config, replicas);
        assert_eq!(
            standbys,
            vec![replicas; SHARDS as usize],
            "every replica must recover into the read rotation"
        );
        let total_queries = (queries.len() * ROUNDS_PER_THREAD * threads) as u64;
        let t0 = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let searcher = searcher.clone();
                let queries = &queries;
                scope.spawn(move || {
                    for _ in 0..ROUNDS_PER_THREAD {
                        for q in queries {
                            let resp = searcher.execute(q.clone()).expect("query");
                            assert!(resp.trusted, "replicated reads must stay trusted");
                        }
                    }
                });
            }
        });
        let elapsed = t0.elapsed().as_secs_f64();
        let qps = total_queries as f64 / elapsed.max(1e-9);
        if replicas == 0 {
            baseline_qps = qps;
        }
        let speedup = qps / baseline_qps.max(1e-9);
        if replicas == GATE_REPLICAS {
            gate_speedup = speedup;
        }
        table.push(vec![
            format!("{replicas}"),
            format!("{standbys:?}"),
            format!("{threads}"),
            format!("{total_queries}"),
            format!("{elapsed:.2}"),
            format!("{qps:.0}"),
            format!("{speedup:.2}x"),
        ]);
        rows.push(Row {
            replicas_per_shard: replicas,
            standbys_per_shard: standbys,
            reader_threads: threads,
            queries: total_queries,
            wall_secs: elapsed,
            queries_per_sec: qps,
            speedup_vs_unreplicated: speedup,
        });
    }

    print_table(
        "Replicated read scaling (round-robin over primary + verified standbys)",
        &[
            "replicas/shard",
            "standbys",
            "threads",
            "queries",
            "wall (s)",
            "queries/s",
            "speedup",
        ],
        &table,
    );
    let fallback = cores < GATE_MIN_CORES;
    let passed = fallback || gate_speedup >= GATE_SPEEDUP;
    println!(
        "\nhardware threads: {cores}; gate: {GATE_SPEEDUP}x at {GATE_REPLICAS} replicas → {:.2}x {}",
        gate_speedup,
        if fallback {
            "(waived: resource-scaling fallback, < 4 cores)"
        } else if passed {
            "(PASSED)"
        } else {
            "(FAILED)"
        }
    );
    let report = Report {
        scale,
        shards: SHARDS,
        rows,
        gate: Gate {
            replicas: GATE_REPLICAS,
            required_speedup: GATE_SPEEDUP,
            achieved_speedup: gate_speedup,
            available_parallelism: cores,
            resource_scaling_fallback: fallback,
            passed,
        },
    };
    save_json("replicated", &report);
    match serde_json::to_string_pretty(&report) {
        Ok(body) => match std::fs::write("BENCH_replicated.json", body) {
            Ok(()) => eprintln!("[saved BENCH_replicated.json]"),
            Err(e) => eprintln!("[warn] could not save BENCH_replicated.json: {e}"),
        },
        Err(e) => eprintln!("[warn] could not serialize results: {e}"),
    }
}
