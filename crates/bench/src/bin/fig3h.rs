//! Figure 3(h) — cumulative distribution of per-query costs with uniform
//! merging at 32 / 64 / 512 MB cache sizes versus no merging.
//!
//! Paper shape: "merging slows down the shortest queries the most (the x
//! axis is log scale), while the long running queries are comparatively
//! unaffected."

// Experiment binary: expect() on malformed synthetic input is acceptable
// (the production no-panic surface is gated by clippy + `cargo xtask audit`).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use serde::Serialize;
use tks_bench::{print_table, save_json, Scale};
use tks_core::cost::{list_lengths, query_cost, unmerged_query_cost};
use tks_core::merge::MergeAssignment;
use tks_corpus::{DocumentGenerator, QueryGenerator, QueryTermStats, TermStats};

#[derive(Serialize)]
struct CdfRow {
    cost_threshold: u64,
    pct_unmerged: f64,
    pct_32mb: f64,
    pct_64mb: f64,
    pct_512mb: f64,
}

fn cdf_at(costs: &[u64], threshold: u64) -> f64 {
    costs.iter().filter(|&&c| c <= threshold).count() as f64 / costs.len().max(1) as f64 * 100.0
}

fn main() {
    let scale = Scale::from_args();
    let gen = DocumentGenerator::new(scale.corpus());
    let qgen = QueryGenerator::new(scale.query_log());
    let ti = TermStats::collect(&gen, 0..scale.docs).doc_freq;
    let _qi = QueryTermStats::collect(&qgen, 0..scale.queries, scale.vocab);

    let ratio = scale.vocab_ratio();
    let mk = |mb: u64| {
        let m = (((mb << 20) / 8192) as f64 / ratio).round().max(2.0) as u32;
        MergeAssignment::uniform(m)
    };
    let configs = [mk(32), mk(64), mk(512)];
    let lens: Vec<Vec<u64>> = configs.iter().map(|a| list_lengths(a, &ti)).collect();

    let mut costs_unmerged = Vec::new();
    let mut costs_merged: Vec<Vec<u64>> = vec![Vec::new(); configs.len()];
    for q in qgen.queries(0..scale.queries) {
        costs_unmerged.push(unmerged_query_cost(&ti, &q.terms).max(1));
        for (i, a) in configs.iter().enumerate() {
            costs_merged[i].push(query_cost(a, &lens[i], &q.terms).max(1));
        }
    }

    // Log-spaced thresholds spanning the observed range.
    let max_cost = *costs_merged[0].iter().max().unwrap_or(&1);
    let mut thresholds = Vec::new();
    let mut t = 10u64.max(costs_unmerged.iter().copied().min().unwrap_or(1));
    while t < max_cost * 10 {
        thresholds.push(t);
        t = t.saturating_mul(4);
    }

    let mut rows = Vec::new();
    let mut out = Vec::new();
    for &t in &thresholds {
        let r = CdfRow {
            cost_threshold: t,
            pct_unmerged: cdf_at(&costs_unmerged, t),
            pct_32mb: cdf_at(&costs_merged[0], t),
            pct_64mb: cdf_at(&costs_merged[1], t),
            pct_512mb: cdf_at(&costs_merged[2], t),
        };
        rows.push(vec![
            format!("{t}"),
            format!("{:.1}", r.pct_unmerged),
            format!("{:.1}", r.pct_32mb),
            format!("{:.1}", r.pct_64mb),
            format!("{:.1}", r.pct_512mb),
        ]);
        out.push(r);
    }
    print_table(
        "Figure 3(h): % of queries with cost ≤ threshold (postings scanned)",
        &["cost ≤", "unmerged %", "32MB %", "64MB %", "512MB %"],
        &rows,
    );
    println!(
        "\nPaper shape: the merged CDFs shift right of the unmerged one mostly at LOW costs\n\
         (cheap queries absorb the merging penalty); the right tails nearly coincide."
    );
    save_json("fig3h", &(&scale, &out));
}
