//! Figure 2 — random I/Os per inserted document vs. storage-cache size,
//! with *unmerged* (one-list-per-term) posting lists and LRU caching of
//! list tail blocks.
//!
//! Paper result: the curve falls with cache size but levels off slowly due
//! to the Zipfian term distribution; "even for very large caches beyond
//! 4 GB, the number of random I/Os remains very high, at about 21 per
//! document".
//!
//! Cache sizes are the paper's 4 MB – 64 GB sweep, mapped through the
//! vocabulary ratio (see `tks-bench` crate docs).

// Experiment binary: expect() on malformed synthetic input is acceptable
// (the production no-panic surface is gated by clippy + `cargo xtask audit`).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use serde::Serialize;
use tks_bench::{fmt_bytes, print_table, save_json, Scale};
use tks_core::merge::MergeAssignment;
use tks_core::sim::insertion_ios;
use tks_corpus::DocumentGenerator;

#[derive(Serialize)]
struct Row {
    paper_cache_mb: u64,
    sim_cache_bytes: u64,
    ios_per_doc: f64,
    read_ios: u64,
    write_ios: u64,
    /// Estimated seconds per inserted document at the paper's 2 ms
    /// random-I/O latency (§2.3's "1 second to index a document" scale).
    est_seconds_per_doc: f64,
}

fn main() {
    let scale = Scale::from_args();
    let gen = DocumentGenerator::new(scale.corpus());
    let assignment = MergeAssignment::unmerged(scale.vocab);
    let block_size = 8192u32;

    // The paper sweeps 4 MB … 64 GB (powers of 4 on its log axis).
    let paper_mb: Vec<u64> = vec![4, 16, 64, 256, 1024, 4096, 16384, 65536];
    let mut rows = Vec::new();
    let mut out = Vec::new();
    for &mb in &paper_mb {
        let cache = scale.scaled_cache(mb << 20).max(block_size as u64);
        let r = insertion_ios(&gen, &assignment, scale.docs, cache, block_size);
        let secs = r.ios_per_doc() * tks_worm::stats::PAPER_RANDOM_IO_SECONDS;
        rows.push(vec![
            format!("{mb}"),
            fmt_bytes(cache),
            format!("{:.1}", r.ios_per_doc()),
            format!("{}", r.stats.read_ios),
            format!("{}", r.stats.write_ios),
            format!("{:.0} ms", secs * 1e3),
        ]);
        out.push(Row {
            paper_cache_mb: mb,
            sim_cache_bytes: cache,
            ios_per_doc: r.ios_per_doc(),
            read_ios: r.stats.read_ios,
            write_ios: r.stats.write_ios,
            est_seconds_per_doc: secs,
        });
        eprintln!(
            "[fig2] paper {:>6} MB -> {:>8}: {:.1} I/Os per doc",
            mb,
            fmt_bytes(cache),
            r.ios_per_doc()
        );
    }
    print_table(
        "Figure 2: random I/Os per inserted document (unmerged posting lists)",
        &[
            "paper cache (MB)",
            "sim cache",
            "I/Os per doc",
            "read I/Os",
            "write I/Os",
            "est. time/doc @2ms",
        ],
        &rows,
    );
    println!(
        "\nPaper shape: steep drop then slow level-off; ~21 I/Os/doc even at multi-GB caches\n\
         because the Zipf tail of rare terms defeats caching."
    );
    save_json("fig2", &(&scale, &out));
}
