//! Figure 3(c) — cumulative workload cost: terms ranked by query
//! frequency (QF) or by term frequency (TF); the cumulative sum of their
//! `ti·qi` contributions to the Eq. 1 workload cost.
//!
//! Paper observations: "a very small fraction of the terms account for
//! almost the entire workload cost", and the TF-ranked curve "peaks
//! slowly, compared to the query-popularity curve, due to terms that occur
//! in many documents but few queries".

// Experiment binary: expect() on malformed synthetic input is acceptable
// (the production no-panic surface is gated by clippy + `cargo xtask audit`).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use serde::Serialize;
use tks_bench::{print_table, save_json, Scale};
use tks_core::cost::cumulative_workload_curve;
use tks_corpus::{DocumentGenerator, QueryGenerator, QueryTermStats, TermStats};

#[derive(Serialize)]
struct Point {
    rank: usize,
    qf_cum_fraction: f64,
    tf_cum_fraction: f64,
}

fn main() {
    let scale = Scale::from_args();
    let gen = DocumentGenerator::new(scale.corpus());
    let qgen = QueryGenerator::new(scale.query_log());
    let ti = TermStats::collect(&gen, 0..scale.docs).doc_freq;
    let qi = QueryTermStats::collect(&qgen, 0..scale.queries, scale.vocab).query_freq;

    let limit = (scale.vocab as usize).min(50_000);
    let by_qf = cumulative_workload_curve(&ti, &qi, true, limit);
    let by_tf = cumulative_workload_curve(&ti, &qi, false, limit);
    let total = *by_qf.last().unwrap_or(&1) as f64;

    let sample_ranks = [100usize, 500, 1_000, 2_500, 5_000, 10_000, 25_000];
    let mut rows = Vec::new();
    let mut out = Vec::new();
    for &r in &sample_ranks {
        if r == 0 || r > by_qf.len() {
            continue;
        }
        let qf = by_qf[r - 1] as f64 / total;
        let tf = by_tf[r - 1] as f64 / total;
        rows.push(vec![
            format!("{r}"),
            format!("{:.1}%", qf * 100.0),
            format!("{:.1}%", tf * 100.0),
        ]);
        out.push(Point {
            rank: r,
            qf_cum_fraction: qf,
            tf_cum_fraction: tf,
        });
    }
    print_table(
        "Figure 3(c): cumulative workload cost captured by the top-k ranked terms",
        &["top-k terms", "ranked by QF", "ranked by TF"],
        &rows,
    );
    println!(
        "\nPaper shape: both curves saturate with a small fraction of terms; the QF curve\n\
         rises faster (TF rank order is diluted by doc-popular / query-rare terms)."
    );
    save_json("fig3c", &(&scale, &out));
}
