//! Paper-scale query campaign: block-max top-k vs exhaustive ranking.
//!
//! The paper's workload is 1M documents and 300,000 logged queries
//! (§6); this binary replays a scaled version of that campaign through
//! the *engine* (not the cost model) twice — once through the bounded
//! block-max evaluator behind `Query::Disjunctive`, once through the
//! exhaustive reference (`disjunctive_ranked_exhaustive`) — and records
//! ingest throughput, query latency percentiles, and the Figure 8(c)
//! block charge of each side.  Every 97th query is additionally checked
//! bit-identical between the two evaluators, so the speedup number can
//! never come from a wrong answer.
//!
//! Two tiers:
//!
//! * **reduced** (default; CI): 12k documents over a 36k-term
//!   vocabulary in the paper's popular-terms-unmerged layout — the 500
//!   document-popular head terms keep private lists spanning hundreds
//!   of blocks, the tail merges into short lists — queried with a
//!   multi-keyword-weighted mix over the df ≥ 10 head of the
//!   vocabulary (a term matching fewer than `top_k` documents cannot
//!   establish a pruning threshold, and block-max cannot beat the
//!   exhaustive scan on single-term queries, where both read one list).
//! * **full** (`TKS_AT_SCALE=full` or `--full`; hours): the paper's
//!   1M-document, 300k-query campaign.
//!
//! Results go to `results/at_scale.json`; the committed baseline lives
//! in `BENCH_at_scale.json` and gates CI regressions (>20% on query p99
//! or on blocks scanned).

// Experiment binary: expect() on malformed synthetic input is acceptable
// (the production no-panic surface is gated by clippy + `cargo xtask audit`).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::time::Instant;

use serde::Serialize;
use tks_bench::{print_table, save_json, Scale};
use tks_core::engine::EngineConfig;
use tks_core::sim::build_engine;
use tks_core::{MergeAssignment, Query};
use tks_corpus::{DocumentGenerator, QueryGenerator};
use tks_postings::TermId;

/// Hits returned per query — the paper's result pages show ~10.
const TOP_K: usize = 10;

/// Minimum acceptable multi-keyword speedup on the reduced matrix.
const SPEEDUP_TARGET: f64 = 5.0;

#[derive(Serialize)]
struct CampaignStats {
    elapsed_secs: f64,
    qps: f64,
    p50_us: f64,
    p99_us: f64,
    blocks_scanned: u64,
    blocks_skipped: u64,
}

#[derive(Serialize)]
struct AtScaleReport {
    mode: &'static str,
    docs: u64,
    /// Document-popular head terms with private lists (paper Fig 3(d)).
    unmerged_head: u32,
    /// Merged lists holding the vocabulary tail.
    tail_lists: u32,
    block_size: usize,
    top_k: usize,
    queries: u64,
    mean_query_terms: f64,
    ingest_secs: f64,
    ingest_docs_per_sec: f64,
    blockmax: CampaignStats,
    exhaustive: CampaignStats,
    /// Exhaustive wall-clock ÷ block-max wall-clock over the campaign.
    speedup: f64,
    /// Block-max blocks scanned ÷ exhaustive blocks read (lower is
    /// better; this is the Figure 8(c) I/O ratio).
    blocks_scanned_ratio: f64,
    /// Queries whose hit lists were verified bit-identical between the
    /// two evaluators during this run.
    spot_checks_passed: u64,
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[idx]
}

fn campaign_stats(
    elapsed_secs: f64,
    mut latencies_us: Vec<f64>,
    blocks_scanned: u64,
    blocks_skipped: u64,
) -> CampaignStats {
    latencies_us.sort_by(f64::total_cmp);
    CampaignStats {
        elapsed_secs,
        qps: latencies_us.len() as f64 / elapsed_secs.max(1e-9),
        p50_us: percentile(&latencies_us, 0.50),
        p99_us: percentile(&latencies_us, 0.99),
        blocks_scanned,
        blocks_skipped,
    }
}

fn main() {
    let full = std::env::var("TKS_AT_SCALE").is_ok_and(|v| v == "full")
        || std::env::args().any(|a| a == "--full");
    let mut scale = Scale::from_args();
    // Campaign geometry: the paper's popular-terms-unmerged layout
    // (Figures 3(d)–3(e)) — the document-popular head terms get private
    // lists, the tail is hashed into short merged lists.  This is the
    // shape that makes early termination matter: a query's selective
    // term scans a *short* tail list and establishes a high threshold,
    // after which the common terms' long private lists are mostly
    // skipped, while the exhaustive evaluator must read them end to
    // end.  Blocks scale with the corpus so each head list spans many
    // more blocks than `top_k` contenders can occupy.
    let (mode, unmerged_head, tail_lists, block_size) = if scale.is_default_workload() {
        if full {
            scale = Scale {
                docs: 1_000_000,
                vocab: 1_200_000,
                terms_per_doc: 500,
                queries: 300_000,
                query_vocab: 60_000,
                seed: scale.seed,
            };
            ("full", 60_000u32, 8_192u32, 8192usize)
        } else {
            scale = Scale {
                docs: 12_000,
                vocab: 36_000,
                terms_per_doc: 60,
                queries: 2_000,
                query_vocab: 6_500,
                seed: scale.seed,
            };
            ("reduced", 500u32, 768u32, 256usize)
        }
    } else {
        (
            "custom",
            scale.vocab / 18,
            scale.merged_lists_for_join(),
            4096usize,
        )
    };
    let num_lists = unmerged_head + tail_lists;
    // The corpus generator ranks terms by document frequency: term 0 is
    // the most document-popular, so the head is simply 0..unmerged_head.
    let ranked: Vec<TermId> = (0..unmerged_head).map(TermId).collect();
    let assignment =
        MergeAssignment::popular_unmerged(&ranked, unmerged_head as usize, num_lists, scale.vocab);

    // ---- 1. Ingest (timed): documents/second through the engine. ------
    eprintln!(
        "[at_scale] {mode}: ingesting {} docs × ~{} terms into {num_lists} lists \
         ({unmerged_head} private + {tail_lists} merged)…",
        scale.docs, scale.terms_per_doc
    );
    let gen = DocumentGenerator::new(scale.corpus());
    let t0 = Instant::now();
    let engine = build_engine(
        &gen,
        scale.docs,
        EngineConfig {
            assignment,
            block_size,
            ..Default::default()
        },
    )
    .expect("well-formed synthetic corpus");
    let ingest_secs = t0.elapsed().as_secs_f64();
    let visible = engine.num_docs();

    // ---- 2. Query log: multi-keyword-weighted mix. --------------------
    // Single-term queries read exactly one list under either evaluator,
    // so early termination buys nothing there; the campaign weights the
    // multi-keyword lengths the way the paper's *conjunctive* experiments
    // do (Figure 8(c) is plotted per keyword count ≥ 2) while keeping a
    // realistic single-term share.
    let mut qcfg = scale.query_log();
    qcfg.len_weights = vec![0.01, 0.07, 0.12, 0.17, 0.21, 0.22, 0.20];
    let queries: Vec<Vec<TermId>> = QueryGenerator::new(qcfg)
        .queries(0..scale.queries)
        .map(|q| q.terms)
        .collect();
    let mean_terms =
        queries.iter().map(Vec::len).sum::<usize>() as f64 / queries.len().max(1) as f64;

    // Warm pass (untimed): populates the block-summary and decoded-block
    // caches, as a long-running archive's steady state would be.
    eprintln!("[at_scale] warming caches over {} queries…", queries.len());
    for terms in &queries {
        engine
            .execute(&Query::disjunctive(terms.clone(), TOP_K))
            .expect("clean index");
    }

    // ---- 3. Block-max campaign (timed). -------------------------------
    eprintln!("[at_scale] block-max campaign…");
    let mut bm_lat = Vec::with_capacity(queries.len());
    let (mut bm_scanned, mut bm_skipped) = (0u64, 0u64);
    let mut bm_hits: Vec<Vec<(u64, u64)>> = Vec::with_capacity(queries.len() / 97 + 1);
    let t1 = Instant::now();
    for (i, terms) in queries.iter().enumerate() {
        let q0 = Instant::now();
        let resp = engine
            .execute(&Query::disjunctive(terms.clone(), TOP_K))
            .expect("clean index");
        bm_lat.push(q0.elapsed().as_secs_f64() * 1e6);
        bm_scanned += resp.blocks_read;
        bm_skipped += resp.blocks_skipped;
        if i % 97 == 0 {
            bm_hits.push(
                resp.hits
                    .iter()
                    .map(|h| (h.doc.0, h.score.to_bits()))
                    .collect(),
            );
        }
    }
    let bm_secs = t1.elapsed().as_secs_f64();

    // ---- 4. Exhaustive campaign (timed), same queries. ----------------
    eprintln!("[at_scale] exhaustive campaign…");
    let mut ex_lat = Vec::with_capacity(queries.len());
    let mut ex_blocks = 0u64;
    let mut spot_checks = 0u64;
    let mut spot_iter = bm_hits.iter();
    let t2 = Instant::now();
    for (i, terms) in queries.iter().enumerate() {
        let mut canonical = terms.clone();
        canonical.sort_unstable();
        canonical.dedup();
        let q0 = Instant::now();
        let (hits, blocks) = engine.disjunctive_ranked_exhaustive(&canonical, TOP_K, visible);
        ex_lat.push(q0.elapsed().as_secs_f64() * 1e6);
        ex_blocks += blocks;
        if i % 97 == 0 {
            let want: Vec<(u64, u64)> = hits.iter().map(|h| (h.doc.0, h.score.to_bits())).collect();
            let got = spot_iter.next().expect("one recorded hit list per check");
            assert_eq!(
                got, &want,
                "query {i}: block-max and exhaustive results diverged"
            );
            spot_checks += 1;
        }
    }
    let ex_secs = t2.elapsed().as_secs_f64();

    if std::env::var("TKS_AT_SCALE_DEBUG").is_ok() {
        // Per-class cost split by the rarest query term's df: where do
        // the two evaluators spend their blocks?
        let mut classes = [(0u64, 0u64, 0u64); 4]; // (queries, bm, ex)
        for terms in &queries {
            let min_df = terms.iter().map(|&t| engine.doc_freq(t)).min().unwrap_or(0);
            let c = match min_df {
                0..=9 => 0,
                10..=99 => 1,
                100..=999 => 2,
                _ => 3,
            };
            let mut canonical = terms.clone();
            canonical.sort_unstable();
            canonical.dedup();
            let resp = engine
                .execute(&Query::disjunctive(terms.clone(), TOP_K))
                .expect("clean index");
            let (_, ex) = engine.disjunctive_ranked_exhaustive(&canonical, TOP_K, visible);
            classes[c].0 += 1;
            classes[c].1 += resp.blocks_read;
            classes[c].2 += ex;
        }
        for (name, (n, bm, ex)) in ["df<10", "df<100", "df<1000", "df>=1000"]
            .iter()
            .zip(classes)
        {
            eprintln!(
                "[debug] min-{name}: {n} queries, bm {bm} vs ex {ex} blocks ({:.1}x)",
                ex as f64 / bm.max(1) as f64
            );
        }
    }
    let blockmax = campaign_stats(bm_secs, bm_lat, bm_scanned, bm_skipped);
    let exhaustive = campaign_stats(ex_secs, ex_lat, ex_blocks, 0);
    let speedup = ex_secs / bm_secs.max(1e-9);
    let report = AtScaleReport {
        mode,
        docs: scale.docs,
        unmerged_head,
        tail_lists,
        block_size,
        top_k: TOP_K,
        queries: queries.len() as u64,
        mean_query_terms: mean_terms,
        ingest_secs,
        ingest_docs_per_sec: scale.docs as f64 / ingest_secs.max(1e-9),
        blocks_scanned_ratio: bm_scanned as f64 / ex_blocks.max(1) as f64,
        speedup,
        spot_checks_passed: spot_checks,
        blockmax,
        exhaustive,
    };

    let rows = vec![
        vec![
            "ingest".into(),
            format!("{:.0} docs/s", report.ingest_docs_per_sec),
            format!("{:.1}s for {} docs", ingest_secs, scale.docs),
        ],
        vec![
            "block-max p50 / p99".into(),
            format!(
                "{:.0}µs / {:.0}µs",
                report.blockmax.p50_us, report.blockmax.p99_us
            ),
            format!("{:.0} q/s", report.blockmax.qps),
        ],
        vec![
            "exhaustive p50 / p99".into(),
            format!(
                "{:.0}µs / {:.0}µs",
                report.exhaustive.p50_us, report.exhaustive.p99_us
            ),
            format!("{:.0} q/s", report.exhaustive.qps),
        ],
        vec![
            "campaign speedup".into(),
            format!("{speedup:.1}×"),
            format!("target ≥ {SPEEDUP_TARGET:.0}×"),
        ],
        vec![
            "blocks scanned vs exhaustive".into(),
            format!("{:.1}%", report.blocks_scanned_ratio * 100.0),
            format!("{bm_scanned} vs {ex_blocks}"),
        ],
        vec![
            "blocks skipped (block-max)".into(),
            format!("{bm_skipped}"),
            format!("{spot_checks} spot checks bit-identical"),
        ],
    ];
    print_table(
        &format!("at_scale campaign ({mode} tier, k = {TOP_K})"),
        &["quantity", "measured", "detail"],
        &rows,
    );
    if mode == "reduced" && speedup < SPEEDUP_TARGET {
        eprintln!(
            "[at_scale] WARNING: reduced-matrix speedup {speedup:.2}× is below the \
             {SPEEDUP_TARGET:.0}× acceptance target"
        );
    }
    save_json("at_scale", &report);
    match serde_json::to_string_pretty(&report) {
        Ok(body) => {
            if let Err(e) = std::fs::write("BENCH_at_scale.json", body) {
                eprintln!("[warn] could not write BENCH_at_scale.json: {e}");
            } else {
                eprintln!("[saved BENCH_at_scale.json]");
            }
        }
        Err(e) => eprintln!("[warn] could not serialise report: {e}"),
    }
}
