//! Figure 8(a) — space overhead of the jump index: the ratio of the
//! per-block pointer region `4·(B−1)·⌈log_B N⌉` to the posting area
//! `8·p`, for branching factors B ∈ {2…128} and block sizes L ∈ {4, 8,
//! 16, 32} KB, with N = 2³².
//!
//! Paper headline: "For B = 32 and L = 8 KB, a jump index adds 11% space
//! overhead."  This figure is closed-form — no simulation — so it
//! reproduces exactly at any scale.

// Experiment binary: expect() on malformed synthetic input is acceptable
// (the production no-panic surface is gated by clippy + `cargo xtask audit`).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use serde::Serialize;
use tks_bench::{print_table, save_json};
use tks_jump::space_overhead;

#[derive(Serialize)]
struct Point {
    branching: u32,
    block_kb: usize,
    overhead_pct: f64,
}

fn main() {
    let n = 1u64 << 32;
    let bs = [2u32, 4, 8, 16, 32, 64, 128];
    let ls = [4096usize, 8192, 16384, 32768];
    let mut rows = Vec::new();
    let mut out = Vec::new();
    for &b in &bs {
        let mut row = vec![format!("{b}")];
        for &l in &ls {
            let oh = space_overhead(l, b, n) * 100.0;
            row.push(format!("{oh:.1}%"));
            out.push(Point {
                branching: b,
                block_kb: l / 1024,
                overhead_pct: oh,
            });
        }
        rows.push(row);
    }
    print_table(
        "Figure 8(a): jump-index space overhead (%), N = 2^32",
        &["B", "L=4K", "L=8K", "L=16K", "L=32K"],
        &rows,
    );
    let headline = space_overhead(8192, 32, n) * 100.0;
    println!("\nheadline (B=32, L=8K): {headline:.1}% — paper: 11%");
    save_json("fig8a", &out);
}
