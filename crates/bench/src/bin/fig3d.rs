//! Figure 3(d) — workload-cost ratio vs. cache size with the most
//! query-frequent terms (0 / 1,000 / 10,000) kept unmerged.

fn main() {
    tks_bench::merging::run_merge_ratio_figure(
        "fig3d",
        "Figure 3(d): popular query terms not merged — Q ratio vs cache size",
        tks_bench::merging::RankBy::QueryFreq,
        false,
    );
}
