//! Figure 4 — experimental validation: *measured* workload run-time ratio
//! (uniform merging / no merging) on a real engine, for different cache
//! sizes, using a 1% random sample of the query log.
//!
//! The paper implemented uniform merging in IBM's Trevi search engine and
//! found the measured ratios "quantitatively similar" to the simulated
//! ones (Figure 3(e), "0 term" curve).  Here the functional
//! [`SearchEngine`](tks_core::engine::SearchEngine) plays Trevi's role on the simulated WORM storage: we
//! ingest the corpus into a merged and an unmerged engine, run the query
//! sample against both, and report both wall-clock and postings-scanned
//! ratios.

// Experiment binary: expect() on malformed synthetic input is acceptable
// (the production no-panic surface is gated by clippy + `cargo xtask audit`).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use serde::Serialize;
use std::time::Instant;
use tks_bench::{print_table, save_json, Scale};
use tks_core::cost::{list_lengths, query_cost, unmerged_query_cost};
use tks_core::engine::EngineConfig;
use tks_core::merge::MergeAssignment;
use tks_core::query::Query;
use tks_core::sim::build_engine;
use tks_corpus::{DocumentGenerator, QueryGenerator, TermStats};

#[derive(Serialize)]
struct Row {
    paper_cache_mb: u64,
    num_lists: u32,
    wall_time_ratio: f64,
    postings_ratio: f64,
}

fn main() {
    let scale = Scale::from_args();
    let gen = DocumentGenerator::new(scale.corpus());
    let qgen = QueryGenerator::new(scale.query_log());
    let ti = TermStats::collect(&gen, 0..scale.docs).doc_freq;

    // "Running all 300,000 queries on the server would have taken very
    // long, so we instead used a 1% random sample from the query log."
    let sample: Vec<_> = qgen.queries(0..scale.queries).step_by(100).collect();
    eprintln!("[fig4] query sample: {} queries", sample.len());

    // Unmerged engine: the denominator.
    eprintln!("[fig4] ingesting unmerged engine ({} docs)…", scale.docs);
    let unmerged = build_engine(
        &gen,
        scale.docs,
        EngineConfig {
            assignment: MergeAssignment::unmerged(scale.vocab),
            cache_bytes: 0,
            ..Default::default()
        },
    )
    .expect("well-formed synthetic corpus");
    let t0 = Instant::now();
    let mut unmerged_hits = 0usize;
    for q in &sample {
        unmerged_hits += unmerged
            .execute(&Query::disjunctive(&q.terms[..], 10))
            .map(|r| r.hits.len())
            .unwrap_or(0);
    }
    let unmerged_time = t0.elapsed().as_secs_f64();

    let ratio = scale.vocab_ratio();
    let mut rows = Vec::new();
    let mut out = Vec::new();
    for &mb in &[4u64, 8, 16, 32, 64, 128] {
        let m = (((mb << 20) / 8192) as f64 / ratio).round().max(2.0) as u32;
        eprintln!("[fig4] ingesting merged engine M={m} (paper {mb} MB)…");
        let merged = build_engine(
            &gen,
            scale.docs,
            EngineConfig {
                assignment: MergeAssignment::uniform(m),
                cache_bytes: 0,
                ..Default::default()
            },
        )
        .expect("well-formed synthetic corpus");
        let t0 = Instant::now();
        let mut merged_hits = 0usize;
        for q in &sample {
            merged_hits += merged
                .execute(&Query::disjunctive(&q.terms[..], 10))
                .map(|r| r.hits.len())
                .unwrap_or(0);
        }
        let merged_time = t0.elapsed().as_secs_f64();
        // Ranked retrieval must agree on hit counts regardless of merging.
        assert!(merged_hits >= unmerged_hits, "merged engine lost results");

        // Analytic postings-scanned ratio over the same sample.
        let assignment = MergeAssignment::uniform(m);
        let lens = list_lengths(&assignment, &ti);
        let (mut mc, mut uc) = (0u64, 0u64);
        for q in &sample {
            mc += query_cost(&assignment, &lens, &q.terms);
            uc += unmerged_query_cost(&ti, &q.terms);
        }
        let r = Row {
            paper_cache_mb: mb,
            num_lists: m,
            wall_time_ratio: merged_time / unmerged_time.max(1e-9),
            postings_ratio: mc as f64 / uc.max(1) as f64,
        };
        rows.push(vec![
            format!("{mb}"),
            format!("{m}"),
            format!("{:.2}", r.wall_time_ratio),
            format!("{:.2}", r.postings_ratio),
        ]);
        out.push(r);
    }
    print_table(
        "Figure 4: measured workload run-time ratio (uniform merging / unmerged)",
        &[
            "paper cache (MB)",
            "lists M",
            "wall-time ratio",
            "postings ratio",
        ],
        &rows,
    );
    println!(
        "\nPaper shape: quantitatively similar to the simulated Figure 3(e) '0 term' curve —\n\
         large ratios at 4–8 MB falling to ≈1 by 64–128 MB."
    );
    save_json("fig4", &(&scale, &out));
}
