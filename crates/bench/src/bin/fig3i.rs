//! Figure 3(i) — per-query slowdown (merged / unmerged cost) against the
//! query-cost percentile, for a 512 MB cache with uniform merging.
//!
//! Paper: "the longest-running half of the queries in the workload have no
//! visible slowdown on average, and the next longest-running 30% of the
//! queries are 25% slower on average"; the shortest 20% slow down ~4×.

// Experiment binary: expect() on malformed synthetic input is acceptable
// (the production no-panic surface is gated by clippy + `cargo xtask audit`).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use serde::Serialize;
use tks_bench::{print_table, save_json, Scale};
use tks_core::cost::{list_lengths, query_cost, unmerged_query_cost};
use tks_core::merge::MergeAssignment;
use tks_corpus::{DocumentGenerator, QueryGenerator, TermStats};

#[derive(Serialize)]
struct Bucket {
    percentile_lo: u32,
    percentile_hi: u32,
    mean_slowdown: f64,
}

fn main() {
    let scale = Scale::from_args();
    let gen = DocumentGenerator::new(scale.corpus());
    let qgen = QueryGenerator::new(scale.query_log());
    let ti = TermStats::collect(&gen, 0..scale.docs).doc_freq;

    let m = (((512u64 << 20) / 8192) as f64 / scale.vocab_ratio())
        .round()
        .max(2.0) as u32;
    let assignment = MergeAssignment::uniform(m);
    let lens = list_lengths(&assignment, &ti);

    // (unmerged cost, slowdown) per query; sort ascending by unmerged cost
    // so index/len is the query-cost percentile.
    let mut pairs: Vec<(u64, f64)> = qgen
        .queries(0..scale.queries)
        .map(|q| {
            let u = unmerged_query_cost(&ti, &q.terms).max(1);
            let mcost = query_cost(&assignment, &lens, &q.terms).max(1);
            (u, mcost as f64 / u as f64)
        })
        .collect();
    pairs.sort_by_key(|&(u, _)| u);

    let mut rows = Vec::new();
    let mut out = Vec::new();
    let n = pairs.len();
    for decile in 0..10u32 {
        let lo = n * decile as usize / 10;
        let hi = n * (decile as usize + 1) / 10;
        let mean = pairs[lo..hi].iter().map(|&(_, s)| s).sum::<f64>() / (hi - lo).max(1) as f64;
        rows.push(vec![
            format!("{}–{}%", decile * 10, (decile + 1) * 10),
            format!("{mean:.2}×"),
        ]);
        out.push(Bucket {
            percentile_lo: decile * 10,
            percentile_hi: (decile + 1) * 10,
            mean_slowdown: mean,
        });
    }
    print_table(
        "Figure 3(i): mean query slowdown by query-cost percentile (512 MB uniform merging)",
        &["cost percentile (short → long)", "mean slowdown"],
        &rows,
    );
    let long_half = out[5..].iter().map(|b| b.mean_slowdown).sum::<f64>() / 5.0;
    let short_fifth = out[..2].iter().map(|b| b.mean_slowdown).sum::<f64>() / 2.0;
    println!(
        "\nlongest-running half mean slowdown: {long_half:.2}× (paper: ~1.0×)\n\
         shortest 20% mean slowdown: {short_fifth:.2}× (paper: ~4×)"
    );
    save_json("fig3i", &(&scale, &out));
}
