//! Figure 3(f) — Figure 3(d) with the term ranking *learned* from the
//! first 10% of the query log: "the resulting workload query cost ratio is
//! almost unchanged", showing query statistics are stable enough to learn.

// Experiment binary: expect() on malformed synthetic input is acceptable
// (the production no-panic surface is gated by clippy + `cargo xtask audit`).
#![allow(clippy::unwrap_used, clippy::expect_used)]

fn main() {
    tks_bench::merging::run_merge_ratio_figure(
        "fig3f",
        "Figure 3(f): popular query terms not merged, learned from a 10% prefix",
        tks_bench::merging::RankBy::QueryFreq,
        true,
    );
}
