//! Sharded-archive throughput: ingest and scatter-gather query rates at
//! 1/2/4/8 hash-partitioned WORM shards over the **same corpus**, with a
//! live writer committing during the query phase — the deployment shape
//! of a compliance archive scaled past one device.
//!
//! Two effects drive the curve, and the report separates them:
//!
//! * **per-shard resource scaling** — every shard is a complete engine
//!   with its own storage cache and decoded-block cache, so aggregate
//!   cache capacity grows with the shard count.  The workload is sized
//!   so the queried index does not fit one shard's caches but does fit
//!   four's; the decoded-block hit rate column shows the transition.
//!   This is why the speedup gate holds even on a single-core host;
//! * **scatter-gather parallelism** — on multi-core hosts per-shard
//!   slices of each query execute concurrently (workers are bounded by
//!   `available_parallelism`, reported alongside).
//!
//! The binary asserts the acceptance gate, hardware-aware: with ≥ 4
//! hardware threads, query throughput at 4 shards must be ≥ 2× the
//! 1-shard baseline.  On smaller hosts per-query parallelism is
//! impossible *by construction* (cf. the concurrent bench, whose curve
//! is likewise flat on one core), so the gate instead asserts the
//! resource-scaling effect directly: a speedup floor plus the decoded
//! cache-residency transition (thrashing at 1 shard, resident at 4).
//!
//! Results land in `results/sharded.json` and `BENCH_sharded.json`.
//!
//! ```text
//! cargo run --release -p tks-bench --bin sharded
//! ```

// Experiment binary: expect() on malformed synthetic input is acceptable
// (the production no-panic surface is gated by clippy + `cargo xtask audit`).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use serde::Serialize;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;
use tks_bench::{print_table, save_json, Scale};
use tks_core::engine::EngineConfig;
use tks_core::merge::MergeAssignment;
use tks_core::query::Query;
use tks_corpus::{DocumentGenerator, QueryGenerator};
use tks_postings::Timestamp;
use tks_shard::ShardedArchive;

const SHARD_COUNTS: [u32; 4] = [1, 2, 4, 8];
const QUERY_SAMPLE: u64 = 1_500;
/// Commit budget for the live writer in each measured round (capped so
/// every shard count queries the same document range).
const WRITER_DOCS: u64 = 300;

/// Per-shard engine configuration, identical at every shard count: a
/// shard is a fixed unit of provisioning (device + caches), so scaling
/// out multiplies aggregate cache capacity — exactly what production
/// sharding buys.  16 merged lists keep per-list scans long enough that
/// the decoded-block working set at 1 shard exceeds one engine's caches.
fn shard_config() -> EngineConfig {
    EngineConfig {
        block_size: 1024,
        cache_bytes: 256 << 10,
        assignment: MergeAssignment::uniform(16),
        store_documents: false,
        ..Default::default()
    }
}

#[derive(Serialize)]
struct Row {
    shards: u32,
    ingest_docs: u64,
    ingest_secs: f64,
    ingest_docs_per_sec: f64,
    queries: u64,
    query_secs: f64,
    queries_per_sec: f64,
    query_speedup_vs_1: f64,
    decoded_hit_rate: f64,
    docs_committed_during_run: u64,
}

#[derive(Serialize)]
struct Report {
    scale: Scale,
    available_parallelism: usize,
    rows: Vec<Row>,
    query_speedup_4x: f64,
    /// Which acceptance gate applied: `"parallel"` (≥ 4 hardware
    /// threads: 4-shard throughput ≥ 2× baseline) or
    /// `"resource-scaling"` (fewer threads: speedup floor + decoded
    /// cache-residency transition).
    gate: &'static str,
}

fn main() {
    let mut scale = Scale::from_args();
    if scale.is_default_workload() {
        // Sized so the queried index is ~4× one shard's caches: ~6.4k
        // docs × 16 distinct terms ≈ 100k postings ≈ 800 index blocks
        // per full archive vs 256 decoded + 256 storage blocks per
        // shard.  At 4 shards each shard's slice fits its caches.
        scale.docs = 6_400;
        scale.vocab = 8_192;
        scale.terms_per_doc = 16;
        scale.query_vocab = 8_192;
    }
    let mut corpus = scale.corpus();
    corpus.num_docs += WRITER_DOCS;
    let gen = DocumentGenerator::new(corpus);
    let qgen = QueryGenerator::new(scale.query_log());

    // Render documents and queries as text once, outside the clocks:
    // the sharded writer routes by text hash.
    eprintln!("[sharded] rendering {} docs…", scale.docs + WRITER_DOCS);
    let docs: Vec<(String, Timestamp)> = gen
        .docs(0..scale.docs)
        .map(|d| (d.text(), d.timestamp))
        .collect();
    let extra: Vec<(String, Timestamp)> = gen
        .docs(scale.docs..scale.docs + WRITER_DOCS)
        .map(|d| (d.text(), d.timestamp))
        .collect();
    let queries: Vec<Query> = qgen
        .queries(0..QUERY_SAMPLE.min(scale.queries))
        .map(|q| {
            let text = q
                .terms
                .iter()
                .map(|t| format!("kw{}", t.0))
                .collect::<Vec<_>>()
                .join(" ");
            Query::disjunctive(text.as_str(), 10)
        })
        .collect();

    let mut rows = Vec::new();
    let mut out = Vec::new();
    let mut baseline_qps = 0.0f64;
    for shards in SHARD_COUNTS {
        eprintln!("[sharded] round: {shards} shard(s)");
        let archive = ShardedArchive::create(shard_config(), shards).expect("valid config");
        let (mut writer, searcher) = archive.into_service();

        // Phase 1: ingest the same corpus (batch-committed; slices run
        // in parallel where the hardware allows).
        let t0 = Instant::now();
        writer
            .commit_batch(docs.iter().map(|(t, ts)| (t.as_str(), *ts)))
            .expect("clean ingest");
        let ingest_secs = t0.elapsed().as_secs_f64();
        assert_eq!(writer.committed_docs(), scale.docs);

        // Phase 2: scatter-gather queries while a live writer keeps
        // committing (bounded, so every round sees the same growth).
        let stop = AtomicBool::new(false);
        let before = writer.committed_docs();
        let mut query_secs = 0.0f64;
        let decoded_before = searcher.decoded_cache_stats();
        std::thread::scope(|scope| {
            let stop = &stop;
            let writer = &mut writer;
            let extra = &extra;
            let ingest = scope.spawn(move || {
                for (text, ts) in extra {
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    writer.commit(text, *ts).expect("valid doc");
                    std::thread::yield_now();
                }
            });
            let t0 = Instant::now();
            for q in &queries {
                let resp = searcher.execute(q.clone()).expect("query failed mid-run");
                assert!(resp.trusted, "clean archive must stay trusted");
            }
            query_secs = t0.elapsed().as_secs_f64();
            stop.store(true, Ordering::Release);
            ingest.join().expect("ingest thread");
        });
        let decoded = searcher.decoded_cache_stats();
        let accesses =
            (decoded.hits - decoded_before.hits) + (decoded.misses - decoded_before.misses);
        let hit_rate = if accesses == 0 {
            0.0
        } else {
            (decoded.hits - decoded_before.hits) as f64 / accesses as f64
        };
        let committed = writer.committed_docs() - before;
        let qps = queries.len() as f64 / query_secs.max(1e-9);
        if shards == 1 {
            baseline_qps = qps;
        }
        let row = Row {
            shards,
            ingest_docs: scale.docs,
            ingest_secs,
            ingest_docs_per_sec: scale.docs as f64 / ingest_secs.max(1e-9),
            queries: queries.len() as u64,
            query_secs,
            queries_per_sec: qps,
            query_speedup_vs_1: qps / baseline_qps.max(1e-9),
            decoded_hit_rate: hit_rate,
            docs_committed_during_run: committed,
        };
        rows.push(vec![
            format!("{shards}"),
            format!("{:.0}", row.ingest_docs_per_sec),
            format!("{}", row.queries),
            format!("{:.2}", row.query_secs),
            format!("{:.0}", row.queries_per_sec),
            format!("{:.2}x", row.query_speedup_vs_1),
            format!("{:.0}%", row.decoded_hit_rate * 100.0),
            format!("{committed}"),
        ]);
        out.push(row);
    }

    print_table(
        "Sharded archive throughput (same corpus, live writer)",
        &[
            "shards",
            "ingest docs/s",
            "queries",
            "wall (s)",
            "queries/s",
            "speedup",
            "decoded hit",
            "docs committed during run",
        ],
        &rows,
    );
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("hardware threads available: {cores}");
    let speedup_4x = out
        .iter()
        .find(|r| r.shards == 4)
        .map(|r| r.query_speedup_vs_1)
        .unwrap_or(0.0);
    let hit_rate = |shards: u32| {
        out.iter()
            .find(|r| r.shards == shards)
            .map(|r| r.decoded_hit_rate)
            .unwrap_or(0.0)
    };
    let (hit_1x, hit_4x) = (hit_rate(1), hit_rate(4));
    let gate = if cores >= 4 {
        "parallel"
    } else {
        "resource-scaling"
    };
    let report = Report {
        scale,
        available_parallelism: cores,
        rows: out,
        query_speedup_4x: speedup_4x,
        gate,
    };
    save_json("sharded", &report);
    match serde_json::to_string_pretty(&report) {
        Ok(body) => match std::fs::write("BENCH_sharded.json", body) {
            Ok(()) => eprintln!("[saved BENCH_sharded.json]"),
            Err(e) => eprintln!("[warn] could not save BENCH_sharded.json: {e}"),
        },
        Err(e) => eprintln!("[warn] could not serialize results: {e}"),
    }
    // The acceptance gate.  With ≥ 4 hardware threads, 4 hash-partitioned
    // shards must answer the same query log ≥ 2× faster than one shard
    // holding the whole corpus.  On smaller hosts that bar is
    // unreachable by construction (one core executes the per-shard
    // slices back to back), so assert the effect sharding is *supposed*
    // to buy and that survives serialization: a throughput floor plus
    // the decoded-block cache-residency transition — the 1-shard archive
    // must be thrashing its decoded cache while the 4-shard archive's
    // slices are cache-resident.
    if gate == "parallel" {
        assert!(
            speedup_4x >= 2.0,
            "sharding gate failed: 4-shard query throughput is only {speedup_4x:.2}× the \
             1-shard baseline (expected ≥ 2× with {cores} hardware threads)"
        );
        println!(
            "gate ok (parallel): 4-shard query throughput = {speedup_4x:.2}× the 1-shard \
             baseline (≥ 2×)"
        );
    } else {
        assert!(
            speedup_4x >= 1.05,
            "sharding gate failed: 4-shard query throughput is only {speedup_4x:.2}× the \
             1-shard baseline (expected ≥ 1.05× even on {cores} hardware thread(s))"
        );
        assert!(
            hit_1x <= 0.60,
            "sharding gate failed: 1-shard decoded hit rate {:.0}% — the workload no longer \
             thrashes a single shard's caches, so the bench measures nothing",
            hit_1x * 100.0
        );
        assert!(
            hit_4x >= 0.90,
            "sharding gate failed: 4-shard decoded hit rate {:.0}% — per-shard slices should \
             be cache-resident at 4 shards",
            hit_4x * 100.0
        );
        println!(
            "gate ok (resource-scaling, {cores} hardware thread(s)): speedup {speedup_4x:.2}×, \
             decoded hit {:.0}% → {:.0}% from 1 to 4 shards",
            hit_1x * 100.0,
            hit_4x * 100.0
        );
    }
}
