//! Figure 3(a) — distribution of term frequencies: the rank curve of
//! per-term document frequency `ti` is Zipfian (straight line on the
//! paper's log-y axis, spanning ~1e3 … 1e6 over the first 25,000 ranks at
//! full scale).

// Experiment binary: expect() on malformed synthetic input is acceptable
// (the production no-panic surface is gated by clippy + `cargo xtask audit`).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use serde::Serialize;
use tks_bench::{print_table, save_json, Scale};
use tks_corpus::{DocumentGenerator, TermStats};

#[derive(Serialize)]
struct Point {
    rank: usize,
    term_frequency: u64,
}

fn main() {
    let scale = Scale::from_args();
    let gen = DocumentGenerator::new(scale.corpus());
    let stats = TermStats::collect(&gen, 0..scale.docs);
    let curve = stats.rank_curve();

    let sample_ranks = [0usize, 10, 100, 1_000, 5_000, 10_000, 25_000, 50_000];
    let mut rows = Vec::new();
    let mut out = Vec::new();
    for &r in &sample_ranks {
        if r < curve.len() && curve[r] > 0 {
            rows.push(vec![format!("{r}"), format!("{}", curve[r])]);
            out.push(Point {
                rank: r,
                term_frequency: curve[r],
            });
        }
    }
    print_table(
        "Figure 3(a): term-frequency rank curve (ti)",
        &["rank", "term frequency"],
        &rows,
    );

    // Zipf check: fit the log-log slope over the head of the curve.
    let pairs: Vec<(f64, f64)> = (1..curve.len().min(10_000))
        .filter(|&r| curve[r] > 0)
        .map(|r| ((r as f64).ln(), (curve[r] as f64).ln()))
        .collect();
    let n = pairs.len() as f64;
    let (sx, sy): (f64, f64) = pairs
        .iter()
        .fold((0.0, 0.0), |(a, b), (x, y)| (a + x, b + y));
    let sxx: f64 = pairs.iter().map(|(x, _)| x * x).sum();
    let sxy: f64 = pairs.iter().map(|(x, y)| x * y).sum();
    let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    println!("\nlog-log slope over head ranks: {slope:.2} (paper: Zipfian, slope ≈ -1)");
    save_json("fig3a", &(&scale, &out, slope));
}
