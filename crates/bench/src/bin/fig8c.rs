//! Figure 8(c) — conjunctive-query speedup from jump indexes, as a
//! function of the number of query keywords (2–7), for B ∈ {2, 32, 64},
//! with the unmerged-plus-B+-tree ideal as reference.
//!
//! Speedup is "the ratio of the number of blocks read when no jump index
//! is kept (using a sequential scan-merge join) to the number of blocks
//! read in a zigzag join using the jump index" — i.e. each configuration
//! is normalised by the scan-merge cost *in its own setting* (merged lists
//! for the jump curves, unmerged per-term lists for the B+-tree ideal).
//! Paper shape: ~0.9× for 2-keyword queries (jump-pointer space overhead
//! makes a scan-like join slightly slower), rising smoothly to ~3× at 7
//! keywords; the ideal case's speedup factor stays within ~1.4× above the
//! B = 32 curve.

// Experiment binary: expect() on malformed synthetic input is acceptable
// (the production no-panic surface is gated by clippy + `cargo xtask audit`).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use serde::Serialize;
use std::collections::HashSet;
use tks_bench::{print_table, save_json, Scale};
use tks_core::engine::EngineConfig;
use tks_core::merge::MergeAssignment;
use tks_core::sim::{btree_conjunctive_cost, build_engine, build_term_btrees, scan_merge_blocks};
use tks_corpus::{DocumentGenerator, QueryGenerator};
use tks_jump::JumpConfig;
use tks_postings::TermId;

#[derive(Serialize)]
struct Row {
    keywords: usize,
    speedup_b2: f64,
    speedup_b32: f64,
    speedup_b64: f64,
    speedup_unmerged_btree: f64,
}

fn main() {
    let mut scale = Scale::from_args();
    // The engine path materialises real structures ×4 configurations;
    // default to a lighter corpus than the simulation-only figures.  The
    // Zipfian term mix matters here (query terms are head terms with long
    // per-term lists, which is what zigzag skipping exploits), so unlike
    // Figure 8(b) this figure keeps the natural corpus shape and maps the
    // list count through the postings ratio.
    if scale.is_default_workload() {
        scale.docs = 20_000;
    }
    let gen = DocumentGenerator::new(scale.corpus());
    let qgen = QueryGenerator::new(scale.query_log());

    let paper_postings = 1_000_000u64 * 500;
    let our_postings = scale.docs * scale.terms_per_doc as u64;
    let postings_ratio = (paper_postings as f64 / our_postings as f64).max(1.0);
    let m = ((32_768f64 / postings_ratio).round() as u32).max(8);
    eprintln!(
        "[fig8c] {m} merged lists (~{} postings/list)",
        our_postings / m as u64
    );
    let assignment = MergeAssignment::uniform(m);
    let block = 8192usize;

    // Queries: `queries_per_len` fixed-length conjunctive queries per
    // keyword count.
    let queries_per_len = (scale.queries / 100).clamp(50, 500);
    let lens: Vec<usize> = (2..=7).collect();

    eprintln!("[fig8c] building engines…");
    let engines: Vec<(u32, tks_core::engine::SearchEngine)> = [2u32, 32, 64]
        .into_iter()
        .map(|b| {
            let cfg = EngineConfig {
                assignment: assignment.clone(),
                jump: Some(JumpConfig::new(block, b, 1 << 32)),
                block_size: block,
                ..Default::default()
            };
            eprintln!("[fig8c]   B={b}");
            (
                b,
                build_engine(&gen, scale.docs, cfg).expect("well-formed synthetic corpus"),
            )
        })
        .collect();

    // The ideal baseline needs per-term B+ trees for every queried term.
    let mut needed: HashSet<TermId> = HashSet::new();
    for &len in &lens {
        for i in 0..queries_per_len {
            needed.extend(qgen.query_of_len(i, len).terms.iter().copied());
        }
    }
    eprintln!("[fig8c] building {} per-term B+ trees…", needed.len());
    let trees = build_term_btrees(
        &gen,
        scale.docs,
        &needed,
        tks_btree::BTreeConfig::for_block_size(block),
    )
    .expect("well-formed synthetic corpus");
    // Unmerged per-term list sizes, for the ideal curve's own scan-merge
    // denominator.
    let ti = tks_corpus::TermStats::collect(&gen, 0..scale.docs).doc_freq;
    let unmerged_blocks = |terms: &[TermId]| -> u64 {
        terms
            .iter()
            .map(|t| (ti[t.0 as usize] * 8).div_ceil(block as u64).max(1))
            .sum()
    };

    let scan_engine = &engines[0].1; // merged lists are identical across B
    let mut rows = Vec::new();
    let mut out = Vec::new();
    for &len in &lens {
        let mut scan_total = 0u64;
        let mut jump_total = [0u64; 3];
        let mut btree_total = 0u64;
        let mut unmerged_scan_total = 0u64;
        for i in 0..queries_per_len {
            let q = qgen.query_of_len(i, len);
            scan_total += scan_merge_blocks(scan_engine, &q.terms);
            unmerged_scan_total += unmerged_blocks(&q.terms);
            for (bi, (_, e)) in engines.iter().enumerate() {
                let (_, blocks) = e.conjunctive_terms(&q.terms).expect("clean index");
                jump_total[bi] += blocks;
            }
            let (_, blocks) =
                btree_conjunctive_cost(&trees, &q.terms).expect("trees built for all terms");
            btree_total += blocks;
        }
        let speedup = |j: u64| scan_total as f64 / j.max(1) as f64;
        let r = Row {
            keywords: len,
            speedup_b2: speedup(jump_total[0]),
            speedup_b32: speedup(jump_total[1]),
            speedup_b64: speedup(jump_total[2]),
            speedup_unmerged_btree: unmerged_scan_total as f64 / btree_total.max(1) as f64,
        };
        eprintln!(
            "[fig8c] {len} keywords: B2 {:.2} B32 {:.2} B64 {:.2} ideal {:.2}",
            r.speedup_b2, r.speedup_b32, r.speedup_b64, r.speedup_unmerged_btree
        );
        rows.push(vec![
            format!("{len}"),
            format!("{:.2}", r.speedup_b2),
            format!("{:.2}", r.speedup_b32),
            format!("{:.2}", r.speedup_b64),
            format!("{:.2}", r.speedup_unmerged_btree),
        ]);
        out.push(r);
    }
    print_table(
        "Figure 8(c): conjunctive-query speedup vs scan-merge (blocks read)",
        &["keywords", "B=2", "B=32", "B=64", "unmerged+B+tree (ideal)"],
        &rows,
    );
    println!(
        "\nPaper shape: ≈0.9× at 2 keywords (scan-like joins pay the jump-pointer space\n\
         overhead), rising with keyword count to ~3× at 7; the unmerged B+-tree ideal\n\
         stays within ~1.4× of the B=32 curve."
    );
    save_json("fig8c", &(&scale, &out));
}
