//! Figure 3(g) — Figure 3(e) with the term ranking *learned* from the
//! first 10% of the documents crawled.

// Experiment binary: expect() on malformed synthetic input is acceptable
// (the production no-panic surface is gated by clippy + `cargo xtask audit`).
#![allow(clippy::unwrap_used, clippy::expect_used)]

fn main() {
    tks_bench::merging::run_merge_ratio_figure(
        "fig3g",
        "Figure 3(g): popular document terms not merged, learned from a 10% prefix",
        tks_bench::merging::RankBy::TermFreq,
        true,
    );
}
