//! Section 6 headline numbers — the paper's conclusion quantifies the
//! whole design against a baseline that "uses a multi-GB storage server
//! cache for posting lists, does not merge posting lists, and keeps a
//! separate B+ tree for each posting list":
//!
//! 1. document insertion: merged lists with a modest cache are **20×
//!    faster** than the unmerged multi-GB-cache baseline;
//! 2. disjunctive queries: merged lists are **14% slower** than the
//!    baseline; adding a B = 32 jump index makes it **26% slower** (the
//!    11% space overhead);
//! 3. conjunctive queries: merged + jump index is **47% faster** than
//!    merged without, and **30% slower** than the baseline.

// Experiment binary: expect() on malformed synthetic input is acceptable
// (the production no-panic surface is gated by clippy + `cargo xtask audit`).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use serde::{Deserialize, Serialize};
use tks_bench::{print_table, save_json, Scale};
use tks_core::cost::{list_lengths, query_cost, unmerged_query_cost};
use tks_core::engine::EngineConfig;
use tks_core::merge::MergeAssignment;
use tks_core::sim::{
    btree_conjunctive_cost, build_engine, build_term_btrees, insertion_ios, scan_merge_blocks,
};
use tks_corpus::{DocumentGenerator, QueryGenerator, TermStats};
use tks_jump::{space_overhead, JumpConfig};
use tks_postings::TermId;

#[derive(Serialize)]
struct Summary {
    insert_speedup: f64,
    disjunctive_slowdown_no_jump: f64,
    disjunctive_slowdown_b32: f64,
    conjunctive_jump_vs_nojump: f64,
    conjunctive_jump_vs_baseline: f64,
    /// Block-granular scan vs per-posting reads, from the `read_path`
    /// binary's saved results (`None` until it has been run).
    read_path_scan_speedup: Option<f64>,
    /// 4-shard vs 1-shard query throughput, from the `sharded` binary's
    /// saved results (`None` until it has been run).
    sharded_query_speedup_4x: Option<f64>,
    /// Network-server saturation throughput (best qps over the measured
    /// client counts), from the `loadgen` binary's saved results (`None`
    /// until it has been run).
    server_saturation_qps: Option<f64>,
    /// Block-max top-k vs exhaustive disjunctive evaluation, from the
    /// `at_scale` binary's saved results (`None` until it has been run).
    at_scale_blockmax_speedup: Option<f64>,
    /// 2-replica vs unreplicated read throughput, from the `replicated`
    /// binary's saved results (`None` until it has been run).
    replicated_read_speedup: Option<f64>,
}

/// The slice of `results/read_path.json` the summary folds in.
#[derive(Deserialize)]
struct ReadPathScan {
    speedup: f64,
}

#[derive(Deserialize)]
struct ReadPathResults {
    scan: ReadPathScan,
}

/// The slice of `results/sharded.json` the summary folds in.
#[derive(Deserialize)]
struct ShardedResults {
    query_speedup_4x: f64,
}

/// The slice of `results/loadgen.json` the summary folds in.
#[derive(Deserialize)]
struct LoadgenResults {
    saturation_qps: f64,
}

/// The slice of `results/at_scale.json` the summary folds in.
#[derive(Deserialize)]
struct AtScaleResults {
    speedup: f64,
}

/// The slice of `results/replicated.json` the summary folds in.
#[derive(Deserialize)]
struct ReplicatedGate {
    achieved_speedup: f64,
    resource_scaling_fallback: bool,
}

#[derive(Deserialize)]
struct ReplicatedResults {
    gate: ReplicatedGate,
}

fn main() {
    let scale = Scale::from_args();
    let gen = DocumentGenerator::new(scale.corpus());
    let qgen = QueryGenerator::new(scale.query_log());
    let block = 8192usize;

    // ---- 1. Insertion: unmerged @ 4 GB-equivalent vs merged @ 128 MB. --
    // With merging every append hits the cache, so merged insertion cost
    // is pure geometry: postings/doc ÷ postings/block.  The paper's
    // 500-postings/doc corpus on 4 KB blocks gives ~1 I/O per document;
    // we measure the unmerged plateau on our corpus and normalise the
    // denominator to the paper's geometry so the headline is comparable.
    eprintln!("[summary] insertion…");
    let unmerged_cache = scale.scaled_cache(4u64 << 30);
    let unmerged_ins = insertion_ios(
        &gen,
        &MergeAssignment::unmerged(scale.vocab),
        scale.docs,
        unmerged_cache,
        block as u32,
    );
    let paper_merged_ios_per_doc = 500.0 * 8.0 / 4096.0; // ≈ 1
    let insert_speedup = unmerged_ins.ios_per_doc() / paper_merged_ios_per_doc;

    // ---- 2. Disjunctive: postings-scanned ratio over the query log. ----
    eprintln!("[summary] disjunctive…");
    let m128 = (((128u64 << 20) / block as u64) as f64 / scale.vocab_ratio())
        .round()
        .max(2.0) as u32;
    let ti = TermStats::collect(&gen, 0..scale.docs).doc_freq;
    let assignment = MergeAssignment::uniform(m128);
    let lens = list_lengths(&assignment, &ti);
    let (mut merged_cost, mut unmerged_cost) = (0u64, 0u64);
    for q in qgen.queries(0..scale.queries.min(20_000)) {
        merged_cost += query_cost(&assignment, &lens, &q.terms);
        unmerged_cost += unmerged_query_cost(&ti, &q.terms);
    }
    let disjunctive_slowdown = merged_cost as f64 / unmerged_cost.max(1) as f64;
    // With a jump index, disjunctive scans slow down by its space
    // overhead (§4.5: "jump indexes slow down disjunctive query workloads
    // by the same factor as the space overhead").
    let b32_overhead = space_overhead(block, 32, 1 << 32);
    let disjunctive_b32 = disjunctive_slowdown * (1.0 + b32_overhead);

    // ---- 3. Conjunctive: engine + B+ tree baseline (fig8c workload). ---
    eprintln!("[summary] conjunctive (engine-backed)…");
    let scale_j = Scale {
        docs: 20_000,
        ..Scale {
            seed: scale.seed,
            ..Scale::default()
        }
    };
    let gen_j = DocumentGenerator::new(scale_j.corpus());
    let qgen_j = QueryGenerator::new(scale_j.query_log());
    let paper_postings = 1_000_000u64 * 500;
    let postings_ratio =
        (paper_postings as f64 / (scale_j.docs * scale_j.terms_per_doc as u64) as f64).max(1.0);
    let mq = ((32_768f64 / postings_ratio).round() as u32).max(8);
    let conj_assignment = MergeAssignment::uniform(mq);
    let with_jump = build_engine(
        &gen_j,
        scale_j.docs,
        EngineConfig {
            assignment: conj_assignment.clone(),
            jump: Some(JumpConfig::new(block, 32, 1 << 32)),
            block_size: block,
            ..Default::default()
        },
    )
    .expect("well-formed synthetic corpus");
    // Conjunctive workload: the multi-keyword part of the log (≥2 terms).
    let queries: Vec<Vec<TermId>> = qgen_j
        .queries(0..scale_j.queries)
        .filter(|q| q.terms.len() >= 2)
        .take(300)
        .map(|q| q.terms)
        .collect();
    let mut needed: std::collections::HashSet<TermId> = std::collections::HashSet::new();
    for q in &queries {
        needed.extend(q.iter().copied());
    }
    let trees = build_term_btrees(
        &gen_j,
        scale_j.docs,
        &needed,
        tks_btree::BTreeConfig::for_block_size(block),
    )
    .expect("well-formed synthetic corpus");
    let (mut jump_blocks, mut scan_blocks, mut btree_blocks) = (0u64, 0u64, 0u64);
    for q in &queries {
        let (_, jb) = with_jump.conjunctive_terms(q).expect("clean index");
        jump_blocks += jb;
        scan_blocks += scan_merge_blocks(&with_jump, q);
        btree_blocks += btree_conjunctive_cost(&trees, q)
            .expect("trees cover terms")
            .1;
    }
    // The scan-merge join reads lists *without* jump pointers interleaved;
    // discount the space overhead the jump layout adds to a pure scan.
    let scan_blocks_plain = (scan_blocks as f64 / (1.0 + b32_overhead)).max(1.0);
    let conj_vs_nojump = jump_blocks as f64 / scan_blocks_plain;
    let conj_vs_baseline = jump_blocks as f64 / btree_blocks.max(1) as f64;

    // ---- 4. Read-path scan throughput (implementation headline). -------
    // Not a paper number: the block-granular read path must not change
    // any block count, only the wall-clock cost per block.  Folded in
    // from the `read_path` binary's saved results when available.
    let read_path_speedup = std::fs::read_to_string("results/read_path.json")
        .ok()
        .and_then(|s| serde_json::from_str::<ReadPathResults>(&s).ok())
        .map(|r| r.scan.speedup);
    let sharded_speedup = std::fs::read_to_string("results/sharded.json")
        .ok()
        .and_then(|s| serde_json::from_str::<ShardedResults>(&s).ok())
        .map(|r| r.query_speedup_4x);
    let server_qps = std::fs::read_to_string("results/loadgen.json")
        .ok()
        .and_then(|s| serde_json::from_str::<LoadgenResults>(&s).ok())
        .map(|r| r.saturation_qps);
    let at_scale_speedup = std::fs::read_to_string("results/at_scale.json")
        .ok()
        .and_then(|s| serde_json::from_str::<AtScaleResults>(&s).ok())
        .map(|r| r.speedup);
    let replicated = std::fs::read_to_string("results/replicated.json")
        .ok()
        .and_then(|s| serde_json::from_str::<ReplicatedResults>(&s).ok())
        .map(|r| r.gate);

    let s = Summary {
        insert_speedup,
        disjunctive_slowdown_no_jump: disjunctive_slowdown,
        disjunctive_slowdown_b32: disjunctive_b32,
        conjunctive_jump_vs_nojump: conj_vs_nojump,
        conjunctive_jump_vs_baseline: conj_vs_baseline,
        read_path_scan_speedup: read_path_speedup,
        sharded_query_speedup_4x: sharded_speedup,
        server_saturation_qps: server_qps,
        at_scale_blockmax_speedup: at_scale_speedup,
        replicated_read_speedup: replicated.as_ref().map(|g| g.achieved_speedup),
    };
    let mut rows = vec![
        vec![
            "insertion speedup (merged 128MB vs unmerged 4GB)".into(),
            format!("{insert_speedup:.1}×"),
            "20×".into(),
        ],
        vec![
            "disjunctive slowdown, merged (no jump)".into(),
            format!("{:.0}%", (disjunctive_slowdown - 1.0) * 100.0),
            "14%".into(),
        ],
        vec![
            "disjunctive slowdown, merged + jump B=32".into(),
            format!("{:.0}%", (disjunctive_b32 - 1.0) * 100.0),
            "26%".into(),
        ],
        vec![
            "conjunctive: jump vs merged-no-jump".into(),
            format!("{:.0}% faster", (1.0 - conj_vs_nojump) * 100.0),
            "47% faster".into(),
        ],
        vec![
            "conjunctive: jump vs unmerged B+tree baseline".into(),
            format!("{:.0}% slower", (conj_vs_baseline - 1.0) * 100.0),
            "30% slower".into(),
        ],
    ];
    if let Some(speedup) = read_path_speedup {
        rows.push(vec![
            "block-granular scan vs per-posting reads (read_path)".into(),
            format!("{speedup:.1}×"),
            "n/a (impl)".into(),
        ]);
    } else {
        eprintln!("[summary] results/read_path.json not found — run `--bin read_path` to fold in the read-path headline");
    }
    if let Some(speedup) = sharded_speedup {
        rows.push(vec![
            "4-shard vs 1-shard query throughput (sharded)".into(),
            format!("{speedup:.2}×"),
            "n/a (impl)".into(),
        ]);
    } else {
        eprintln!("[summary] results/sharded.json not found — run `--bin sharded` to fold in the sharding headline");
    }
    if let Some(qps) = server_qps {
        rows.push(vec![
            "network server saturation throughput (loadgen)".into(),
            format!("{qps:.0} q/s"),
            "n/a (impl)".into(),
        ]);
    } else {
        eprintln!("[summary] results/loadgen.json not found — run `--bin loadgen` to fold in the server headline");
    }
    if let Some(speedup) = at_scale_speedup {
        rows.push(vec![
            "block-max top-k vs exhaustive disjunctive (at_scale)".into(),
            format!("{speedup:.1}×"),
            "n/a (impl)".into(),
        ]);
    } else {
        eprintln!("[summary] results/at_scale.json not found — run `--bin at_scale` to fold in the top-k headline");
    }
    if let Some(gate) = &replicated {
        rows.push(vec![
            "2-replica vs unreplicated read throughput (replicated)".into(),
            format!(
                "{:.2}×{}",
                gate.achieved_speedup,
                if gate.resource_scaling_fallback {
                    " (cores-limited)"
                } else {
                    ""
                }
            ),
            "n/a (impl)".into(),
        ]);
    } else {
        eprintln!("[summary] results/replicated.json not found — run `--bin replicated` to fold in the replication headline");
    }
    print_table(
        "Section 6 headline comparison (measured vs paper)",
        &["quantity", "measured", "paper"],
        &rows,
    );
    println!(
        "\nNotes on scale sensitivity: the conjunctive numbers depend on the query-length\n\
         mix (our synthetic log is shorter-tailed than the intranet log) and on per-term\n\
         list lengths, which shrink with the corpus; at small scale the unmerged B+-tree\n\
         baseline reads unrealistically few absolute blocks.  The per-keyword-count\n\
         speedups (fig8c) are the scale-robust comparison and match the paper's curves."
    );
    save_json("summary", &(&scale, &s));
}
