//! Concurrent query throughput: ranked disjunctive queries executed
//! through cloned [`Searcher`](tks_core::service::Searcher) handles at
//! 1/2/4/8 reader threads, **while an [`IndexWriter`](tks_core::service::IndexWriter)
//! keeps committing documents** — the deployment shape of a compliance
//! archive that must stay searchable during ingestion.
//!
//! Results land in `results/concurrent.json` and `BENCH_concurrent.json`.
//!
//! ```text
//! cargo run --release -p tks-bench --bin concurrent
//! ```

// Experiment binary: expect() on malformed synthetic input is acceptable
// (the production no-panic surface is gated by clippy + `cargo xtask audit`).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use serde::Serialize;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;
use tks_bench::{print_table, save_json, Scale};
use tks_core::engine::EngineConfig;
use tks_core::merge::MergeAssignment;
use tks_core::query::Query;
use tks_core::service::service;
use tks_core::sim::build_engine;
use tks_corpus::{DocumentGenerator, QueryGenerator};
use tks_jump::JumpConfig;

const READER_THREADS: [usize; 4] = [1, 2, 4, 8];
const QUERY_SAMPLE: u64 = 2_000;
/// Commit budget for the live writer in each measured round.  Capped so
/// every round runs against the same document range (fresh engine + at
/// most this much growth), keeping the thread counts comparable.
const WRITER_DOCS: u64 = 1_000;

#[derive(Serialize)]
struct Row {
    reader_threads: usize,
    queries: u64,
    wall_secs: f64,
    queries_per_sec: f64,
    speedup_vs_1: f64,
    docs_committed_during_run: u64,
}

#[derive(Serialize)]
struct Report {
    scale: Scale,
    /// Hardware threads available to this process — speedup saturates
    /// here; on a single-core machine the curve is flat by construction.
    available_parallelism: usize,
    rows: Vec<Row>,
}

fn main() {
    let mut scale = Scale::from_args();
    // The default figure workload (50k docs) is bigger than this
    // experiment needs; shrink it unless the user asked for a size.
    if scale.is_default_workload() {
        scale.docs = 10_000;
        scale.vocab = 20_000;
        scale.terms_per_doc = 60;
        scale.query_vocab = 5_000;
    }
    let mut corpus = scale.corpus();
    corpus.num_docs += WRITER_DOCS;
    let gen = DocumentGenerator::new(corpus);
    let qgen = QueryGenerator::new(scale.query_log());
    let queries: Vec<Query> = qgen
        .queries(0..QUERY_SAMPLE.min(scale.queries))
        .map(|q| Query::disjunctive(&q.terms[..], 10))
        .collect();

    // Documents for the live writer to commit during each round.
    let extra: Vec<_> = gen.docs(scale.docs..scale.docs + WRITER_DOCS).collect();

    let mut rows = Vec::new();
    let mut out = Vec::new();
    let mut baseline_qps = 0.0f64;
    let mut last_searcher = None;
    for threads in READER_THREADS {
        // A fresh engine per round: every thread count queries the same
        // initial index while a live writer commits the same extra docs.
        eprintln!(
            "[concurrent] ingesting {} docs for {threads} reader(s)…",
            scale.docs
        );
        let engine = build_engine(
            &gen,
            scale.docs,
            EngineConfig {
                assignment: MergeAssignment::uniform(256),
                jump: Some(JumpConfig::new(8192, 32, 1 << 32)),
                store_documents: false,
                ..Default::default()
            },
        )
        .expect("well-formed synthetic corpus");
        let (mut writer, searcher) = service(engine);
        let stop = AtomicBool::new(false);
        let before = writer.committed_docs();
        let mut elapsed = 0.0f64;
        std::thread::scope(|scope| {
            let stop = &stop;
            let writer = &mut writer;
            let extra = &extra;
            let ingest = scope.spawn(move || {
                // The live writer: commit until the budget runs out or the
                // readers finish, yielding so the RwLock stays fair.
                for d in extra {
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    writer
                        .commit_terms(&d.terms, d.timestamp, None)
                        .expect("valid doc");
                    std::thread::yield_now();
                }
            });
            let t0 = Instant::now();
            let results = searcher.execute_many(queries.clone(), threads);
            elapsed = t0.elapsed().as_secs_f64();
            stop.store(true, Ordering::Release);
            assert!(results.iter().all(|r| r.is_ok()), "query failed mid-run");
            ingest.join().expect("ingest thread");
        });
        let committed = writer.committed_docs() - before;
        let qps = queries.len() as f64 / elapsed.max(1e-9);
        if threads == 1 {
            baseline_qps = qps;
        }
        let row = Row {
            reader_threads: threads,
            queries: queries.len() as u64,
            wall_secs: elapsed,
            queries_per_sec: qps,
            speedup_vs_1: qps / baseline_qps.max(1e-9),
            docs_committed_during_run: committed,
        };
        rows.push(vec![
            format!("{threads}"),
            format!("{}", row.queries),
            format!("{:.2}", row.wall_secs),
            format!("{:.0}", row.queries_per_sec),
            format!("{:.2}x", row.speedup_vs_1),
            format!("{committed}"),
        ]);
        out.push(row);
        last_searcher = Some(searcher);
    }

    print_table(
        "Concurrent query throughput (live writer, shared Searcher handles)",
        &[
            "reader threads",
            "queries",
            "wall (s)",
            "queries/s",
            "speedup",
            "docs committed during run",
        ],
        &rows,
    );
    if let Some(searcher) = last_searcher {
        println!(
            "\nLast round query-path I/O: {:?}\nindex size: {} docs; audit clean: {}",
            searcher.query_io_stats(),
            searcher.visible_docs(),
            searcher.audit().is_clean()
        );
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("hardware threads available: {cores} (speedup saturates here)");
    let report = Report {
        scale,
        available_parallelism: cores,
        rows: out,
    };
    save_json("concurrent", &report);
    match serde_json::to_string_pretty(&report) {
        Ok(body) => match std::fs::write("BENCH_concurrent.json", body) {
            Ok(()) => eprintln!("[saved BENCH_concurrent.json]"),
            Err(e) => eprintln!("[warn] could not save BENCH_concurrent.json: {e}"),
        },
        Err(e) => eprintln!("[warn] could not serialize results: {e}"),
    }
}
