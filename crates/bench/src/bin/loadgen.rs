//! Multi-client load harness for the network archive server: an
//! in-process `tks_server` over a sharded archive, hammered by 1/2/4/8
//! concurrent `tks_client` connections while a live writer keeps
//! committing — the deployment shape of a compliance archive serving
//! investigators during ingest.
//!
//! For each client count the harness reports per-query latency
//! percentiles (p50/p99/mean) and aggregate throughput; the **saturation
//! qps** headline is the best throughput any round achieved.  A final
//! probe restarts the server with an injected per-query delay and
//! asserts the deadline path: a query whose budget cannot be met must
//! come back as a typed `DeadlineExceeded` wire error, never a hung
//! connection — that is the acceptance gate.
//!
//! Environment knobs (for CI smoke runs):
//!
//! * `LOADGEN_CLIENTS` — space-separated client counts (default `1 2 4 8`)
//! * `LOADGEN_QUERIES` — queries per client per round (default `400`)
//! * `LOADGEN_SHARDS`  — shard count for the archive (default `4`)
//!
//! Results land in `results/loadgen.json` and `BENCH_server.json`.
//!
//! ```text
//! cargo run --release -p tks-bench --bin loadgen
//! ```

// Experiment binary: expect() on malformed synthetic input is acceptable
// (the production no-panic surface is gated by clippy + `cargo xtask audit`).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use serde::Serialize;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;
use tks_bench::{print_table, save_json, Scale};
use tks_client::{Client, ClientError, ErrorDisposition};
use tks_core::engine::EngineConfig;
use tks_corpus::{DocumentGenerator, QueryGenerator};
use tks_postings::Timestamp;
use tks_server::server::{ArchiveServer, ServerConfig};
use tks_server::wire::{WireErrorCode, WireQuery, WireTerms};
use tks_shard::ShardedArchive;

/// Commit budget for the live writer in each measured round (bounded so
/// every client count queries a comparably-sized archive).
const WRITER_DOCS: u64 = 200;

/// Retry policy for transient pushback, driven by
/// [`ClientError::disposition`]: up to this many retries per query…
const MAX_RETRIES: u32 = 5;
/// …with exponential backoff starting here…
const RETRY_BACKOFF_BASE_MS: u64 = 1;
/// …capped here (so a saturated server sees ≤ ~60 ms of client patience
/// per query instead of an unbounded hammer).
const RETRY_BACKOFF_CAP_MS: u64 = 16;

/// Sleep for the capped exponential backoff of retry `attempt` (0-based).
fn backoff(attempt: u32) -> std::time::Duration {
    let ms = RETRY_BACKOFF_BASE_MS
        .checked_shl(attempt)
        .unwrap_or(RETRY_BACKOFF_CAP_MS)
        .min(RETRY_BACKOFF_CAP_MS);
    std::time::Duration::from_millis(ms)
}

fn env_or<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn client_counts() -> Vec<usize> {
    let raw = std::env::var("LOADGEN_CLIENTS").unwrap_or_else(|_| "1 2 4 8".to_string());
    let counts: Vec<usize> = raw
        .split_whitespace()
        .filter_map(|s| s.parse().ok())
        .collect();
    assert!(
        !counts.is_empty(),
        "LOADGEN_CLIENTS must name at least one client count"
    );
    counts
}

#[derive(Serialize)]
struct Row {
    clients: usize,
    queries: u64,
    wall_secs: f64,
    qps: f64,
    p50_ms: f64,
    p99_ms: f64,
    mean_ms: f64,
    errors: u64,
    /// Queries re-issued after a `RetryAfterBackoff`/`RetryLater`
    /// disposition (capped exponential backoff) or after a `Reconnect`.
    retries: u64,
    docs_committed_during_run: u64,
}

#[derive(Serialize)]
struct Report {
    scale: Scale,
    shards: u32,
    workers: usize,
    queries_per_client: u64,
    rows: Vec<Row>,
    /// Best aggregate throughput over all client counts.
    saturation_qps: f64,
    /// Total retried queries across every round (transient-pushback
    /// dispositions re-issued with capped exponential backoff).
    total_retries: u64,
    /// Did the deadline probe return a typed `DeadlineExceeded` (the
    /// acceptance gate), as opposed to hanging or a transport error?
    deadline_probe_typed: bool,
    /// Did the deadline error classify as `RetryAfterBackoff`, and did
    /// one backed-off retry (without the impossible budget) succeed?
    retry_after_deadline_succeeded: bool,
}

fn percentile_ms(sorted_us: &[u64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[idx.min(sorted_us.len() - 1)] as f64 / 1000.0
}

fn main() {
    let mut scale = Scale::from_args();
    if scale.is_default_workload() {
        // Server rounds are latency-bound, not index-bound: a corpus big
        // enough for realistic posting lists, small enough that 4 rounds
        // of hundreds of queries each finish in seconds.
        scale.docs = 4_000;
        scale.vocab = 8_192;
        scale.terms_per_doc = 16;
        scale.query_vocab = 4_096;
    }
    let shards: u32 = env_or("LOADGEN_SHARDS", 4);
    let per_client: u64 = env_or("LOADGEN_QUERIES", 400);
    let counts = client_counts();
    let workers = std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(4);

    let gen = DocumentGenerator::new({
        let mut c = scale.corpus();
        c.num_docs += WRITER_DOCS * counts.len() as u64;
        c
    });
    let qgen = QueryGenerator::new(scale.query_log());

    eprintln!("[loadgen] rendering {} docs…", scale.docs);
    let docs: Vec<(String, Timestamp)> = gen
        .docs(0..scale.docs)
        .map(|d| (d.text(), d.timestamp))
        .collect();
    let extra: Vec<(String, Timestamp)> = gen
        .docs(scale.docs..scale.docs + WRITER_DOCS * counts.len() as u64)
        .map(|d| (d.text(), d.timestamp))
        .collect();
    let max_clients = counts.iter().copied().max().unwrap_or(1);
    let queries: Vec<WireQuery> = qgen
        .queries(0..(per_client * max_clients as u64).min(scale.queries))
        .map(|q| {
            let text = q
                .terms
                .iter()
                .map(|t| format!("kw{}", t.0))
                .collect::<Vec<_>>()
                .join(" ");
            WireQuery::Disjunctive {
                terms: WireTerms::Text(text),
                top_k: 10,
            }
        })
        .collect();

    eprintln!("[loadgen] ingesting into {shards} shard(s)…");
    let (mut writer, searcher) = ShardedArchive::create(EngineConfig::default(), shards)
        .expect("valid config")
        .into_service();
    writer
        .commit_batch(docs.iter().map(|(t, ts)| (t.as_str(), *ts)))
        .expect("clean ingest");

    let config = ServerConfig {
        workers,
        queue_depth: (max_clients * 2).max(16),
        ..ServerConfig::default()
    };
    let handle = ArchiveServer::bind("127.0.0.1:0", searcher.clone(), config.clone())
        .expect("bind loadgen server");
    let addr = handle.addr();
    eprintln!("[loadgen] serving on {addr} ({workers} worker(s))");

    let mut rows = Vec::new();
    let mut table = Vec::new();
    let mut extra_iter = extra.iter();
    for &clients in &counts {
        eprintln!("[loadgen] round: {clients} client(s) × {per_client} queries");
        let stop = AtomicBool::new(false);
        let before = writer.committed_docs();
        let mut lat_us: Vec<u64> = Vec::new();
        let mut errors = 0u64;
        let mut retries = 0u64;
        let mut wall_secs = 0.0f64;
        std::thread::scope(|scope| {
            let stop = &stop;
            let writer = &mut writer;
            let round_docs: Vec<_> = extra_iter.by_ref().take(WRITER_DOCS as usize).collect();
            let ingest = scope.spawn(move || {
                for (text, ts) in round_docs {
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    writer.commit(text, *ts).expect("valid doc");
                    std::thread::yield_now();
                }
            });
            let t0 = Instant::now();
            let workers: Vec<_> = (0..clients)
                .map(|c| {
                    let qs: Vec<WireQuery> = queries
                        .iter()
                        .cycle()
                        .skip(c * per_client as usize)
                        .take(per_client as usize)
                        .cloned()
                        .collect();
                    scope.spawn(move || {
                        let mut client = Client::connect(addr).expect("connect client");
                        let mut lat = Vec::with_capacity(qs.len());
                        let mut errs = 0u64;
                        let mut retried = 0u64;
                        for q in qs {
                            // Latency includes any backoff: the client
                            // sees end-to-end time to a usable answer.
                            let t = Instant::now();
                            let mut attempt = 0u32;
                            loop {
                                match client.query(q.clone()) {
                                    Ok(_) => {
                                        lat.push(t.elapsed().as_micros() as u64);
                                        break;
                                    }
                                    Err(e) if attempt < MAX_RETRIES => {
                                        match e.disposition() {
                                            // Transient pushback: back
                                            // off and re-issue the call.
                                            ErrorDisposition::RetryAfterBackoff
                                            | ErrorDisposition::RetryLater => {
                                                std::thread::sleep(backoff(attempt));
                                            }
                                            // Dead connection: replace it
                                            // before re-issuing.
                                            ErrorDisposition::Reconnect => {
                                                std::thread::sleep(backoff(attempt));
                                                match Client::connect(addr) {
                                                    Ok(c) => client = c,
                                                    Err(err) => {
                                                        eprintln!(
                                                            "[loadgen] reconnect failed: {err}"
                                                        );
                                                        errs += 1;
                                                        break;
                                                    }
                                                }
                                            }
                                            ErrorDisposition::Fatal => {
                                                eprintln!("[loadgen] fatal query error: {e}");
                                                errs += 1;
                                                break;
                                            }
                                        }
                                        attempt += 1;
                                        retried += 1;
                                    }
                                    Err(e) => {
                                        eprintln!(
                                            "[loadgen] query error after {attempt} retries: {e}"
                                        );
                                        errs += 1;
                                        break;
                                    }
                                }
                            }
                        }
                        (lat, errs, retried)
                    })
                })
                .collect();
            for w in workers {
                let (lat, errs, retried) = w.join().expect("client thread");
                lat_us.extend(lat);
                errors += errs;
                retries += retried;
            }
            wall_secs = t0.elapsed().as_secs_f64();
            stop.store(true, Ordering::Release);
            ingest.join().expect("ingest thread");
        });
        let committed = writer.committed_docs() - before;
        lat_us.sort_unstable();
        let total = lat_us.len() as u64;
        let mean_ms = if lat_us.is_empty() {
            0.0
        } else {
            lat_us.iter().sum::<u64>() as f64 / lat_us.len() as f64 / 1000.0
        };
        let row = Row {
            clients,
            queries: total,
            wall_secs,
            qps: total as f64 / wall_secs.max(1e-9),
            p50_ms: percentile_ms(&lat_us, 0.50),
            p99_ms: percentile_ms(&lat_us, 0.99),
            mean_ms,
            errors,
            retries,
            docs_committed_during_run: committed,
        };
        table.push(vec![
            format!("{clients}"),
            format!("{total}"),
            format!("{:.2}", row.wall_secs),
            format!("{:.0}", row.qps),
            format!("{:.2}", row.p50_ms),
            format!("{:.2}", row.p99_ms),
            format!("{:.2}", row.mean_ms),
            format!("{errors}"),
            format!("{retries}"),
            format!("{committed}"),
        ]);
        rows.push(row);
    }
    assert!(
        rows.iter().all(|r| r.errors == 0),
        "loadgen rounds must complete without query errors"
    );
    handle.shutdown();

    // Deadline probe: restart the server with an injected per-query delay
    // far past the budget and assert the typed error path — the network
    // layer's acceptance gate.
    eprintln!("[loadgen] deadline probe…");
    let probe = ArchiveServer::bind(
        "127.0.0.1:0",
        searcher,
        ServerConfig {
            inject_delay_ms: 250,
            ..config
        },
    )
    .expect("bind probe server");
    let mut client = Client::connect(probe.addr()).expect("connect probe");
    let q = queries.first().cloned().unwrap_or(WireQuery::Disjunctive {
        terms: WireTerms::Text("kw1".to_string()),
        top_k: 10,
    });
    let probe_t0 = Instant::now();
    let probe_result = client.query_with_deadline(q.clone(), 30);
    let deadline_probe_typed = matches!(
        probe_result,
        Err(ClientError::Server(ref we)) if we.code == WireErrorCode::DeadlineExceeded
    );
    let probe_elapsed = probe_t0.elapsed();
    assert!(
        deadline_probe_typed,
        "a query past its deadline must fail with a typed DeadlineExceeded wire error"
    );
    assert!(
        probe_elapsed < std::time::Duration::from_millis(250),
        "the deadline reply must not wait out the slow query ({probe_elapsed:?})"
    );
    // The typed error classifies as transient pushback, and a single
    // backed-off retry — this time with an achievable budget — succeeds
    // on the same connection: the retry loop the rounds above run, in
    // miniature.
    let retry_after_deadline_succeeded = probe_result
        .err()
        .map(|e| e.disposition() == ErrorDisposition::RetryAfterBackoff)
        .unwrap_or(false)
        && {
            std::thread::sleep(backoff(0));
            client.query(q).is_ok()
        };
    probe.shutdown();
    assert!(
        retry_after_deadline_succeeded,
        "a DeadlineExceeded must be retryable-after-backoff, and the retry must succeed"
    );

    print_table(
        "Network server load (live writer, in-process TCP)",
        &[
            "clients",
            "queries",
            "wall (s)",
            "qps",
            "p50 (ms)",
            "p99 (ms)",
            "mean (ms)",
            "errors",
            "retries",
            "docs committed during run",
        ],
        &table,
    );
    let saturation_qps = rows.iter().map(|r| r.qps).fold(0.0f64, f64::max);
    let total_retries = rows.iter().map(|r| r.retries).sum();
    println!("saturation throughput: {saturation_qps:.0} queries/s");
    println!("retried queries (transient pushback, capped backoff): {total_retries}");
    println!("deadline probe: typed DeadlineExceeded in {probe_elapsed:?}; backed-off retry OK");

    let report = Report {
        scale,
        shards,
        workers,
        queries_per_client: per_client,
        rows,
        saturation_qps,
        total_retries,
        deadline_probe_typed,
        retry_after_deadline_succeeded,
    };
    save_json("loadgen", &report);
    match serde_json::to_string_pretty(&report) {
        Ok(body) => match std::fs::write("BENCH_server.json", body) {
            Ok(()) => eprintln!("[saved BENCH_server.json]"),
            Err(e) => eprintln!("[warn] could not save BENCH_server.json: {e}"),
        },
        Err(e) => eprintln!("[warn] could not serialize BENCH_server.json: {e}"),
    }
}
