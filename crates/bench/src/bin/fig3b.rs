//! Figure 3(b) — distribution of query frequencies: the rank curve of
//! per-term query frequency `qi` over the query log (heavy-tailed,
//! spanning ~1e0 … 1e5 at the paper's scale).

// Experiment binary: expect() on malformed synthetic input is acceptable
// (the production no-panic surface is gated by clippy + `cargo xtask audit`).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use serde::Serialize;
use tks_bench::{print_table, save_json, Scale};
use tks_corpus::{QueryGenerator, QueryTermStats};

#[derive(Serialize)]
struct Point {
    rank: usize,
    query_frequency: u64,
}

fn main() {
    let scale = Scale::from_args();
    let qgen = QueryGenerator::new(scale.query_log());
    let stats = QueryTermStats::collect(&qgen, 0..scale.queries, scale.vocab);
    let curve = stats.rank_curve();

    let sample_ranks = [0usize, 10, 100, 1_000, 5_000, 10_000, 25_000];
    let mut rows = Vec::new();
    let mut out = Vec::new();
    for &r in &sample_ranks {
        if r < curve.len() {
            rows.push(vec![format!("{r}"), format!("{}", curve[r])]);
            out.push(Point {
                rank: r,
                query_frequency: curve[r],
            });
        }
    }
    print_table(
        "Figure 3(b): query-frequency rank curve (qi)",
        &["rank", "query frequency"],
        &rows,
    );
    let nonzero = curve.iter().filter(|&&c| c > 0).count();
    println!(
        "\ndistinct queried terms: {nonzero} of {} vocabulary (paper: ~25k+ of >1M)",
        scale.vocab
    );
    save_json("fig3b", &(&scale, &out, nonzero));
}
