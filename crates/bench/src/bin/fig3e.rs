//! Figure 3(e) — workload-cost ratio vs. cache size with the most
//! document-frequent terms (0 / 1,000 / 10,000) kept unmerged.

fn main() {
    tks_bench::merging::run_merge_ratio_figure(
        "fig3e",
        "Figure 3(e): popular document terms not merged — Q ratio vs cache size",
        tks_bench::merging::RankBy::TermFreq,
        false,
    );
}
