//! Figure 3(e) — workload-cost ratio vs. cache size with the most
//! document-frequent terms (0 / 1,000 / 10,000) kept unmerged.

// Experiment binary: expect() on malformed synthetic input is acceptable
// (the production no-panic surface is gated by clippy + `cargo xtask audit`).
#![allow(clippy::unwrap_used, clippy::expect_used)]

fn main() {
    tks_bench::merging::run_merge_ratio_figure(
        "fig3e",
        "Figure 3(e): popular document terms not merged — Q ratio vs cache size",
        tks_bench::merging::RankBy::TermFreq,
        false,
    );
}
