//! Figure 8(b) — I/Os per inserted document with jump indexes, as a
//! function of cache size, for B ∈ {2, 32, 64}.
//!
//! The paper inserts 1M documents into 32,768 uniformly merged lists with
//! 8 KB blocks, sweeping the cache from 128 MB to 320 MB: higher B sets
//! more pointers and costs more I/O at tight cache sizes, but "the curves
//! almost converge at 1.1 I/Os per document" by 288 MB — close to the
//! 1 I/O of plain appends.
//!
//! Scaling: what drives this experiment is *postings per list* (blocks per
//! list ⇒ pointer activity), so the list count and cache axis are mapped
//! through the postings ratio (paper postings / simulated postings),
//! keeping ~15k postings per merged list.

// Experiment binary: expect() on malformed synthetic input is acceptable
// (the production no-panic surface is gated by clippy + `cargo xtask audit`).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use serde::Serialize;
use tks_bench::{fmt_bytes, print_table, save_json, Scale};
use tks_core::merge::MergeAssignment;
use tks_core::sim::{insertion_ios, jump_insertion_ios};
use tks_corpus::DocumentGenerator;
use tks_jump::JumpConfig;

#[derive(Serialize)]
struct Row {
    paper_cache_mb: u64,
    sim_cache_bytes: u64,
    ios_b2: f64,
    ios_b32: f64,
    ios_b64: f64,
    ios_plain_append: f64,
}

fn main() {
    let scale = Scale::from_args().with_join_geometry();
    let gen = DocumentGenerator::new(scale.corpus());

    let m = scale.merged_lists_for_join();
    let our_postings = scale.docs * scale.terms_per_doc as u64;
    let assignment = MergeAssignment::uniform(m);
    eprintln!(
        "[fig8b] {m} merged lists (~{} postings/list; the paper's geometry is ~15k)",
        our_postings / m as u64
    );

    // §3.5 pins the geometry: "32K separate posting lists (corresponding
    // to a 128 MB cache size)" — i.e. 4 KB blocks, and the 128 MB point is
    // exactly one cache block per list.  We preserve that correspondence:
    // cache_blocks = M · (paper MB / 128).
    let block = 4096usize;
    let configs = [
        ("B=2", JumpConfig::new(block, 2, 1 << 32)),
        ("B=32", JumpConfig::new(block, 32, 1 << 32)),
        ("B=64", JumpConfig::new(block, 64, 1 << 32)),
    ];

    let paper_mb = [128u64, 160, 192, 224, 256, 288, 320];
    let mut rows = Vec::new();
    let mut out = Vec::new();
    for &mb in &paper_mb {
        let cache = m as u64 * block as u64 * mb / 128;
        let mut ios = Vec::new();
        for (name, cfg) in &configs {
            let (r, ptrs) = jump_insertion_ios(&gen, &assignment, *cfg, scale.docs, cache)
                .expect("well-formed synthetic corpus");
            eprintln!(
                "[fig8b] {mb} MB {name}: {:.2} I/Os/doc ({ptrs} pointers set)",
                r.ios_per_doc()
            );
            ios.push(r.ios_per_doc());
        }
        let plain = insertion_ios(&gen, &assignment, scale.docs, cache, block as u32);
        rows.push(vec![
            format!("{mb}"),
            fmt_bytes(cache),
            format!("{:.2}", ios[0]),
            format!("{:.2}", ios[1]),
            format!("{:.2}", ios[2]),
            format!("{:.2}", plain.ios_per_doc()),
        ]);
        out.push(Row {
            paper_cache_mb: mb,
            sim_cache_bytes: cache,
            ios_b2: ios[0],
            ios_b32: ios[1],
            ios_b64: ios[2],
            ios_plain_append: plain.ios_per_doc(),
        });
    }
    print_table(
        "Figure 8(b): I/Os per document inserted, merged lists + jump index",
        &[
            "paper cache (MB)",
            "sim cache",
            "B=2",
            "B=32",
            "B=64",
            "plain append",
        ],
        &rows,
    );
    println!(
        "\nPaper shape: larger B costs more at 128 MB; the curves converge with cache size\n\
         toward the plain-append cost (paper: ~1.1 vs 1 I/O per doc at 288 MB)."
    );
    save_json("fig8b", &(&scale, &out));
}
