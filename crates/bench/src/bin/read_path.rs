//! Read-path throughput: the per-posting baseline (one 8-byte
//! `WormFs` read per posting — the call pattern the reader used before
//! the block-granular rewrite) against the batched path (whole-block
//! reads decoded through the decoded-block LRU), on a single merged
//! list of ≥100k postings.
//!
//! A second section replays a Figure 8(c)-style conjunctive workload and
//! asserts the streaming scan-merge intersection is observationally
//! identical to a materializing reference join: same result documents
//! *and* the same block counts (the paper's query-cost unit — the I/O
//! batching must not change the accounting).
//!
//! Results land in `results/read_path.json` and `BENCH_read_path.json`.
//!
//! ```text
//! cargo run --release -p tks-bench --bin read_path
//! ```

// Experiment binary: expect() on malformed synthetic input is acceptable
// (the production no-panic surface is gated by clippy + `cargo xtask audit`).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use serde::Serialize;
use std::time::Instant;
use tks_bench::{print_table, save_json, Scale};
use tks_core::engine::{EngineConfig, SearchEngine};
use tks_core::merge::MergeAssignment;
use tks_core::sim::{build_engine, scan_merge_blocks};
use tks_corpus::{DocumentGenerator, QueryGenerator};
use tks_postings::{decode_posting, DocId, ListId, ListStore, TermId, POSTING_SIZE};

/// Postings in the scanned list (the acceptance floor is 100k).
const SCAN_POSTINGS: u64 = 120_000;
/// Distinct terms interleaved in the merged list.
const SCAN_TERMS: u32 = 16;
/// Timed full scans per strategy (first pass warms the decoded cache;
/// per-pass numbers are averaged).
const SCAN_PASSES: u32 = 5;
/// Disk block size for both sections (the paper's query-cost unit).
const BLOCK: usize = 8192;
/// Conjunctive queries replayed in the equivalence section.
const EQUIV_QUERIES: usize = 300;

#[derive(Serialize)]
struct ScanReport {
    postings: u64,
    blocks_per_scan: u64,
    passes: u32,
    per_posting_postings_per_sec: f64,
    reader_postings_per_sec: f64,
    block_slices_postings_per_sec: f64,
    /// The acceptance headline: the block-granular scan (decoded-block
    /// slices, the primitive the streaming intersection consumes) vs the
    /// per-posting baseline.
    speedup: f64,
}

#[derive(Serialize)]
struct EquivalenceReport {
    queries: usize,
    total_matches: u64,
    streaming_blocks: u64,
    reference_blocks: u64,
    docs_identical: bool,
    blocks_identical: bool,
}

#[derive(Serialize)]
struct Report {
    scale: Scale,
    scan: ScanReport,
    equivalence: EquivalenceReport,
}

/// Checksum sink so the scan loops cannot be optimized away.
#[inline]
fn fold(sum: u64, doc: DocId, tf: u8) -> u64 {
    sum.wrapping_mul(31).wrapping_add(doc.0 ^ tf as u64)
}

fn build_scan_store() -> ListStore {
    let mut store = ListStore::new(BLOCK, 1).expect("valid geometry");
    for i in 0..SCAN_POSTINGS {
        store
            .append(
                ListId(0),
                TermId(i as u32 % SCAN_TERMS),
                DocId(i),
                (i % 7 + 1) as u32,
                None,
            )
            .expect("monotone synthetic appends");
    }
    store
}

/// The pre-batching read path: one bounds-checked `WormFs::read` of
/// `POSTING_SIZE` bytes per posting, copied out and decoded one at a time.
fn scan_per_posting(store: &ListStore) -> u64 {
    let fs = store.fs();
    let file = fs.open("lists/0").expect("list file exists");
    let count = store.len(ListId(0)).expect("list exists");
    let mut sum = 0u64;
    for i in 0..count {
        let bytes = fs
            .read(file, i * POSTING_SIZE as u64, POSTING_SIZE)
            .expect("in-bounds");
        let mut buf = [0u8; POSTING_SIZE];
        buf.copy_from_slice(&bytes);
        let p = decode_posting(buf);
        sum = fold(sum, p.doc, p.tf);
    }
    sum
}

/// The batched path as queries see it: `PostingListReader` over decoded
/// blocks.
fn scan_reader(store: &ListStore) -> u64 {
    let mut sum = 0u64;
    for p in store.postings(ListId(0)).expect("list exists") {
        sum = fold(sum, p.doc, p.tf);
    }
    sum
}

/// The batched path with slice-granular iteration: `BlockReader` yielding
/// whole decoded blocks.
fn scan_block_slices(store: &ListStore) -> u64 {
    let mut sum = 0u64;
    for block in store.block_reader(ListId(0)).expect("list exists") {
        for p in block.iter() {
            sum = fold(sum, p.doc, p.tf);
        }
    }
    sum
}

fn time_scans(label: &str, passes: u32, expect: u64, f: impl Fn() -> u64) -> f64 {
    let t0 = Instant::now();
    for _ in 0..passes {
        assert_eq!(f(), expect, "{label}: scan checksum diverged");
    }
    let elapsed = t0.elapsed().as_secs_f64();
    (SCAN_POSTINGS * passes as u64) as f64 / elapsed.max(1e-9)
}

/// Materializing reference join: collect every term's full doc vector,
/// then intersect — the shape of the scan-merge fallback before the
/// streaming rewrite.
fn materialized_conjunction(engine: &SearchEngine, terms: &[TermId]) -> Vec<DocId> {
    let mut acc: Option<Vec<DocId>> = None;
    for &t in terms {
        let list = engine.config().assignment.list_of(t);
        let docs: Vec<DocId> = engine
            .list_store()
            .postings_for_term(list, t)
            .expect("list in range")
            .map(|p| p.doc)
            .collect();
        acc = Some(match acc {
            None => docs,
            Some(prev) => prev
                .into_iter()
                .filter(|d| docs.binary_search(d).is_ok())
                .collect(),
        });
    }
    acc.unwrap_or_default()
}

fn main() {
    let mut scale = Scale::from_args();
    // The default figure workload (50k docs) is bigger than the
    // equivalence replay needs; shrink it unless the user asked for a
    // size.  The geometry keeps ~30 terms per merged list so scan-merge
    // joins read multi-block lists.
    if scale.is_default_workload() {
        scale.docs = 6_000;
        scale.vocab = 2_000;
        scale.terms_per_doc = 80;
        scale.query_vocab = 800;
    }

    // ---- 1. Scan throughput: per-posting vs batched. -------------------
    eprintln!("[read_path] building {SCAN_POSTINGS}-posting list…");
    let store = build_scan_store();
    let blocks_per_scan = store.num_blocks(ListId(0)).expect("list exists");
    let expect = scan_per_posting(&store);
    eprintln!("[read_path] timing {SCAN_PASSES} passes per strategy…");
    let per_posting = time_scans("per-posting", SCAN_PASSES, expect, || {
        scan_per_posting(&store)
    });
    let reader = time_scans("reader", SCAN_PASSES, expect, || scan_reader(&store));
    let slices = time_scans("block-slices", SCAN_PASSES, expect, || {
        scan_block_slices(&store)
    });
    let speedup = slices / per_posting.max(1e-9);
    let cache = store.decoded_cache_stats();

    // ---- 2. Fig 8(c)-style equivalence: streaming == materialized. -----
    eprintln!(
        "[read_path] equivalence replay: ingesting {} docs…",
        scale.docs
    );
    let gen = DocumentGenerator::new(scale.corpus());
    let qgen = QueryGenerator::new(scale.query_log());
    let engine = build_engine(
        &gen,
        scale.docs,
        EngineConfig {
            assignment: MergeAssignment::uniform(scale.merged_lists_for_join()),
            jump: None, // force the scan-merge fallback under test
            block_size: BLOCK,
            ..Default::default()
        },
    )
    .expect("well-formed synthetic corpus");
    let queries: Vec<Vec<TermId>> = qgen
        .queries(0..scale.queries)
        .filter(|q| q.terms.len() >= 2)
        .take(EQUIV_QUERIES)
        .map(|q| q.terms)
        .collect();
    let (mut matches, mut streaming_blocks, mut reference_blocks) = (0u64, 0u64, 0u64);
    let (mut docs_identical, mut blocks_identical) = (true, true);
    for q in &queries {
        let (docs, blocks) = engine.conjunctive_terms(q).expect("clean index");
        let reference = materialized_conjunction(&engine, q);
        let expect_blocks = scan_merge_blocks(&engine, q);
        docs_identical &= docs == reference;
        blocks_identical &= blocks == expect_blocks;
        matches += docs.len() as u64;
        streaming_blocks += blocks;
        reference_blocks += expect_blocks;
    }
    assert!(
        docs_identical,
        "streaming scan-merge changed query results vs the materializing join"
    );
    assert!(
        blocks_identical,
        "streaming scan-merge changed the Figure 8(c) block accounting"
    );

    let scan = ScanReport {
        postings: SCAN_POSTINGS,
        blocks_per_scan,
        passes: SCAN_PASSES,
        per_posting_postings_per_sec: per_posting,
        reader_postings_per_sec: reader,
        block_slices_postings_per_sec: slices,
        speedup,
    };
    let equivalence = EquivalenceReport {
        queries: queries.len(),
        total_matches: matches,
        streaming_blocks,
        reference_blocks,
        docs_identical,
        blocks_identical,
    };

    print_table(
        "Read-path scan throughput (single merged list)",
        &["strategy", "postings/s", "vs per-posting"],
        &[
            vec![
                "per-posting WormFs::read".into(),
                format!("{per_posting:.0}"),
                "1.00x".into(),
            ],
            vec![
                "PostingListReader (decoded blocks)".into(),
                format!("{reader:.0}"),
                format!("{:.2}x", reader / per_posting.max(1e-9)),
            ],
            vec![
                "BlockReader slices".into(),
                format!("{slices:.0}"),
                format!("{speedup:.2}x"),
            ],
        ],
    );
    println!(
        "\nblocks per scan: {blocks_per_scan}; decoded-cache stats after timing: {cache:?}\n\
         equivalence: {} conjunctive queries, {} total matches, \
         {streaming_blocks} blocks (reference {reference_blocks}) — identical",
        queries.len(),
        matches
    );
    if speedup < 5.0 {
        eprintln!("[warn] batched/baseline speedup {speedup:.2}x is below the 5x target");
    }

    let report = Report {
        scale,
        scan,
        equivalence,
    };
    save_json("read_path", &report);
    match serde_json::to_string_pretty(&report) {
        Ok(body) => match std::fs::write("BENCH_read_path.json", body) {
            Ok(()) => eprintln!("[saved BENCH_read_path.json]"),
            Err(e) => eprintln!("[warn] could not save BENCH_read_path.json: {e}"),
        },
        Err(e) => eprintln!("[warn] could not serialize results: {e}"),
    }
}
