//! Shared driver for the Figure 3(d)–3(g) merging-strategy sweeps.
//!
//! Each figure plots the Eq. 1 workload-cost ratio (merged / unmerged) as
//! a function of cache size, for 0 / 1,000 / 10,000 popular terms kept
//! unmerged, with the remaining terms hashed uniformly.  The figures
//! differ in how "popular" is ranked:
//!
//! | figure | ranked by | statistics from |
//! |---|---|---|
//! | 3(d) | query frequency `qi` | full workload |
//! | 3(e) | term frequency `ti` | full workload |
//! | 3(f) | query frequency | first 10% of queries (learned) |
//! | 3(g) | term frequency | first 10% of documents (learned) |
//!
//! Unmerged-term counts and cache sizes are scaled through the vocabulary
//! ratio (see the crate docs).

use crate::{print_table, save_json, Scale};
use serde::Serialize;
use tks_core::cost::{unmerged_workload_cost, workload_cost};
use tks_core::merge::MergeAssignment;
use tks_corpus::{DocumentGenerator, QueryGenerator, QueryTermStats, TermStats};
use tks_postings::TermId;

/// Which statistic ranks the "popular" (kept-unmerged) terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankBy {
    /// Query frequency `qi` (Figures 3(d)/3(f)).
    QueryFreq,
    /// Term frequency `ti` (Figures 3(e)/3(g)).
    TermFreq,
}

/// One data point of the sweep.
#[derive(Debug, Serialize)]
pub struct SweepPoint {
    /// Paper-axis cache size in MB.
    pub paper_cache_mb: u64,
    /// Physical lists `M` at the simulated scale.
    pub num_lists: u32,
    /// Paper-axis unmerged-term count (0 / 1,000 / 10,000).
    pub paper_unmerged: usize,
    /// Scaled unmerged-term count actually applied.
    pub scaled_unmerged: usize,
    /// `Q(merged) / Q(unmerged)`, or `None` when the configuration is
    /// infeasible (more unmerged terms than lists).
    pub ratio: Option<f64>,
}

/// Run one of the Figure 3(d)–(g) sweeps and print/save its table.
pub fn run_merge_ratio_figure(figure: &str, title: &str, rank_by: RankBy, learned: bool) {
    let scale = Scale::from_args();
    let gen = DocumentGenerator::new(scale.corpus());
    let qgen = QueryGenerator::new(scale.query_log());

    // Full-workload statistics define the cost being measured.
    let ti = TermStats::collect(&gen, 0..scale.docs).doc_freq;
    let qi = QueryTermStats::collect(&qgen, 0..scale.queries, scale.vocab).query_freq;
    let unmerged_q = unmerged_workload_cost(&ti, &qi).max(1);

    // The ranking may instead be *learned* from the first 10% of the
    // workload (paper §3.3: "we computed the most popular terms for the
    // first 10% of the documents crawled and the first 10% of the queries
    // submitted, and used those statistics to make merging decisions").
    let ranked: Vec<TermId> = match (rank_by, learned) {
        (RankBy::QueryFreq, false) => QueryTermStats {
            query_freq: qi.clone(),
            num_queries: scale.queries,
        }
        .terms_by_rank(),
        (RankBy::QueryFreq, true) => {
            QueryTermStats::collect(&qgen, 0..scale.queries / 10, scale.vocab).terms_by_rank()
        }
        (RankBy::TermFreq, false) => TermStats {
            doc_freq: ti.clone(),
            num_docs: scale.docs,
            total_postings: 0,
        }
        .terms_by_rank(),
        (RankBy::TermFreq, true) => TermStats::collect(&gen, 0..scale.docs / 10).terms_by_rank(),
    };

    let ratio = scale.vocab_ratio();
    let paper_unmerged = [0usize, 1_000, 10_000];
    let paper_mb: Vec<u64> = vec![4, 8, 16, 32, 64, 128, 256, 512];

    let mut points = Vec::new();
    let mut rows = Vec::new();
    for &mb in &paper_mb {
        let paper_lists = (mb << 20) / 8192;
        let m = ((paper_lists as f64 / ratio).round() as u32).max(2);
        let mut row = vec![format!("{mb}"), format!("{m}")];
        for &u in &paper_unmerged {
            let su = (u as f64 / ratio).round() as usize;
            let assignment = if su == 0 {
                Some(MergeAssignment::uniform(m))
            } else if (su as u32) < m {
                Some(MergeAssignment::popular_unmerged(
                    &ranked,
                    su,
                    m,
                    scale.vocab,
                ))
            } else {
                None
            };
            let r = assignment.map(|a| workload_cost(&a, &ti, &qi) as f64 / unmerged_q as f64);
            row.push(match r {
                Some(v) => format!("{v:.2}"),
                None => "—".to_string(),
            });
            points.push(SweepPoint {
                paper_cache_mb: mb,
                num_lists: m,
                paper_unmerged: u,
                scaled_unmerged: su,
                ratio: r,
            });
        }
        eprintln!("[{figure}] {mb} MB done");
        rows.push(row);
    }
    print_table(
        title,
        &[
            "paper cache (MB)",
            "lists M",
            "0 terms",
            "1000 terms",
            "10000 terms",
        ],
        &rows,
    );
    println!(
        "\nRatios are Q(merged)/Q(unmerged) per Eq. 1; unmerged-term counts are the paper's,\n\
         scaled by the vocabulary ratio ({ratio:.0}×).  Paper shape: ratios fall toward ~1 by\n\
         128–256 MB, and the '0 term' uniform curve tracks the others closely."
    );
    save_json(figure, &points);
}
