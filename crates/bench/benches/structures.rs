//! Micro-benchmarks for the core data structures: jump indexes (insert,
//! lookup, find_geq, across branching factors), the B+ tree baseline, the
//! GHT baseline, posting encoding, and the LRU cache core.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use tks_btree::{AppendOnlyBPlusTree, BTreeConfig};
use tks_ght::{GeneralizedHashTree, GhtConfig};
use tks_jump::{BinaryJumpIndex, BlockJumpIndex, JumpConfig};
use tks_postings::{decode_posting, encode_posting, DocId, Posting};
use tks_worm::LruCore;

const N: u64 = 100_000;

fn keys() -> Vec<u64> {
    // Strictly increasing with a little jitter: step 7 dominates the ±4
    // residue wobble.
    (0..N).map(|i| i * 7 + (i % 5)).collect()
}

fn bench_jump_insert(c: &mut Criterion) {
    let mut g = c.benchmark_group("jump_insert");
    for b in [2u32, 32, 64] {
        g.bench_with_input(BenchmarkId::new("block", b), &b, |bench, &b| {
            let cfg = JumpConfig::new(8192, b, 1 << 32);
            let ks = keys();
            bench.iter(|| {
                let mut idx: BlockJumpIndex<u64> = BlockJumpIndex::new(cfg);
                for &k in &ks {
                    idx.insert(k).unwrap();
                }
                black_box(idx.num_blocks())
            });
        });
    }
    g.finish();
}

fn bench_jump_queries(c: &mut Criterion) {
    let mut g = c.benchmark_group("jump_query");
    for b in [2u32, 32, 64] {
        let cfg = JumpConfig::new(8192, b, 1 << 32);
        let mut idx: BlockJumpIndex<u64> = BlockJumpIndex::new(cfg);
        for k in keys() {
            idx.insert(k).unwrap();
        }
        g.bench_with_input(BenchmarkId::new("lookup", b), &idx, |bench, idx| {
            let mut probe = 1u64;
            bench.iter(|| {
                probe = (probe * 2862933555777941757 + 3037000493) % (N * 3);
                black_box(idx.lookup(probe).unwrap())
            });
        });
        g.bench_with_input(BenchmarkId::new("find_geq", b), &idx, |bench, idx| {
            let mut probe = 1u64;
            bench.iter(|| {
                probe = (probe * 2862933555777941757 + 3037000493) % (N * 3);
                black_box(idx.find_geq(probe).unwrap())
            });
        });
    }
    g.finish();
}

fn bench_binary_jump(c: &mut Criterion) {
    let mut idx = BinaryJumpIndex::new(1 << 32);
    for k in keys() {
        idx.insert(k).unwrap();
    }
    c.bench_function("binary_jump/lookup", |bench| {
        let mut probe = 1u64;
        bench.iter(|| {
            probe = (probe * 6364136223846793005 + 1442695040888963407) % (N * 3);
            black_box(idx.lookup(probe).unwrap())
        });
    });
}

fn bench_btree(c: &mut Criterion) {
    let cfg = BTreeConfig::for_block_size(8192);
    let mut tree = AppendOnlyBPlusTree::new(cfg);
    for k in keys() {
        tree.insert(k).unwrap();
    }
    c.bench_function("btree/find_geq", |bench| {
        let mut probe = 1u64;
        bench.iter(|| {
            probe = (probe * 6364136223846793005 + 1442695040888963407) % (N * 3);
            black_box(tree.find_geq(probe, &mut |_| {}))
        });
    });
    c.bench_function("btree/build_100k", |bench| {
        let ks = keys();
        bench.iter(|| {
            let mut t = AppendOnlyBPlusTree::new(cfg);
            for &k in &ks {
                t.insert(k).unwrap();
            }
            black_box(t.num_nodes())
        });
    });
}

fn bench_ght(c: &mut Criterion) {
    let mut ght = GeneralizedHashTree::new(GhtConfig::for_block_size(8192, 16));
    for k in keys() {
        ght.insert(k);
    }
    c.bench_function("ght/contains", |bench| {
        let mut probe = 1u64;
        bench.iter(|| {
            probe = (probe * 6364136223846793005 + 1442695040888963407) % (N * 3);
            black_box(ght.contains(probe, &mut |_| {}))
        });
    });
}

fn bench_posting_codec(c: &mut Criterion) {
    c.bench_function("posting/encode_decode", |bench| {
        let p = Posting::new(DocId(123_456_789), 42, 7);
        bench.iter(|| black_box(decode_posting(encode_posting(black_box(p)))));
    });
}

fn bench_lru(c: &mut Criterion) {
    c.bench_function("lru/touch_insert_evict", |bench| {
        let mut lru = LruCore::with_capacity(1024);
        for i in 0..1024u64 {
            lru.insert(i);
        }
        let mut i = 1024u64;
        bench.iter(|| {
            i += 1;
            lru.insert(i % 4096);
            if lru.len() > 1024 {
                black_box(lru.pop_lru());
            }
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_jump_insert, bench_jump_queries, bench_binary_jump,
              bench_btree, bench_ght, bench_posting_codec, bench_lru
}
criterion_main!(benches);
