//! Micro-benchmarks for the end-to-end engine: real-time document
//! insertion (the §2.3 requirement), disjunctive ranked search, and
//! conjunctive zigzag search — with and without jump indexes.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use tks_core::buffered::BufferedIndex;
use tks_core::engine::{EngineConfig, SearchEngine};
use tks_core::merge::MergeAssignment;
use tks_core::query::Query;
use tks_core::sim::build_engine;
use tks_corpus::{CorpusConfig, DocumentGenerator, QueryConfig, QueryGenerator};
use tks_jump::JumpConfig;
use tks_postings::Timestamp;

fn corpus() -> DocumentGenerator {
    DocumentGenerator::new(CorpusConfig {
        num_docs: 5_000,
        vocab_size: 20_000,
        mean_distinct_terms: 60,
        ..Default::default()
    })
}

fn queries() -> QueryGenerator {
    QueryGenerator::new(QueryConfig {
        query_vocab: 5_000,
        ..Default::default()
    })
}

fn bench_insert(c: &mut Criterion) {
    let gen = corpus();
    let docs: Vec<_> = gen.docs(0..2_000).collect();
    let mut g = c.benchmark_group("engine_insert");
    for (name, jump) in [
        ("plain", None),
        ("jump_b32", Some(JumpConfig::new(8192, 32, 1 << 32))),
    ] {
        g.bench_function(name, |bench| {
            bench.iter(|| {
                let mut e = SearchEngine::new(EngineConfig {
                    assignment: MergeAssignment::uniform(128),
                    jump,
                    store_documents: false,
                    ..Default::default()
                })
                .unwrap();
                for d in &docs {
                    e.add_document_terms(&d.terms, d.timestamp, None).unwrap();
                }
                black_box(e.num_docs())
            });
        });
    }
    g.finish();
}

fn bench_search(c: &mut Criterion) {
    let gen = corpus();
    let qgen = queries();
    let qs: Vec<_> = qgen.queries(0..200).collect();
    let configs = [
        ("scan", None),
        ("jump_b32", Some(JumpConfig::new(8192, 32, 1 << 32))),
    ];
    let mut g = c.benchmark_group("engine_search");
    for (name, jump) in configs {
        let engine = build_engine(
            &gen,
            5_000,
            EngineConfig {
                assignment: MergeAssignment::uniform(128),
                jump,
                ..Default::default()
            },
        )
        .unwrap();
        g.bench_with_input(
            BenchmarkId::new("disjunctive_top10", name),
            &engine,
            |bench, e| {
                let mut i = 0;
                bench.iter(|| {
                    i = (i + 1) % qs.len();
                    black_box(
                        e.execute(&Query::disjunctive(&qs[i].terms[..], 10))
                            .unwrap()
                            .hits,
                    )
                });
            },
        );
        g.bench_with_input(
            BenchmarkId::new("conjunctive", name),
            &engine,
            |bench, e| {
                let mut i = 0;
                bench.iter(|| {
                    i = (i + 1) % qs.len();
                    black_box(e.conjunctive_terms(&qs[i].terms).unwrap())
                });
            },
        );
    }
    g.finish();
}

fn bench_text_path(c: &mut Criterion) {
    c.bench_function("engine/add_document_text", |bench| {
        let mut e = SearchEngine::new(EngineConfig {
            assignment: MergeAssignment::uniform(64),
            ..Default::default()
        })
        .unwrap();
        let mut i = 0u64;
        bench.iter(|| {
            i += 1;
            let text = format!(
                "compliance record {i} quarterly filing earnings statement audit retention"
            );
            black_box(e.add_document(&text, Timestamp(i)).unwrap())
        });
    });
}

/// The §2.3 tradeoff, timed: real-time trustworthy insertion vs the
/// buffered (untrustworthy) baseline over the same merged store.
fn bench_buffered_vs_realtime(c: &mut Criterion) {
    let gen = corpus();
    let docs: Vec<_> = gen.docs(0..2_000).collect();
    let mut g = c.benchmark_group("buffered_vs_realtime");
    g.bench_function("realtime_engine", |bench| {
        bench.iter(|| {
            let mut e = SearchEngine::new(EngineConfig {
                assignment: MergeAssignment::uniform(128),
                store_documents: false,
                ..Default::default()
            })
            .unwrap();
            for d in &docs {
                e.add_document_terms(&d.terms, d.timestamp, None).unwrap();
            }
            black_box(e.num_docs())
        });
    });
    g.bench_function("buffered_flush_500", |bench| {
        bench.iter(|| {
            let mut idx = BufferedIndex::new(MergeAssignment::uniform(128), 8192, 500).unwrap();
            for d in &docs {
                idx.add_document_terms(&d.terms, None).unwrap();
            }
            idx.flush(None).unwrap();
            black_box(idx.num_docs())
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_insert, bench_search, bench_text_path, bench_buffered_vs_realtime
}
criterion_main!(benches);
