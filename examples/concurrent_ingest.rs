//! Concurrent ingest pipeline: document producers feed the exclusive
//! [`IndexWriter`] over a bounded channel, and a checker thread holding a
//! cloned [`Searcher`] verifies the paper's *real-time indexing* property
//! from the outside — every document is searchable the instant its commit
//! call returns.
//!
//! (The index itself is single-writer, as in the paper: document IDs come
//! from one increasing commit counter.  Concurrency lives around it —
//! producers tokenize and the checker queries — which is how a compliance
//! mail gateway would deploy it.)
//!
//! ```text
//! cargo run --release --example concurrent_ingest
//! ```

use std::sync::mpsc;
use std::time::Instant;
use trustworthy_search::corpus::{CorpusConfig, DocumentGenerator};
use trustworthy_search::prelude::*;

const DOCS: u64 = 5_000;

fn main() {
    let config = EngineConfig::builder()
        .assignment(MergeAssignment::uniform(256))
        .jump(JumpConfig::new(8192, 32, 1 << 32))
        .store_documents(false)
        .build()
        .expect("valid configuration");
    let (mut writer, searcher) = service(SearchEngine::new(config).unwrap());

    let (tx, rx) = mpsc::sync_channel::<(u64, Vec<(TermId, u32)>, Timestamp)>(64);
    let (committed_tx, committed_rx) = mpsc::sync_channel::<(DocId, TermId)>(64);

    // Producer: generates and tokenizes documents off the writer's thread.
    let producer = std::thread::spawn(move || {
        let gen = DocumentGenerator::new(CorpusConfig {
            num_docs: DOCS,
            vocab_size: 20_000,
            mean_distinct_terms: 80,
            ..Default::default()
        });
        for d in gen.docs(0..DOCS) {
            tx.send((d.id.0, d.terms, d.timestamp))
                .expect("writer alive");
        }
    });

    // Checker: the moment a commit is acknowledged, the document must be
    // visible to a conjunctive query for one of its terms — no buffering
    // window, ever.  The Searcher handle reads concurrently with the
    // active writer.
    let checker_searcher = searcher.clone();
    let checker = std::thread::spawn(move || {
        let mut checked = 0u64;
        while let Ok((doc, term)) = committed_rx.recv() {
            let resp = checker_searcher
                .execute(Query::conjunctive(vec![term]))
                .expect("clean index");
            assert!(
                resp.docs().contains(&doc),
                "{doc} not visible immediately after commit ack — buffering window!"
            );
            checked += 1;
        }
        checked
    });

    // Writer: the single indexing thread, owning the IndexWriter.
    let start = Instant::now();
    let writer_thread = std::thread::spawn(move || {
        let mut postings = 0u64;
        while let Ok((_, terms, ts)) = rx.recv() {
            // commit_terms returns with the index fully updated and the
            // watermark published — the commit is acknowledged.
            let doc = writer.commit_terms(&terms, ts, None).expect("valid doc");
            postings += terms.len() as u64;
            // Sample 1 in 16 commits for external verification.
            if doc.0 % 16 == 0 {
                committed_tx.send((doc, terms[0].0)).expect("checker alive");
            }
        }
        postings
    });

    producer.join().expect("producer");
    let postings = writer_thread.join().expect("writer");
    let checked = checker.join().expect("checker");
    let secs = start.elapsed().as_secs_f64();

    println!(
        "indexed {DOCS} documents ({postings} postings) in {secs:.2}s — {:.0} docs/s",
        DOCS as f64 / secs
    );
    println!("real-time visibility verified on {checked} sampled commits");
    println!("query-path I/O: {:?}", searcher.query_io_stats());
    println!("storage cache I/O: {:?}", searcher.engine().io_stats());
    println!("audit clean: {}", searcher.audit().is_clean());
}
