//! Concurrent ingest pipeline: document producers feed a single indexing
//! writer over a bounded channel, and a checker thread verifies the
//! paper's *real-time indexing* property from the outside — every
//! document is searchable the instant its insert call returns.
//!
//! (The index itself is single-writer, as in the paper: document IDs come
//! from one increasing commit counter.  Concurrency lives around it —
//! producers tokenize and the checker queries — which is how a compliance
//! mail gateway would deploy it.)
//!
//! ```text
//! cargo run --release --example concurrent_ingest
//! ```

use crossbeam::channel;
use parking_lot::RwLock;
use std::sync::Arc;
use std::time::Instant;
use trustworthy_search::corpus::{CorpusConfig, DocumentGenerator};
use trustworthy_search::prelude::*;

const DOCS: u64 = 5_000;

fn main() {
    let engine = Arc::new(RwLock::new(SearchEngine::new(EngineConfig {
        assignment: MergeAssignment::uniform(256),
        jump: Some(JumpConfig::new(8192, 32, 1 << 32)),
        store_documents: false,
        ..Default::default()
    })));

    let (tx, rx) = channel::bounded::<(u64, Vec<(TermId, u32)>, Timestamp)>(64);
    let (committed_tx, committed_rx) = channel::bounded::<(DocId, TermId)>(64);

    // Producer: generates and tokenizes documents off the writer's thread.
    let producer = std::thread::spawn(move || {
        let gen = DocumentGenerator::new(CorpusConfig {
            num_docs: DOCS,
            vocab_size: 20_000,
            mean_distinct_terms: 80,
            ..Default::default()
        });
        for d in gen.docs(0..DOCS) {
            tx.send((d.id.0, d.terms, d.timestamp))
                .expect("writer alive");
        }
    });

    // Checker: the moment a commit is acknowledged, the document must be
    // visible to a conjunctive query for one of its terms — no buffering
    // window, ever.
    let checker_engine = Arc::clone(&engine);
    let checker = std::thread::spawn(move || {
        let mut checked = 0u64;
        while let Ok((doc, term)) = committed_rx.recv() {
            let guard = checker_engine.read();
            let (hits, _) = guard.conjunctive_terms(&[term]).expect("clean index");
            assert!(
                hits.contains(&doc),
                "{doc} not visible immediately after commit ack — buffering window!"
            );
            checked += 1;
        }
        checked
    });

    // Writer: the single indexing thread.
    let start = Instant::now();
    let writer_engine = Arc::clone(&engine);
    let writer = std::thread::spawn(move || {
        let mut postings = 0u64;
        while let Ok((_, terms, ts)) = rx.recv() {
            let mut guard = writer_engine.write();
            let doc = guard
                .add_document_terms(&terms, ts, None)
                .expect("valid doc");
            postings += terms.len() as u64;
            drop(guard); // commit acknowledged; index is already updated
                         // Sample 1 in 16 commits for external verification.
            if doc.0 % 16 == 0 {
                committed_tx.send((doc, terms[0].0)).expect("checker alive");
            }
        }
        postings
    });

    producer.join().expect("producer");
    let postings = writer.join().expect("writer");
    let checked = checker.join().expect("checker");
    let secs = start.elapsed().as_secs_f64();

    let guard = engine.read();
    println!(
        "indexed {DOCS} documents ({postings} postings) in {secs:.2}s — {:.0} docs/s",
        DOCS as f64 / secs
    );
    println!("real-time visibility verified on {checked} sampled commits");
    println!("storage cache I/O: {:?}", guard.io_stats());
    println!("audit clean: {}", guard.audit().is_clean());
}
