//! Compliance email archive: the scenario that motivates the paper.
//!
//! A brokerage must retain all email (SEC Rule 17a-4) such that a future
//! investigator can find every relevant message.  This example runs a
//! multi-epoch archive: each month is an epoch whose merge assignment is
//! learned from the previous month's statistics, queries span epochs, and
//! time-restricted investigations only touch overlapping epochs.  It also
//! shows retention enforcement on the raw WORM file system.
//!
//! ```text
//! cargo run --release --example email_archive
//! ```

use trustworthy_search::prelude::*;
use trustworthy_search::worm::{WormError, WormFs};

/// A tiny synthetic mail stream: (day, from, to, subject words).
fn mail_stream() -> Vec<(u64, &'static str, &'static str, &'static str)> {
    vec![
        (1, "alice", "bob", "merger diligence timeline"),
        (3, "carol", "dan", "lunch thursday"),
        (5, "alice", "dan", "merger valuation model"),
        (9, "eve", "bob", "offsite agenda"),
        (12, "alice", "bob", "merger press release draft"),
        (33, "dan", "alice", "trade confirmations batch"),
        (36, "eve", "carol", "merger integration staffing"),
        (40, "alice", "eve", "quarterly compliance attestation"),
        (45, "bob", "alice", "merger escrow instructions"),
        (63, "carol", "bob", "holiday schedule"),
        (66, "alice", "bob", "merger closing checklist"),
        (70, "dan", "eve", "expense report reminder"),
    ]
}

fn main() {
    // One epoch per 30-day month; each epoch keeps the 4 hottest terms of
    // the previous month unmerged.
    let mut archive = EpochManager::new(EpochConfig {
        docs_per_epoch: 5,
        vocab_size: 256,
        num_lists: 16,
        unmerged_terms: 4,
        rank_by_query_freq: true,
        ..Default::default()
    });

    // Intern tokens into a shared vocabulary (the epoch manager works on
    // term IDs; a production wrapper would own this dictionary).
    let mut dict = std::collections::HashMap::<String, TermId>::new();
    let mut intern = |tok: &str| {
        let next = TermId(dict.len() as u32);
        *dict.entry(tok.to_string()).or_insert(next)
    };

    let mut mail_terms = Vec::new();
    for (day, from, to, subject) in mail_stream() {
        let mut terms: Vec<(TermId, u32)> = Vec::new();
        for tok in [from, to].into_iter().chain(subject.split_whitespace()) {
            let t = intern(tok);
            match terms.iter_mut().find(|(tt, _)| *tt == t) {
                Some((_, c)) => *c += 1,
                None => terms.push((t, 1)),
            }
        }
        terms.sort_unstable_by_key(|&(t, _)| t);
        let ts = Timestamp(day * 86_400);
        let doc = archive.add_document_terms(&terms, ts).unwrap();
        mail_terms.push((doc, day, from, to, subject));
        println!("day {day:>2}: {doc} {from} -> {to}: {subject:?}");
    }
    println!("\nepochs opened: {}", archive.num_epochs());

    // Investigation: all mail between alice and bob about the merger.
    let q: Vec<TermId> = ["alice", "bob", "merger"]
        .iter()
        .map(|t| *dict.get(*t).expect("token seen"))
        .collect();
    println!("\nconjunctive [alice bob merger] across all epochs:");
    for doc in archive.conjunctive_terms(&q).unwrap() {
        let (_, day, from, to, subject) = mail_terms.iter().find(|(d, ..)| *d == doc).unwrap();
        println!("  {doc} day {day}: {from} -> {to}: {subject:?}");
    }

    // Time-restricted: only days 30-60.  Epochs outside the window are
    // not even consulted (the paper's §3.3 payoff).
    let (hits, scanned) = archive
        .conjunctive_in_range(&q, Timestamp(30 * 86_400), Timestamp(60 * 86_400))
        .unwrap();
    println!(
        "\nsame query restricted to days 30–60: {} hit(s), {} of {} epochs scanned",
        hits.len(),
        scanned,
        archive.num_epochs()
    );

    // Retention enforcement at the storage layer: a WORM file with a
    // 7-year retention period refuses early deletion and logs the attempt.
    let mut fs = WormFs::new(WormDevice::new(4096));
    let seven_years = 7 * 365 * 86_400;
    let f = fs.create("mail/raw-2001-11.mbox", seven_years).unwrap();
    fs.append(f, b"From alice@example.com ...").unwrap();
    match fs.delete(f, 86_400 * 100) {
        Err(WormError::RetentionNotExpired { expires_at, .. }) => println!(
            "\nearly delete refused (retention expires at t={expires_at}); attempt logged: {}",
            fs.device().tamper_log().len()
        ),
        other => panic!("unexpected: {other:?}"),
    }
}
