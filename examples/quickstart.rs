//! Quickstart: build a trustworthy search engine, commit records, query
//! them, and audit the index.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use trustworthy_search::prelude::*;

fn main() {
    // 64 merged posting lists (one per storage-cache block) and jump
    // indexes with the paper's recommended branching factor B = 32.
    let mut engine = SearchEngine::new(EngineConfig {
        assignment: MergeAssignment::uniform(64),
        jump: Some(JumpConfig::new(8192, 32, 1 << 32)),
        positional: true, // enables exact phrase queries
        ..Default::default()
    });

    // Commit some business records.  Each call writes the record to WORM
    // *and* updates every posting list before returning — the real-time
    // indexing requirement of the paper's threat model.
    let records = [
        (100, "Q3 earnings restatement draft for board review"),
        (110, "cafeteria lunch menu for next week"),
        (
            120,
            "memo earnings call preparation and restatement talking points",
        ),
        (130, "drug trial batch 7 quality assurance log"),
        (140, "restatement audit trail appendix earnings schedule"),
    ];
    for (ts, text) in records {
        let doc = engine.add_document(text, Timestamp(ts)).unwrap();
        println!("committed {doc}: {text:?}");
    }

    // Ranked disjunctive search: documents containing ANY keyword,
    // scored by Okapi BM25.
    println!("\nsearch(\"earnings restatement\"):");
    for hit in engine.search("earnings restatement", 10) {
        println!(
            "  {} (score {:.3}): {:?}",
            hit.doc,
            hit.score,
            engine.document_text(hit.doc).unwrap()
        );
    }

    // Conjunctive search: documents containing ALL keywords, answered by
    // a zigzag join over the jump indexes.
    println!("\nsearch_conjunctive(\"earnings restatement\"):");
    for doc in engine.search_conjunctive("earnings restatement").unwrap() {
        println!("  {doc}: {:?}", engine.document_text(doc).unwrap());
    }

    // Exact phrase search over the positional index.
    println!("\nsearch_phrase(\"earnings restatement\"):");
    for doc in engine.search_phrase("earnings restatement").unwrap() {
        println!("  {doc}: {:?}", engine.document_text(doc).unwrap());
    }

    // Time-restricted investigation (paper §5): only records committed in
    // [105, 125], via the trustworthy commit-time jump index.
    println!("\nconjunctive \"earnings\" within commit time [105, 125]:");
    for doc in engine
        .search_conjunctive_in_range("earnings", Timestamp(105), Timestamp(125))
        .unwrap()
    {
        println!("  {doc} @ {}", engine.document_timestamp(doc).unwrap());
    }

    // The audit verifies every trust invariant recoverable from WORM.
    let report = engine.audit();
    println!("\naudit clean: {}", report.is_clean());
    println!("storage I/O so far: {:?}", engine.io_stats());
}
