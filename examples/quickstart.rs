//! Quickstart: build a trustworthy search engine, commit records, query
//! them through the unified [`Query`] API, and audit the index.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use trustworthy_search::prelude::*;

fn main() {
    // 64 merged posting lists (one per storage-cache block) and jump
    // indexes with the paper's recommended branching factor B = 32.  The
    // validating builder rejects inconsistent settings up front instead
    // of panicking deep inside the engine.
    let config = EngineConfig::builder()
        .assignment(MergeAssignment::uniform(64))
        .jump(JumpConfig::new(8192, 32, 1 << 32))
        .positional(true) // enables exact phrase queries
        .build()
        .expect("valid configuration");
    let mut engine = SearchEngine::new(config).unwrap();

    // Commit some business records.  Each call writes the record to WORM
    // *and* updates every posting list before returning — the real-time
    // indexing requirement of the paper's threat model.
    let records = [
        (100, "Q3 earnings restatement draft for board review"),
        (110, "cafeteria lunch menu for next week"),
        (
            120,
            "memo earnings call preparation and restatement talking points",
        ),
        (130, "drug trial batch 7 quality assurance log"),
        (140, "restatement audit trail appendix earnings schedule"),
    ];
    for (ts, text) in records {
        let doc = engine.add_document(text, Timestamp(ts)).unwrap();
        println!("committed {doc}: {text:?}");
    }

    // Every read is one `Query` through one entry point.  Ranked
    // disjunctive search: documents containing ANY keyword, scored by
    // Okapi BM25.
    println!("\nQuery::disjunctive(\"earnings restatement\", 10):");
    let resp = engine
        .execute(&Query::disjunctive("earnings restatement", 10))
        .unwrap();
    for hit in &resp.hits {
        println!(
            "  {} (score {:.3}): {:?}",
            hit.doc,
            hit.score,
            engine.document_text(hit.doc).unwrap()
        );
    }
    // Each response carries its own I/O cost and trust metadata.
    println!(
        "  [{} block read(s), trusted: {}]",
        resp.blocks_read, resp.trusted
    );

    // Conjunctive search: documents containing ALL keywords, answered by
    // a zigzag join over the jump indexes.
    println!("\nQuery::conjunctive(\"earnings restatement\"):");
    let resp = engine
        .execute(&Query::conjunctive("earnings restatement"))
        .unwrap();
    for doc in resp.docs() {
        println!("  {doc}: {:?}", engine.document_text(doc).unwrap());
    }

    // Exact phrase search over the positional index.
    println!("\nQuery::phrase(\"earnings restatement\"):");
    let resp = engine
        .execute(&Query::phrase("earnings restatement"))
        .unwrap();
    for doc in resp.docs() {
        println!("  {doc}: {:?}", engine.document_text(doc).unwrap());
    }

    // Time-restricted investigation (paper §5): only records committed in
    // [105, 125], via the trustworthy commit-time jump index.
    println!("\nQuery::conjunctive_in_range(\"earnings\", 105, 125):");
    let resp = engine
        .execute(&Query::conjunctive_in_range(
            "earnings",
            Timestamp(105),
            Timestamp(125),
        ))
        .unwrap();
    for doc in resp.docs() {
        println!("  {doc} @ {}", engine.document_timestamp(doc).unwrap());
    }

    // The audit verifies every trust invariant recoverable from WORM.
    let report = engine.audit();
    println!("\naudit clean: {}", report.is_clean());
    println!("storage I/O so far: {:?}", engine.io_stats());
}
