//! The §3 tradeoff in miniature: sweep merge strategies on a synthetic
//! corpus and print, for each, the insertion I/O per document and the
//! disjunctive workload-cost ratio — the two axes the paper trades
//! against each other.
//!
//! ```text
//! cargo run --release --example merging_tradeoffs
//! ```

use trustworthy_search::core::cost::{unmerged_workload_cost, workload_cost};
use trustworthy_search::core::merge::MergeAssignment;
use trustworthy_search::core::sim::insertion_ios;
use trustworthy_search::corpus::{
    CorpusConfig, DocumentGenerator, QueryConfig, QueryGenerator, QueryTermStats, TermStats,
};

fn main() {
    let docs = 10_000u64;
    let vocab = 30_000u32;
    let gen = DocumentGenerator::new(CorpusConfig {
        num_docs: docs,
        vocab_size: vocab,
        mean_distinct_terms: 80,
        ..Default::default()
    });
    let qgen = QueryGenerator::new(QueryConfig {
        query_vocab: 8_000,
        ..Default::default()
    });

    println!("collecting workload statistics…");
    let ti = TermStats::collect(&gen, 0..docs).doc_freq;
    let qi = QueryTermStats::collect(&qgen, 0..20_000, vocab).query_freq;
    let q_unmerged = unmerged_workload_cost(&ti, &qi);
    let ranked_by_qf = QueryTermStats {
        query_freq: qi.clone(),
        num_queries: 20_000,
    }
    .terms_by_rank();

    // Cache: 64 blocks of 8 KB — deliberately tiny so the unmerged
    // strategy hurts.
    let block = 8192u32;
    let cache = 512 * block as u64;

    let strategies: Vec<(&str, MergeAssignment)> = vec![
        ("unmerged (1 list/term)", MergeAssignment::unmerged(vocab)),
        ("uniform M=512", MergeAssignment::uniform(512)),
        ("uniform M=128", MergeAssignment::uniform(128)),
        (
            "top-64 QF unmerged + 448 merged",
            MergeAssignment::popular_unmerged(&ranked_by_qf, 64, 512, vocab),
        ),
    ];

    println!(
        "\n{:<34} {:>14} {:>18}",
        "strategy", "I/Os per doc", "query-cost ratio"
    );
    for (name, assignment) in strategies {
        let ins = insertion_ios(&gen, &assignment, docs, cache, block);
        let q = workload_cost(&assignment, &ti, &qi);
        println!(
            "{:<34} {:>14.2} {:>17.2}×",
            name,
            ins.ios_per_doc(),
            q as f64 / q_unmerged as f64
        );
    }
    println!(
        "\nReading: unmerged gives the best query cost (1.0×) but pays dozens of random\n\
         I/Os per inserted document; merging to the cache size makes insertion nearly\n\
         free at a small query-cost premium — and keeping a few popular query terms\n\
         unmerged claws most of that premium back (paper §3.3–3.4)."
    );
}
