//! The insider ("Mala") tries to hide a committed record — and why every
//! route fails against this system while succeeding against naive ones.
//!
//! Walks through the paper's attack catalogue:
//!
//! 1. Figure 6: the B+ tree hiding attack *succeeds silently* on a
//!    WORM-resident B+ tree;
//! 2. the same goal is structurally impossible against a jump index (and
//!    anything Mala can write is caught by the audit);
//! 3. §5 phantom-posting stuffing is detected by cross-checking postings
//!    against the WORM document store;
//! 4. §5 decoy-document rank dilution works mechanically but leaves the
//!    record findable and the evidence intact.
//!
//! ```text
//! cargo run --release --example insider_attack
//! ```

use trustworthy_search::btree::{hide_keys_above, AppendOnlyBPlusTree, BTreeConfig};
use trustworthy_search::core::rank_attack::{
    detect_phantom_postings, rank_of, stuff_phantom_postings, stuff_with_decoys,
};
use trustworthy_search::jump::{BlockJumpIndex, JumpConfig};
use trustworthy_search::prelude::*;

fn main() {
    // ------------------------------------------------------------------
    // 1. The B+ tree on WORM is not trustworthy (Figure 6).
    // ------------------------------------------------------------------
    println!("--- 1. B+ tree hiding attack (Figure 6) ---");
    let mut tree = AppendOnlyBPlusTree::new(BTreeConfig::tiny(3, 4));
    for k in [2u64, 4, 7, 11, 13, 19, 23, 29, 31] {
        tree.insert(k).unwrap();
    }
    println!(
        "before attack: lookup(31) = {}",
        tree.lookup(31, &mut |_| {})
    );
    let attack = hide_keys_above(&mut tree, 25, &[25, 26, 30]).unwrap();
    println!(
        "Mala appends separator 25 + decoy subtree (legal WORM appends only)…\n\
         after attack:  lookup(31) = {}   <- silently hidden!",
        tree.lookup(31, &mut |_| {})
    );
    println!(
        "hidden committed keys: {:?}; FindGeq(28) now returns {:?} (was Some(29))",
        attack.hidden_keys,
        tree.find_geq(28, &mut |_| {})
    );
    println!(
        "the bytes are still on WORM ({}), but no query can reach them",
        if tree.leaf_chain_keys().contains(&31) {
            "31 present in leaf chain"
        } else {
            "?"
        }
    );

    // ------------------------------------------------------------------
    // 2. The jump index is immune: Proposition 2 — once inserted, always
    //    found — holds because lookup paths never depend on later writes.
    // ------------------------------------------------------------------
    println!("\n--- 2. Jump index under the same pressure ---");
    let mut jump: BlockJumpIndex<u64> = BlockJumpIndex::new(JumpConfig::new(256, 3, 1 << 16));
    for k in [2u64, 4, 7, 11, 13, 19, 23, 29, 31] {
        jump.insert(k).unwrap();
    }
    // Mala's only legal writes are appends of *larger* keys (the commit
    // counter is monotone) — which cannot affect any existing path:
    jump.insert(40).unwrap();
    jump.insert(41).unwrap();
    println!(
        "after Mala's appends: lookup(31) = {:?}",
        jump.lookup(31).unwrap()
    );
    println!(
        "find_geq(28) = {:?} (correct 29; cannot be misdirected)",
        jump.find_geq(28)
            .unwrap()
            .map(|p| jump.entry_at(p).unwrap())
    );
    // A non-monotone append is refused outright:
    println!(
        "append of smaller key 30: {:?}",
        jump.insert(30).err().map(|e| e.to_string())
    );
    println!("full structural audit: {:?}", jump.audit().is_ok());

    // ------------------------------------------------------------------
    // 3. Phantom-posting stuffing is detected (paper §5).
    // ------------------------------------------------------------------
    println!("\n--- 3. Phantom posting stuffing ---");
    let mut engine = SearchEngine::new(EngineConfig {
        assignment: MergeAssignment::uniform(8),
        ..Default::default()
    })
    .unwrap();
    let target = engine
        .add_document(
            "stewart waksal imclone insider sale evidence",
            Timestamp(1_000),
        )
        .unwrap();
    let term = engine.term_of("imclone").unwrap();
    stuff_phantom_postings(&mut engine, term, &[500, 501, 502]).unwrap();
    let phantoms = detect_phantom_postings(&engine).unwrap();
    println!(
        "Mala appended 3 raw postings for nonexistent documents; verification flags {} phantom posting(s):",
        phantoms.len()
    );
    for p in &phantoms {
        println!(
            "  {} at {}[{}]: {:?}",
            p.posting.doc, p.list, p.position, p.reason
        );
    }

    // ------------------------------------------------------------------
    // 4. Decoy-document rank dilution: works, but survivable & visible.
    // ------------------------------------------------------------------
    println!("\n--- 4. Decoy-document rank dilution ---");
    println!(
        "rank of the evidence for [waksal imclone] before: {:?}",
        rank_of(&engine, "waksal imclone", target, 100)
    );
    stuff_with_decoys(&mut engine, "waksal imclone", 25).unwrap();
    println!(
        "after 25 decoys: rank {:?} — diluted, but still in the result list;\n\
         an investigator examining all results finds it, and 25 near-identical\n\
         decoy documents about [waksal imclone] are themselves glaring evidence.",
        rank_of(&engine, "waksal imclone", target, 100)
    );
    let audit = engine.audit();
    println!(
        "\nfinal audit clean: {} (decoys are real documents; the phantom\n\
              postings above are caught by posting verification, which a\n\
              deployment runs alongside this structural audit)",
        audit.is_clean()
    );
}
